//! # sleepy-tob
//!
//! A complete, executable reproduction of **"Asynchrony-Resilient Sleepy
//! Total-Order Broadcast Protocols"** (D'Amato, Losa, Zanolini —
//! PODC 2024, arXiv:2309.05347).
//!
//! The paper shows how to make a *dynamically available* total-order
//! broadcast protocol — the Malkhi–Momose–Ren (MMR) protocol, which keeps
//! working even when most participants go offline — tolerate **bounded
//! periods of asynchrony** of up to `π` rounds. The mechanism is a
//! configurable **message expiration period** `η > π`: instead of counting
//! only current-round votes, every graded agreement counts the *latest
//! unexpired* vote of each process, at the price of a bounded churn rate
//! `γ` and a reduced failure ratio `β̃ = (β − γ)/(γ(β − 2) + 1)`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `st-types` | ids, rounds/views, validated parameters |
//! | [`crypto`] | `st-crypto` | simulated signatures + VRF |
//! | [`blocktree`] | `st-blocktree` | logs as chains in a block tree |
//! | [`messages`] | `st-messages` | votes/proposals, expiration-window stores |
//! | [`ga`] | `st-ga` | graded agreement (Figures 2–3, Lemma 1) |
//! | [`core`] | `st-core` | Algorithm 1 with expiration (the contribution); the `Protocol` trait + the fixed-quorum baseline |
//! | [`load`] | `st-load` | open-loop workload generators, bounded mempool, latency histograms |
//! | [`sim`] | `st-sim` | sleepy-model simulator (generic over `Protocol`), adversaries, monitors, workload injection |
//! | [`node`] | `st-node` | deployable socket node runtime (`stob serve`) + multi-process cluster harness |
//! | [`analysis`] | `st-analysis` | Figure-1 formulas, Eq. 1–5 checkers |
//!
//! # Quickstart
//!
//! ```
//! use sleepy_tob::prelude::*;
//!
//! // An asynchrony-resilient configuration: η = 4 tolerates any π ≤ 3.
//! let params = Params::builder(10)
//!     .expiration(4)
//!     .max_asynchrony(3)
//!     .churn_rate(0.05)
//!     .build()?;
//! assert!(params.is_asynchrony_resilient());
//!
//! // Run it through a 2-round network partition: safety holds. The
//! // builder chain is the driving API — schedule defaults to full
//! // participation, the adversary is typed (no Box).
//! let report = SimBuilder::new(params, 42)
//!     .horizon(30)
//!     .async_window(AsyncWindow::new(Round::new(10), 2))
//!     .adversary(PartitionAttacker::new())
//!     .build()?
//!     .run();
//! assert!(report.is_safe());
//!
//! // The paper's claim is recovery after *every* spell: a two-spell
//! // timeline yields one recovery record per window.
//! let report = SimBuilder::new(params, 42)
//!     .horizon(40)
//!     .timeline(
//!         Timeline::synchronous()
//!             .asynchronous(Round::new(10), 2)
//!             .asynchronous(Round::new(24), 2),
//!     )
//!     .adversary(PartitionAttacker::new())
//!     .build()?
//!     .run();
//! assert!(report.is_safe());
//! assert_eq!(report.recoveries.len(), 2);
//! assert!(report.recovered_after_every_window());
//!
//! // Execution is steppable: pause mid-run, inspect, intervene, resume.
//! let mut sim = SimBuilder::new(params, 42).horizon(20).build()?;
//! sim.run_until(Round::new(10));
//! assert_eq!(sim.next_round(), Some(Round::new(11)));
//! let report = sim.finish(); // or keep stepping to the horizon
//! assert!(report.is_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use st_analysis as analysis;
pub use st_blocktree as blocktree;
pub use st_core as core;
pub use st_crypto as crypto;
pub use st_ga as ga;
pub use st_gossip as gossip;
pub use st_load as load;
pub use st_messages as messages;
pub use st_node as node;
pub use st_sim as sim;
pub use st_types as types;

/// One-stop imports for the common API surface.
///
/// Everything a simulation driver touches is here: the
/// [`SimBuilder`](st_sim::SimBuilder) chain (schedule, timeline, typed
/// adversary, observers), the stepping surface on
/// [`Simulation`](st_sim::Simulation), the
/// [`Observer`](st_sim::Observer)/[`SimEvent`](st_sim::SimEvent) hooks,
/// the [`Sweep`](st_sim::Sweep) grid driver, the
/// [`Scenario`](st_sim::scenario::Scenario) presets, and the report /
/// trace types they produce — plus the
/// [`Adversary`](st_sim::Adversary) trait itself with its context and
/// message types, so a custom strategy compiles from the prelude alone.
/// The protocol layer is here too: the [`Protocol`](st_core::Protocol)
/// trait, both implementors ([`TobProcess`](st_core::TobProcess) and the
/// fixed-quorum [`QuorumProcess`](st_core::QuorumProcess) baseline) and
/// [`Sweep::compare`](st_sim::Sweep::compare)'s
/// [`SweepComparison`](st_sim::SweepComparison), so head-to-head
/// experiments build from the prelude alone
/// (`examples/baseline_comparison.rs`). The workload layer rides along:
/// the [`Workload`](st_load::Workload) generators, the
/// [`WorkloadSpec`](st_sim::WorkloadSpec) admission/batch knobs and the
/// [`WorkloadSummary`](st_sim::WorkloadSummary) latency percentiles in
/// every report.
pub mod prelude {
    pub use st_analysis::{beta_tilde, beta_tilde_two_thirds, check_conditions};
    pub use st_blocktree::{Block, BlockTree};
    pub use st_core::{DecisionEvent, Protocol, QuorumProcess, TobConfig, TobProcess};
    pub use st_ga::{tally, GaInstance, GaOutput, Thresholds};
    pub use st_load::{ConstantRate, Diurnal, FlashCrowd, Histogram, Mempool, Workload};
    pub use st_messages::{Envelope, Payload, Propose, Vote, VoteStore};
    pub use st_sim::adversary::{
        BlackoutAdversary, EquivocatingVoter, PartitionAttacker, ReorgAttacker, SilentAdversary,
    };
    pub use st_sim::baseline::StaticQuorumBft;
    pub use st_sim::scenario::{alternating, gst, Scenario};
    pub use st_sim::{
        diurnal_schedule, Adversary, AdversaryCtx, AsyncWindow, BuildError, EnvView, ObsCtx,
        Observer, Recipients, RecoveryRecord, RoundSample, RoundTrace, SafetyViolation, Schedule,
        SegmentKind, SentMessage, SimBuilder, SimConfig, SimEvent, SimReport, Simulation, Sweep,
        SweepComparison, SweepReports, TargetedMessage, Timeline, TxRecord, ViolationKind,
        WorkloadSpec, WorkloadSummary,
    };
    pub use st_types::{BlockId, Grade, Params, ProcessId, Round, RoundKind, TxId, View};
}
