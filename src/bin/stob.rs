//! `stob` — command-line runner for the sleepy-tob simulator.
//!
//! ```text
//! stob run        [--n 16] [--eta 4] [--rounds 60] [--seed 1] [--churn 0.0]
//!                 [--byz 0] [--txs 4] [--async-at R --pi P] [--adversary NAME]
//!                 [--protocol sleepy|quorum] [--timeline]
//! stob attack     [--eta 0|4] — the Section-1 attack demo, both protocols
//! stob curve      [--beta 0.3333] — print the Figure-1 β̃ curve
//! stob check      [--n 16] [--eta 4] [--gamma 0.1] [--sleep 0.02] — verify
//!                 Equations 1–3 for a random-churn schedule
//! stob scenario   [NAME|list] — run a named set-piece (the paper's attacks,
//!                 the Ethereum incident, …)
//! stob explore    [--pi 1] [--eta 4] — exhaustively enumerate every
//!                 delivery strategy at n = 4 (Theorem 2, verified)
//! ```
//!
//! Adversaries: `silent`, `blackout`, `partition`, `reorg`, `equivocate`,
//! `junk`, `withhold`.
//!
//! Protocols (`run` only): `sleepy` (default — Algorithm 1 with
//! expiration η) and `quorum` (the fixed-quorum BFT baseline; honest-only,
//! so only the delivery-control adversaries `silent` / `blackout` /
//! `partition` apply, and `--eta` is ignored).

use sleepy_tob::prelude::*;
use sleepy_tob::sim::adversary::{Adversary, JunkVoter, WithholdingLeader};
use sleepy_tob::sim::ChurnOptions;
use std::collections::HashMap;
use std::process::ExitCode;

/// Minimal `--key value` argument parser (flags without values get "true").
struct Args {
    values: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let has_value = i + 1 < argv.len() && !argv[i + 1].starts_with("--");
                if has_value {
                    values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    values.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                eprintln!("warning: ignoring stray argument {:?}", argv[i]);
                i += 1;
            }
        }
        Args { values }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("warning: could not parse --{key} {v:?}; using default");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

fn make_adversary(name: &str) -> Option<Box<dyn Adversary>> {
    Some(match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        "reorg" => Box::new(ReorgAttacker::new()),
        "equivocate" => Box::new(EquivocatingVoter::new()),
        "junk" => Box::new(JunkVoter::new()),
        "withhold" => Box::new(WithholdingLeader::new()),
        _ => return None,
    })
}

/// The quorum baseline is honest-only: the strategies that make sense
/// against it are the pure delivery-control ones.
fn make_adversary_quorum(name: &str) -> Option<Box<dyn Adversary<QuorumProcess>>> {
    Some(match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        _ => return None,
    })
}

fn cmd_run(args: &Args) -> ExitCode {
    let n: usize = args.get("n", 16);
    let eta: u64 = args.get("eta", 4);
    let rounds: u64 = args.get("rounds", 60);
    let seed: u64 = args.get("seed", 1);
    let churn: f64 = args.get("churn", 0.0);
    let byz: usize = args.get("byz", 0);
    let txs: u64 = args.get("txs", 4);
    let adversary_name = args.opt("adversary").unwrap_or("silent");
    let protocol = args.opt("protocol").unwrap_or("sleepy");
    if !matches!(protocol, "sleepy" | "quorum") {
        eprintln!("unknown protocol {protocol:?} (expected sleepy|quorum)");
        return ExitCode::from(2);
    }
    if protocol == "quorum" && byz > 0 {
        // Corrupted machines' output is discarded and the honest-only
        // baseline's adversaries never speak for them, so --byz would
        // just shrink the voter set below the fixed quorum forever —
        // a misleading "stalls everything" result, not a comparison.
        eprintln!("--byz does not apply to the honest-only quorum baseline");
        return ExitCode::from(2);
    }
    let params = match Params::builder(n)
        .expiration(eta)
        .churn_rate(churn.min(0.32))
        .build()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            return ExitCode::from(2);
        }
    };

    let schedule = if churn > 0.0 {
        let sleep_prob = 1.0 - (1.0 - churn).powf(1.0 / eta.max(1) as f64);
        Schedule::random_churn(
            n,
            rounds,
            sleep_prob,
            seed,
            &ChurnOptions {
                min_awake_frac: 0.4,
                wake_prob: 0.3,
                ..Default::default()
            },
        )
    } else {
        Schedule::full(n, rounds)
    }
    .with_static_byzantine(byz);

    let mut config = SimConfig::new(params, seed).horizon(rounds).txs_every(txs);
    if let Some(at) = args.opt("async-at") {
        let at: u64 = at.parse().unwrap_or(0);
        let pi: u64 = args.get("pi", 1);
        if at == 0 {
            eprintln!("--async-at must be ≥ 1");
            return ExitCode::from(2);
        }
        config = config.async_window(AsyncWindow::new(Round::new(at), pi));
    }

    let report = match protocol {
        "quorum" => {
            let Some(adversary) = make_adversary_quorum(adversary_name) else {
                eprintln!(
                    "adversary {adversary_name:?} is unknown or does not apply to the \
                     honest-only quorum baseline (try silent|blackout|partition)"
                );
                return ExitCode::from(2);
            };
            SimBuilder::<QuorumProcess>::for_protocol_config(config)
                .schedule(schedule)
                .adversary_boxed(adversary)
                .run()
        }
        _ => {
            let Some(adversary) = make_adversary(adversary_name) else {
                eprintln!("unknown adversary {adversary_name:?}");
                return ExitCode::from(2);
            };
            SimBuilder::from_config(config)
                .schedule(schedule)
                .adversary_boxed(adversary)
                .run()
        }
    };
    println!("protocol             : {protocol}");
    println!("adversary            : {}", report.adversary);
    println!("rounds               : 0..={}", report.rounds_run);
    println!("decision events      : {}", report.decisions_total);
    println!("final chain height   : {}", report.final_decided_height);
    println!("messages sent        : {}", report.messages_sent);
    println!("agreement violations : {}", report.safety_violations.len());
    println!(
        "D_ra conflicts       : {}",
        report.resilience_violations.len()
    );
    if !report.recoveries.is_empty() {
        println!(
            "worst healing lag    : {}",
            report
                .max_recovery_rounds()
                .map_or("—".into(), |l| format!("{l} rounds")),
        );
    }
    println!(
        "tx inclusion         : {:.0}% (mean latency {})",
        report.tx_inclusion_rate() * 100.0,
        report
            .mean_tx_latency()
            .map_or("—".into(), |l| format!("{l:.1} rounds")),
    );
    if args.flag("timeline") {
        print!("{}", report.timeline.to_csv());
    }
    if report.is_safe() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_attack(args: &Args) -> ExitCode {
    for eta in [0u64, args.get("eta", 6).max(5)] {
        let n = 12;
        let horizon = 32;
        let params = Params::builder(n).expiration(eta).build().expect("valid");
        let report = SimBuilder::from_config(
            SimConfig::new(params, 5)
                .horizon(horizon)
                .async_window(AsyncWindow::new(Round::new(12), 4)),
        )
        .schedule(Schedule::full(n, horizon))
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run();
        println!(
            "η = {eta:<2} → agreement violations: {:<4} (π = 4 {} η)",
            report.safety_violations.len(),
            if 4 < eta { "<" } else { "≥" },
        );
    }
    println!("\nThe Section-1 attack: vanilla breaks, η > π survives (Theorem 2).");
    ExitCode::SUCCESS
}

fn cmd_curve(args: &Args) -> ExitCode {
    let beta: f64 = args.get("beta", 1.0 / 3.0);
    println!("γ      β̃(β = {beta:.4})");
    let mut g = 0.0;
    while g < beta + 0.07 {
        let v = beta_tilde(beta, g).max(0.0);
        let bars = (v * 120.0) as usize;
        println!("{g:.2}   {v:.3}  {}", "█".repeat(bars));
        g += 0.02;
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &Args) -> ExitCode {
    let n: usize = args.get("n", 16);
    let eta: u64 = args.get("eta", 4);
    let gamma: f64 = args.get("gamma", 0.1);
    let sleep: f64 = args.get("sleep", 0.02);
    let seed: u64 = args.get("seed", 1);
    let schedule = Schedule::random_churn(
        n,
        60,
        sleep,
        seed,
        &ChurnOptions {
            min_awake_frac: 0.4,
            wake_prob: 0.3,
            ..Default::default()
        },
    );
    let report = check_conditions(&schedule, 1.0 / 3.0, gamma, eta, None);
    println!("schedule: n = {n}, 60 rounds, per-round sleep {sleep}, seed {seed}");
    println!(
        "Eq.1 (churn ≤ γ = {gamma}): {} violating rounds",
        report.churn_violations.len()
    );
    println!(
        "Eq.3 (η-sleepiness):      {} violating rounds",
        report.eta_sleepiness_violations.len()
    );
    println!(
        "verdict: synchronous-operation conditions {}",
        if report.synchronous_conditions_hold() {
            "HOLD"
        } else {
            "VIOLATED"
        },
    );
    if report.synchronous_conditions_hold() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scenario(argv: &[String]) -> ExitCode {
    use sleepy_tob::sim::scenario::Scenario;
    let name = argv.first().map(String::as_str).unwrap_or("list");
    if name == "list" {
        println!("available scenarios:");
        for s in Scenario::ALL {
            println!("  {:<22} {}", s.name(), s.describe());
        }
        return ExitCode::SUCCESS;
    }
    let Some(scenario) = Scenario::by_name(name) else {
        eprintln!("unknown scenario {name:?}; try `stob scenario list`");
        return ExitCode::from(2);
    };
    let report = scenario.run(7);
    let (expect_safe, expect_resilient) = scenario.expected();
    println!("{}: {}", scenario.name(), scenario.describe());
    println!(
        "  agreement violations : {}",
        report.safety_violations.len()
    );
    println!(
        "  D_ra conflicts       : {}",
        report.resilience_violations.len()
    );
    println!("  final chain height   : {}", report.final_decided_height);
    println!(
        "  outcome              : safe={} resilient={} (expected {}/{})",
        report.is_safe(),
        report.is_asynchrony_resilient(),
        expect_safe,
        expect_resilient,
    );
    ExitCode::SUCCESS
}

fn cmd_explore(args: &Args) -> ExitCode {
    use sleepy_tob::sim::explore::exhaustive_check;
    use sleepy_tob::sim::AsyncWindow;
    let pi: u64 = args.get("pi", 1);
    let eta: u64 = args.get("eta", 4);
    if pi > 2 {
        eprintln!("per-receiver exploration is 4^(4·π) runs; use π ≤ 2");
        return ExitCode::from(2);
    }
    let params = Params::builder(4).expiration(eta).build().expect("valid");
    let window = AsyncWindow::new(Round::new(10), pi);
    let report = exhaustive_check(params, window, 14 + pi + 8);
    println!(
        "n = 4, η = {eta}, π = {pi}: {} strategies exhaustively executed",
        report.strategies_run
    );
    println!(
        "  post-window agreement violations : {}",
        report.violating.len()
    );
    println!(
        "  D_ra violations                  : {}",
        report.dra_violating.len()
    );
    println!(
        "  in-window orphaning strategies   : {}",
        report.orphaning_only.len()
    );
    if report.all_safe() {
        println!("  verdict: every strategy survived — Theorem 2, checked");
        ExitCode::SUCCESS
    } else {
        println!("  verdict: witnesses found (expected for η ≤ π)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprintln!(
            "usage: stob <run|attack|curve|check|scenario|explore> [--flags]\n\
             see the binary's source header for the full flag list"
        );
        return ExitCode::from(2);
    };
    // `scenario` takes a positional argument; the rest are flag-driven.
    if command == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    let args = Args::parse(&argv[1..]);
    match command {
        "run" => cmd_run(&args),
        "attack" => cmd_attack(&args),
        "curve" => cmd_curve(&args),
        "check" => cmd_check(&args),
        "explore" => cmd_explore(&args),
        other => {
            eprintln!(
                "unknown command {other:?} (expected run|attack|curve|check|scenario|explore)"
            );
            ExitCode::from(2)
        }
    }
}
