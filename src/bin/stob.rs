//! `stob` — command-line runner for the sleepy-tob simulator.
//!
//! ```text
//! stob run        [--n 16] [--eta 4] [--rounds 60] [--seed 1] [--churn 0.0]
//!                 [--byz 0] [--txs 4] [--async-at R --pi P] [--adversary NAME]
//!                 [--protocol sleepy|quorum] [--timeline]
//! stob attack     [--eta 0|4] — the Section-1 attack demo, both protocols
//! stob curve      [--beta 0.3333] — print the Figure-1 β̃ curve
//! stob check      [--n 16] [--eta 4] [--gamma 0.1] [--sleep 0.02] — verify
//!                 Equations 1–3 for a random-churn schedule
//! stob scenario   [NAME|list] — run a named set-piece (the paper's attacks,
//!                 the Ethereum incident, …)
//! stob explore    [--pi 1] [--eta 4] — exhaustively enumerate every
//!                 delivery strategy at n = 4 (Theorem 2, verified)
//! stob serve      --plan plan.json --id 0 --out node_0.json — run one
//!                 socket node of a scripted cluster (see `stob cluster`)
//! stob cluster    [--smoke] [--n 5] [--rounds 60] [--seed 7] [--tick 10]
//!                 [--base-port 39700] [--dir DIR] [--report FILE] —
//!                 spawn a real multi-process TCP cluster with scripted
//!                 kill/sleep/partition faults and byte-compare every
//!                 node's decided chain against the equivalent simulation
//! ```
//!
//! Adversaries: `silent`, `blackout`, `partition`, `reorg`, `equivocate`,
//! `junk`, `withhold`.
//!
//! Protocols (`run` only): `sleepy` (default — Algorithm 1 with
//! expiration η) and `quorum` (the fixed-quorum BFT baseline; honest-only,
//! so only the delivery-control adversaries `silent` / `blackout` /
//! `partition` apply, and `--eta` is ignored).

use sleepy_tob::prelude::*;
use sleepy_tob::sim::adversary::{Adversary, JunkVoter, WithholdingLeader};
use sleepy_tob::sim::ChurnOptions;
use std::collections::HashMap;
use std::process::ExitCode;

/// Minimal `--key value` argument parser (flags without values get "true").
struct Args {
    values: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let has_value = i + 1 < argv.len() && !argv[i + 1].starts_with("--");
                if has_value {
                    values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    values.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                eprintln!("warning: ignoring stray argument {:?}", argv[i]);
                i += 1;
            }
        }
        Args { values }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("warning: could not parse --{key} {v:?}; using default");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

fn make_adversary(name: &str) -> Option<Box<dyn Adversary>> {
    Some(match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        "reorg" => Box::new(ReorgAttacker::new()),
        "equivocate" => Box::new(EquivocatingVoter::new()),
        "junk" => Box::new(JunkVoter::new()),
        "withhold" => Box::new(WithholdingLeader::new()),
        _ => return None,
    })
}

/// The quorum baseline is honest-only: the strategies that make sense
/// against it are the pure delivery-control ones.
fn make_adversary_quorum(name: &str) -> Option<Box<dyn Adversary<QuorumProcess>>> {
    Some(match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        _ => return None,
    })
}

fn cmd_run(args: &Args) -> ExitCode {
    let n: usize = args.get("n", 16);
    let eta: u64 = args.get("eta", 4);
    let rounds: u64 = args.get("rounds", 60);
    let seed: u64 = args.get("seed", 1);
    let churn: f64 = args.get("churn", 0.0);
    let byz: usize = args.get("byz", 0);
    let txs: u64 = args.get("txs", 4);
    let adversary_name = args.opt("adversary").unwrap_or("silent");
    let protocol = args.opt("protocol").unwrap_or("sleepy");
    if !matches!(protocol, "sleepy" | "quorum") {
        eprintln!("unknown protocol {protocol:?} (expected sleepy|quorum)");
        return ExitCode::from(2);
    }
    if protocol == "quorum" && byz > 0 {
        // Corrupted machines' output is discarded and the honest-only
        // baseline's adversaries never speak for them, so --byz would
        // just shrink the voter set below the fixed quorum forever —
        // a misleading "stalls everything" result, not a comparison.
        eprintln!("--byz does not apply to the honest-only quorum baseline");
        return ExitCode::from(2);
    }
    let params = match Params::builder(n)
        .expiration(eta)
        .churn_rate(churn.min(0.32))
        .build()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            return ExitCode::from(2);
        }
    };

    let schedule = if churn > 0.0 {
        let sleep_prob = 1.0 - (1.0 - churn).powf(1.0 / eta.max(1) as f64);
        Schedule::random_churn(
            n,
            rounds,
            sleep_prob,
            seed,
            &ChurnOptions {
                min_awake_frac: 0.4,
                wake_prob: 0.3,
                ..Default::default()
            },
        )
    } else {
        Schedule::full(n, rounds)
    }
    .with_static_byzantine(byz);

    let mut config = SimConfig::new(params, seed).horizon(rounds).txs_every(txs);
    if let Some(at) = args.opt("async-at") {
        let at: u64 = at.parse().unwrap_or(0);
        let pi: u64 = args.get("pi", 1);
        if at == 0 {
            eprintln!("--async-at must be ≥ 1");
            return ExitCode::from(2);
        }
        config = config.async_window(AsyncWindow::new(Round::new(at), pi));
    }

    let report = match protocol {
        "quorum" => {
            let Some(adversary) = make_adversary_quorum(adversary_name) else {
                eprintln!(
                    "adversary {adversary_name:?} is unknown or does not apply to the \
                     honest-only quorum baseline (try silent|blackout|partition)"
                );
                return ExitCode::from(2);
            };
            SimBuilder::<QuorumProcess>::for_protocol_config(config)
                .schedule(schedule)
                .adversary_boxed(adversary)
                .run()
        }
        _ => {
            let Some(adversary) = make_adversary(adversary_name) else {
                eprintln!("unknown adversary {adversary_name:?}");
                return ExitCode::from(2);
            };
            SimBuilder::from_config(config)
                .schedule(schedule)
                .adversary_boxed(adversary)
                .run()
        }
    };
    println!("protocol             : {protocol}");
    println!("adversary            : {}", report.adversary);
    println!("rounds               : 0..={}", report.rounds_run);
    println!("decision events      : {}", report.decisions_total);
    println!("final chain height   : {}", report.final_decided_height);
    println!("messages sent        : {}", report.messages_sent);
    println!("agreement violations : {}", report.safety_violations.len());
    println!(
        "D_ra conflicts       : {}",
        report.resilience_violations.len()
    );
    if !report.recoveries.is_empty() {
        println!(
            "worst healing lag    : {}",
            report
                .max_recovery_rounds()
                .map_or("—".into(), |l| format!("{l} rounds")),
        );
    }
    println!(
        "tx inclusion         : {:.0}% (mean latency {})",
        report.tx_inclusion_rate() * 100.0,
        report
            .mean_tx_latency()
            .map_or("—".into(), |l| format!("{l:.1} rounds")),
    );
    if args.flag("timeline") {
        print!("{}", report.timeline.to_csv());
    }
    if report.is_safe() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_attack(args: &Args) -> ExitCode {
    for eta in [0u64, args.get("eta", 6).max(5)] {
        let n = 12;
        let horizon = 32;
        let params = Params::builder(n).expiration(eta).build().expect("valid");
        let report = SimBuilder::from_config(
            SimConfig::new(params, 5)
                .horizon(horizon)
                .async_window(AsyncWindow::new(Round::new(12), 4)),
        )
        .schedule(Schedule::full(n, horizon))
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run();
        println!(
            "η = {eta:<2} → agreement violations: {:<4} (π = 4 {} η)",
            report.safety_violations.len(),
            if 4 < eta { "<" } else { "≥" },
        );
    }
    println!("\nThe Section-1 attack: vanilla breaks, η > π survives (Theorem 2).");
    ExitCode::SUCCESS
}

fn cmd_curve(args: &Args) -> ExitCode {
    let beta: f64 = args.get("beta", 1.0 / 3.0);
    println!("γ      β̃(β = {beta:.4})");
    let mut g = 0.0;
    while g < beta + 0.07 {
        let v = beta_tilde(beta, g).max(0.0);
        let bars = (v * 120.0) as usize;
        println!("{g:.2}   {v:.3}  {}", "█".repeat(bars));
        g += 0.02;
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &Args) -> ExitCode {
    let n: usize = args.get("n", 16);
    let eta: u64 = args.get("eta", 4);
    let gamma: f64 = args.get("gamma", 0.1);
    let sleep: f64 = args.get("sleep", 0.02);
    let seed: u64 = args.get("seed", 1);
    let schedule = Schedule::random_churn(
        n,
        60,
        sleep,
        seed,
        &ChurnOptions {
            min_awake_frac: 0.4,
            wake_prob: 0.3,
            ..Default::default()
        },
    );
    let report = check_conditions(&schedule, 1.0 / 3.0, gamma, eta, None);
    println!("schedule: n = {n}, 60 rounds, per-round sleep {sleep}, seed {seed}");
    println!(
        "Eq.1 (churn ≤ γ = {gamma}): {} violating rounds",
        report.churn_violations.len()
    );
    println!(
        "Eq.3 (η-sleepiness):      {} violating rounds",
        report.eta_sleepiness_violations.len()
    );
    println!(
        "verdict: synchronous-operation conditions {}",
        if report.synchronous_conditions_hold() {
            "HOLD"
        } else {
            "VIOLATED"
        },
    );
    if report.synchronous_conditions_hold() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scenario(argv: &[String]) -> ExitCode {
    use sleepy_tob::sim::scenario::Scenario;
    let name = argv.first().map(String::as_str).unwrap_or("list");
    if name == "list" {
        println!("available scenarios:");
        for s in Scenario::ALL {
            println!("  {:<22} {}", s.name(), s.describe());
        }
        return ExitCode::SUCCESS;
    }
    let Some(scenario) = Scenario::by_name(name) else {
        eprintln!("unknown scenario {name:?}; try `stob scenario list`");
        return ExitCode::from(2);
    };
    let report = scenario.run(7);
    let (expect_safe, expect_resilient) = scenario.expected();
    println!("{}: {}", scenario.name(), scenario.describe());
    println!(
        "  agreement violations : {}",
        report.safety_violations.len()
    );
    println!(
        "  D_ra conflicts       : {}",
        report.resilience_violations.len()
    );
    println!("  final chain height   : {}", report.final_decided_height);
    println!(
        "  outcome              : safe={} resilient={} (expected {}/{})",
        report.is_safe(),
        report.is_asynchrony_resilient(),
        expect_safe,
        expect_resilient,
    );
    ExitCode::SUCCESS
}

fn cmd_explore(args: &Args) -> ExitCode {
    use sleepy_tob::sim::explore::exhaustive_check;
    use sleepy_tob::sim::AsyncWindow;
    let pi: u64 = args.get("pi", 1);
    let eta: u64 = args.get("eta", 4);
    if pi > 2 {
        eprintln!("per-receiver exploration is 4^(4·π) runs; use π ≤ 2");
        return ExitCode::from(2);
    }
    let params = Params::builder(4).expiration(eta).build().expect("valid");
    let window = AsyncWindow::new(Round::new(10), pi);
    let report = exhaustive_check(params, window, 14 + pi + 8);
    println!(
        "n = 4, η = {eta}, π = {pi}: {} strategies exhaustively executed",
        report.strategies_run
    );
    println!(
        "  post-window agreement violations : {}",
        report.violating.len()
    );
    println!(
        "  D_ra violations                  : {}",
        report.dra_violating.len()
    );
    println!(
        "  in-window orphaning strategies   : {}",
        report.orphaning_only.len()
    );
    if report.all_safe() {
        println!("  verdict: every strategy survived — Theorem 2, checked");
        ExitCode::SUCCESS
    } else {
        println!("  verdict: witnesses found (expected for η ≤ π)");
        ExitCode::FAILURE
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    let (Some(plan), Some(id), Some(out)) = (args.opt("plan"), args.opt("id"), args.opt("out"))
    else {
        eprintln!("usage: stob serve --plan plan.json --id N --out node_N.json");
        return ExitCode::from(2);
    };
    let Ok(id) = id.parse::<u32>() else {
        eprintln!("--id must be a node index");
        return ExitCode::from(2);
    };
    match sleepy_tob::node::serve(plan, id, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the scripted cluster scenario. `--smoke` is the small CI
/// preset (3 nodes, one kill + one partition); the default is the
/// acceptance scenario (5 nodes, 60 rounds, kill + sleep + partition).
/// Fault windows that do not fit a shortened `--rounds` are dropped.
fn build_cluster_plan(args: &Args) -> sleepy_tob::node::ClusterPlan {
    use sleepy_tob::node::{ClusterPlan, KillWindow, PartitionWindow};
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", if smoke { 3 } else { 5 });
    let rounds: u64 = args.get("rounds", if smoke { 24 } else { 60 });
    let mut plan = ClusterPlan::full(n, rounds);
    plan.seed = args.get("seed", 7);
    plan.txs_every = args.get("txs", 3);
    plan.tick_ms = args.get("tick", 10);
    plan.base_port = args.get("base-port", 39700);
    let kill = |plan: &mut ClusterPlan, node: u32, start: u64, end: u64| {
        if end <= rounds && (node as usize) < n {
            plan.sleep(node, start, end);
            plan.kills.push(KillWindow { node, start, end });
        }
    };
    let partition = |plan: &mut ClusterPlan, start: u64, end: u64, groups: Vec<Vec<u32>>| {
        if end <= rounds {
            plan.partitions.push(PartitionWindow { start, end, groups });
        }
    };
    if smoke {
        kill(&mut plan, 2, 6, 9);
        if 12 <= rounds {
            plan.sleep(1, 11, 12);
        }
        partition(&mut plan, 14, 16, vec![vec![0], vec![1, 2]]);
    } else {
        kill(&mut plan, n as u32 - 1, 12, 18);
        if 23 <= rounds && n > 1 {
            plan.sleep(1, 20, 23);
        }
        let left: Vec<u32> = (0..n as u32 / 2).collect();
        partition(&mut plan, 30, 34, vec![left]);
    }
    plan
}

/// Runs the byte-equivalent simulation of a cluster plan: same params,
/// same seed, `Schedule::custom` from the awake matrix, `Timeline`
/// partitions from the partition windows, same tx cadence. Returns the
/// per-process decision logs and final decided tips.
fn run_equivalent_sim(
    plan: &sleepy_tob::node::ClusterPlan,
) -> Result<(Vec<Vec<DecisionEvent>>, Vec<u64>), String> {
    let params = Params::builder(plan.n)
        .expiration(plan.eta)
        .build()
        .map_err(|e| format!("bad params: {e}"))?;
    let (tap, log) = sleepy_tob::sim::DecisionTap::new(plan.n);
    let mut timeline = Timeline::synchronous();
    for (start, len, groups) in plan.timeline_partitions() {
        timeline = timeline.partition(start, len, groups);
    }
    let mut sim = SimBuilder::from_config(
        SimConfig::new(params, plan.seed)
            .horizon(plan.horizon)
            .txs_every(plan.txs_every),
    )
    .schedule(Schedule::custom(plan.schedule_matrix()))
    .timeline(timeline)
    .observer(tap)
    .build()
    .map_err(|e| format!("sim build: {e}"))?;
    while sim.step().is_some() {}
    let tips: Vec<u64> = sim
        .processes()
        .iter()
        .map(|p| p.decided_tip().as_u64())
        .collect();
    let decisions = log.borrow().clone();
    Ok((decisions, tips))
}

/// One node's cross-check verdict in the cluster report.
#[derive(serde::Serialize)]
struct NodeVerdict {
    node: u32,
    restarts: u64,
    exit_code: Option<i32>,
    decided_tip: Option<u64>,
    sim_decided_tip: u64,
    decisions: Option<usize>,
    sim_decisions: usize,
    matches: bool,
    error: Option<String>,
}

/// The cluster report written by `stob cluster --report`.
#[derive(serde::Serialize)]
struct ClusterReport {
    n: usize,
    rounds: u64,
    seed: u64,
    timed_out: bool,
    polls: u64,
    divergences: usize,
    nodes: Vec<NodeVerdict>,
}

fn cmd_cluster(args: &Args) -> ExitCode {
    let plan = build_cluster_plan(args);
    if let Err(e) = plan.validate() {
        eprintln!("invalid cluster plan: {e}");
        return ExitCode::from(2);
    }

    // The oracle first: the byte-equivalent lockstep simulation.
    let (sim_decisions, sim_tips) = match run_equivalent_sim(&plan) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("equivalent simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Then the real thing: one OS process per node, over TCP.
    let exe = match std::env::current_exe() {
        Ok(p) => p.display().to_string(),
        Err(e) => {
            eprintln!("cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = args
        .opt("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("stob-cluster-{}", std::process::id()))
        });
    let poll_ms = 5;
    // Generous global budget: nominal run time plus slack for the kill
    // window hold, replay, and end-of-run linger.
    let timeout_polls = ((plan.horizon + 1) * plan.tick_ms.max(1) * 20 + 60_000) / poll_ms;
    let opts = sleepy_tob::node::ClusterOptions {
        plan: plan.clone(),
        exec: vec![exe, "serve".into()],
        dir: dir.clone(),
        poll_ms,
        timeout_polls,
    };
    println!(
        "cluster: n = {}, rounds = 0..={}, seed = {}, kills = {}, partitions = {} (dir {})",
        plan.n,
        plan.horizon,
        plan.seed,
        plan.kills.len(),
        plan.partitions.len(),
        dir.display(),
    );
    let outcome = match sleepy_tob::node::run_cluster(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cluster harness failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Byte-compare each node's decided chain against the simulation.
    let mut divergences = 0usize;
    let mut verdicts = Vec::with_capacity(plan.n);
    for run in &outcome.nodes {
        let i = run.node as usize;
        let expect = serde_json::to_string(&sim_decisions[i]).unwrap_or_default();
        let (matches, error, tip, count) = match &run.outcome {
            None => (
                false,
                Some("node produced no outcome file".to_string()),
                None,
                None,
            ),
            Some(out) => {
                let got = serde_json::to_string(&out.decisions).unwrap_or_default();
                let tip_ok = out.decided_tip == sim_tips[i];
                let log_ok = got == expect;
                let error = if !tip_ok {
                    Some(format!(
                        "decided tip {} != simulated {}",
                        out.decided_tip, sim_tips[i]
                    ))
                } else if !log_ok {
                    Some(format!(
                        "decision log diverges ({} events vs {} simulated)",
                        out.decisions.len(),
                        sim_decisions[i].len()
                    ))
                } else {
                    None
                };
                (
                    tip_ok && log_ok,
                    error,
                    Some(out.decided_tip),
                    Some(out.decisions.len()),
                )
            }
        };
        if !matches {
            divergences += 1;
        }
        println!(
            "  node {i}: {} (restarts {}, decisions {}/{}, tip {}/{})",
            if matches { "MATCH" } else { "DIVERGED" },
            run.restarts,
            count.map_or("—".into(), |c| c.to_string()),
            sim_decisions[i].len(),
            tip.map_or("—".into(), |t| t.to_string()),
            sim_tips[i],
        );
        if let Some(e) = &error {
            println!("          {e}");
        }
        verdicts.push(NodeVerdict {
            node: run.node,
            restarts: run.restarts,
            exit_code: run.exit_code,
            decided_tip: tip,
            sim_decided_tip: sim_tips[i],
            decisions: count,
            sim_decisions: sim_decisions[i].len(),
            matches,
            error,
        });
    }
    if outcome.timed_out {
        eprintln!("cluster harness timed out after {} polls", outcome.polls);
    }
    let report = ClusterReport {
        n: plan.n,
        rounds: plan.horizon,
        seed: plan.seed,
        timed_out: outcome.timed_out,
        polls: outcome.polls,
        divergences,
        nodes: verdicts,
    };
    if let Some(path) = args.opt("report") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write report {path}: {e}");
                }
            }
            Err(e) => eprintln!("cannot render report: {e:?}"),
        }
    }
    if divergences == 0 && !outcome.timed_out {
        println!(
            "verdict: all {} nodes byte-identical to the simulation",
            plan.n
        );
        ExitCode::SUCCESS
    } else {
        println!("verdict: {divergences} node(s) diverged from the simulation");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprintln!(
            "usage: stob <run|attack|curve|check|scenario|explore|serve|cluster> [--flags]\n\
             see the binary's source header for the full flag list"
        );
        return ExitCode::from(2);
    };
    // `scenario` takes a positional argument; the rest are flag-driven.
    if command == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    let args = Args::parse(&argv[1..]);
    match command {
        "run" => cmd_run(&args),
        "attack" => cmd_attack(&args),
        "curve" => cmd_curve(&args),
        "check" => cmd_check(&args),
        "explore" => cmd_explore(&args),
        "serve" => cmd_serve(&args),
        "cluster" => cmd_cluster(&args),
        other => {
            eprintln!(
                "unknown command {other:?} \
                 (expected run|attack|curve|check|scenario|explore|serve|cluster)"
            );
            ExitCode::from(2)
        }
    }
}
