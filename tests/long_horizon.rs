//! Long-horizon soak: 400 rounds with churn, periodic asynchrony-free
//! operation, and a transaction stream — state stays bounded (pruning
//! works), the chain grows linearly, and every invariant holds to the
//! end.

use sleepy_tob::prelude::*;
use sleepy_tob::sim::ChurnOptions;

#[test]
fn four_hundred_rounds_with_churn() {
    let n = 10;
    let horizon = 400u64;
    let params = Params::builder(n)
        .expiration(4)
        .churn_rate(0.1)
        .build()
        .unwrap();
    let schedule = Schedule::random_churn(
        n,
        horizon,
        0.01,
        99,
        &ChurnOptions {
            min_awake_frac: 0.7,
            wake_prob: 0.5,
            ..Default::default()
        },
    )
    .with_static_byzantine(2);
    let report = SimBuilder::from_config(SimConfig::new(params, 4).horizon(horizon).txs_every(6))
        .schedule(schedule)
        .adversary(EquivocatingVoter::new())
        .build()
        .expect("valid simulation")
        .run();

    assert!(report.is_safe());
    // Linear chain growth: ≈ 1 block per view throughout, not just early.
    let t = &report.timeline;
    let first_half = t.growth_in(Round::new(0), Round::new(200));
    let second_half = t.growth_in(Round::new(200), Round::new(400));
    assert!(first_half >= 80, "first half grew {first_half}");
    assert!(
        second_half >= 80,
        "second half grew only {second_half} — state buildup slowing the protocol?"
    );
    // Liveness holds late in the run as well.
    let late: Vec<_> = report
        .txs
        .iter()
        .filter(|tx| tx.submitted.as_u64() > 300 && tx.submitted.as_u64() < 380)
        .collect();
    assert!(!late.is_empty());
    assert!(
        late.iter()
            .filter(|tx| tx.included_everywhere.is_some())
            .count()
            * 10
            >= late.len() * 8,
        "late-run inclusion degraded"
    );
}

/// Repeated asynchronous windows across a long run (the model has a
/// single window; we run sequential *simulations* chained by checkpoint
/// to cover the "occasional periods" phrasing of the introduction).
#[test]
fn sequential_disturbances_via_chained_runs() {
    let n = 8;
    let eta = 4u64;
    for (round_start, pi) in [(12u64, 2u64), (18, 3), (20, 1)] {
        let horizon = round_start + pi + 16;
        let params = Params::builder(n).expiration(eta).build().unwrap();
        let report = SimBuilder::from_config(
            SimConfig::new(params, round_start ^ pi) // distinct seeds
                .horizon(horizon)
                .async_window(AsyncWindow::new(Round::new(round_start), pi))
                .txs_every(4),
        )
        .schedule(Schedule::full(n, horizon))
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run();
        assert!(
            report.is_safe(),
            "window at {round_start}×{pi} broke safety"
        );
        assert!(report.is_asynchrony_resilient());
        assert!(report.max_recovery_rounds().unwrap_or(99) <= 2);
    }
}
