//! Integration tests for replay immunity and the execution timeline.

use sleepy_tob::prelude::*;
use sleepy_tob::sim::adversary::ReplayDriver;
use sleepy_tob::sim::{Network, Recipients};

/// Replaying authentic old messages must change nothing: votes are keyed
/// by their round tag, so re-delivery is a duplicate and cannot resurrect
/// expired votes (the property that makes the expiration window sound
/// against recorded-traffic attacks).
#[test]
fn replay_has_no_effect() {
    let n = 6;
    let params = Params::builder(n).expiration(3).build().unwrap();
    let config = TobConfig::new(params, 5);

    let run = |with_replay: bool| -> Vec<(u64, BlockId)> {
        let mut procs: Vec<TobProcess> = (0..n as u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        let mut network = Network::new(n);
        let mut replayer = ReplayDriver::new(2);
        for r in 0..=24u64 {
            let round = Round::new(r);
            let batches: Vec<Vec<Envelope>> =
                procs.iter_mut().map(|p| p.step_send(round)).collect();
            for (i, batch) in batches.iter().enumerate() {
                for env in batch {
                    network.send(
                        round,
                        ProcessId::new(i as u32),
                        Recipients::All,
                        env.clone(),
                    );
                }
            }
            // Replay all sufficiently old traffic into everyone.
            if with_replay {
                let pool: Vec<_> = network.pool().to_vec();
                replayer.replay_into(&pool, round, &mut procs);
            }
            for i in 0..n {
                for env in network.deliver_sync(ProcessId::new(i as u32), round) {
                    procs[i].on_receive_shared(&env);
                }
            }
        }
        procs[0]
            .decisions()
            .iter()
            .map(|d| (d.round.as_u64(), d.tip))
            .collect()
    };

    let clean = run(false);
    let replayed = run(true);
    assert!(!clean.is_empty());
    assert_eq!(clean, replayed, "replay changed protocol behaviour");
}

/// The timeline shows the chain growing *during* a mass-sleep incident —
/// the time-resolved version of the dynamic-availability claim.
#[test]
fn chain_grows_during_incident() {
    let n = 20;
    let horizon = 80u64;
    let params = Params::builder(n).build().unwrap();
    let report = SimBuilder::from_config(SimConfig::new(params, 3).horizon(horizon))
        .schedule(Schedule::mass_sleep(n, horizon, 0.6, 20, 60))
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    let t = &report.timeline;
    let during = t.growth_in(Round::new(20), Round::new(60));
    let before = t.growth_in(Round::new(0), Round::new(20));
    // ~1 block per view both before and during the outage.
    assert!(
        during >= 15,
        "chain grew only {during} blocks during the incident"
    );
    assert!(before >= 7);
    // Participation drop is visible in the series.
    assert_eq!(t.at(Round::new(30)).unwrap().honest_awake, 8);
    assert_eq!(t.at(Round::new(10)).unwrap().honest_awake, 20);
}

/// During a partition attack on vanilla MMR the per-process decided
/// heights visibly diverge; with η > π they stay tight.
#[test]
fn timeline_divergence_indicator() {
    let run = |eta: u64| {
        let n = 8;
        let horizon = 28u64;
        let params = Params::builder(n).expiration(eta).build().unwrap();
        SimBuilder::from_config(
            SimConfig::new(params, 5)
                .horizon(horizon)
                .async_window(AsyncWindow::new(Round::new(10), 4)),
        )
        .schedule(Schedule::full(n, horizon))
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run()
    };
    let vanilla = run(0);
    let extended = run(6);
    assert!(!vanilla.is_safe());
    assert!(extended.is_safe());
    // The spread indicator is wider for the broken run (both runs pause
    // during the window; only vanilla *diverges*).
    assert!(
        vanilla.timeline.max_height_spread() >= extended.timeline.max_height_spread(),
        "vanilla spread {} < extended spread {}",
        vanilla.timeline.max_height_spread(),
        extended.timeline.max_height_spread()
    );
}
