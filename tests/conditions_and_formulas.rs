//! Integration tests tying the analysis crate's condition checkers to
//! actual protocol behaviour: when the checkers certify a schedule, the
//! theorems' conclusions hold in simulation; the formulas agree with the
//! parameter validation in `st-types`.

use sleepy_tob::prelude::*;
use sleepy_tob::sim::ChurnOptions;

/// Schedules certified by the Equation 1–3 checkers yield safe + live
/// executions (the checkers are a sound precondition oracle).
#[test]
fn certified_schedules_behave() {
    let n = 15;
    let horizon = 50;
    let eta = 4u64;
    let gamma = 0.15;
    let mut certified = 0;
    for seed in 0..6u64 {
        let schedule = Schedule::random_churn(
            n,
            horizon,
            0.01,
            seed,
            &ChurnOptions {
                min_awake_frac: 0.7,
                wake_prob: 0.5,
                ..Default::default()
            },
        )
        .with_static_byzantine(2);
        let report = check_conditions(&schedule, 1.0 / 3.0, gamma, eta, None);
        if !report.synchronous_conditions_hold() {
            continue; // only certified schedules are under test
        }
        certified += 1;
        let params = Params::builder(n)
            .expiration(eta)
            .churn_rate(gamma)
            .build()
            .unwrap();
        let sim =
            SimBuilder::from_config(SimConfig::new(params, seed).horizon(horizon).txs_every(5))
                .schedule(schedule)
                .adversary(EquivocatingVoter::new())
                .build()
                .expect("valid simulation")
                .run();
        assert!(
            sim.is_safe(),
            "certified schedule (seed {seed}) broke safety"
        );
        assert!(
            sim.final_decided_height > 15,
            "certified schedule (seed {seed}) stalled at {}",
            sim.final_decided_height
        );
    }
    assert!(
        certified >= 3,
        "too few certified schedules to be meaningful"
    );
}

/// The analytic β̃ agrees between `st-analysis` and `st-types`, including
/// the Figure-1 specialisation.
#[test]
fn beta_tilde_consistency_across_crates() {
    for i in 0..=30 {
        let gamma = i as f64 / 100.0;
        let p = Params::builder(10)
            .expiration(4)
            .churn_rate(gamma)
            .build()
            .unwrap();
        assert!((p.adjusted_failure_ratio() - beta_tilde(1.0 / 3.0, gamma)).abs() < 1e-12);
        assert!((beta_tilde(1.0 / 3.0, gamma) - beta_tilde_two_thirds(gamma)).abs() < 1e-12);
    }
}

/// Equation 4 is what protects D_ra: the same attack flips from failing
/// to succeeding exactly when the checker's verdict flips.
#[test]
fn eq4_verdict_predicts_attack_outcome() {
    let n = 20;
    let eta = 4u64;
    let pi = 2u64;
    let window = AsyncWindow::new(Round::new(12), pi);
    for (extra_corruptions, should_hold) in [(0usize, true), (10, false)] {
        let mut schedule = Schedule::full(n, 50).with_static_byzantine(3);
        for i in 0..extra_corruptions {
            schedule = schedule.with_corrupted(ProcessId::new(i as u32), Round::new(12));
        }
        let verdict = check_conditions(&schedule, 1.0 / 3.0, 0.0, eta, Some(window));
        assert_eq!(
            verdict.eq4_violations.is_empty(),
            should_hold,
            "checker verdict unexpected for {extra_corruptions} corruptions"
        );
        let params = Params::builder(n).expiration(eta).build().unwrap();
        let report =
            SimBuilder::from_config(SimConfig::new(params, 3).horizon(50).async_window(window))
                .schedule(schedule)
                .adversary(ReorgAttacker::new())
                .build()
                .expect("valid simulation")
                .run();
        assert_eq!(
            report.resilience_violations.is_empty(),
            should_hold,
            "attack outcome disagrees with Eq.4 verdict ({extra_corruptions} corruptions)"
        );
    }
}

/// Parameter validation rejects exactly the configurations the theory
/// rejects.
#[test]
fn parameter_validation_matches_theory() {
    // γ ≥ β with expiration: Equation 2 would demand |B_r| < 0.
    assert!(Params::builder(10)
        .expiration(4)
        .churn_rate(0.34)
        .build()
        .is_err());
    // Without expiration the churn bound is vacuous.
    assert!(Params::builder(10)
        .expiration(0)
        .churn_rate(0.34)
        .build()
        .is_ok());
    // π ≥ η is constructible (you may run outside the guarantee) but
    // flagged as not asynchrony-resilient.
    let p = Params::builder(10)
        .expiration(3)
        .max_asynchrony(3)
        .build()
        .unwrap();
    assert!(!p.is_asynchrony_resilient());
}

/// The graded-agreement primitive and the full protocol agree on
/// thresholds: a GA instance with the same votes the protocol would see
/// produces the decision the protocol makes.
#[test]
fn ga_instance_matches_protocol_decision() {
    use sleepy_tob::blocktree::{Block, BlockTree};

    let mut tree = BlockTree::new();
    let block = tree
        .insert(Block::build(
            BlockId::GENESIS,
            View::new(1),
            ProcessId::new(0),
            vec![],
        ))
        .unwrap();

    // 7 fresh votes + 2 stale (M₀) votes for the block, 1 stale vote for
    // genesis: all 10 count, 9 > 2/3·10 ⇒ grade 1.
    let mut ga = GaInstance::new(Round::new(6), Thresholds::mmr());
    for i in 0..7 {
        ga.receive(Vote::new(ProcessId::new(i), Round::new(6), block));
    }
    ga.init_with(Vote::new(ProcessId::new(7), Round::new(4), block));
    ga.init_with(Vote::new(ProcessId::new(8), Round::new(4), block));
    ga.init_with(Vote::new(
        ProcessId::new(9),
        Round::new(3),
        BlockId::GENESIS,
    ));
    let out = ga.output(&tree);
    assert_eq!(out.participation(), 10);
    assert_eq!(out.grade_of(block), Some(Grade::One));
    assert_eq!(out.longest_grade1(), Some(block));
}
