//! Cross-validation: the `Simulation` engine and a hand-written lock-step
//! driver must produce byte-identical protocol behaviour for the same
//! configuration — guarding against the engine itself distorting the
//! protocol (delivery order, phase sequencing, decision observation).

use sleepy_tob::prelude::*;
use sleepy_tob::sim::{Network, Recipients};

const N: usize = 8;
const HORIZON: u64 = 30;
const SEED: u64 = 1234;

fn params() -> Params {
    Params::builder(N).expiration(3).build().unwrap()
}

/// Hand-written driver: full participation, synchronous, using the same
/// Network primitive.
fn manual_run() -> Vec<TobProcess> {
    let config = TobConfig::new(params(), SEED);
    let mut procs: Vec<TobProcess> = (0..N as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
        .collect();
    let mut network = Network::new(N);
    for r in 0..=HORIZON {
        let round = Round::new(r);
        for (i, p) in procs.iter_mut().enumerate() {
            for env in p.step_send(round) {
                network.send(round, ProcessId::new(i as u32), Recipients::All, env);
            }
        }
        for (i, p) in procs.iter_mut().enumerate() {
            for env in network.deliver_sync(ProcessId::new(i as u32), round) {
                p.on_receive_shared(&env);
            }
        }
    }
    procs
}

#[test]
fn engine_matches_manual_driver() {
    let report = SimBuilder::from_config(SimConfig::new(params(), SEED).horizon(HORIZON))
        .schedule(Schedule::full(N, HORIZON))
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    let manual = manual_run();

    // Same decision count per process, same final decided height.
    let manual_heights: Vec<u64> = manual
        .iter()
        .map(|p| p.tree().height(p.decided_tip()).unwrap_or(0))
        .collect();
    assert_eq!(
        report.final_decided_height,
        *manual_heights.iter().max().unwrap()
    );
    let manual_decisions: Vec<usize> = manual.iter().map(|p| p.decisions().len()).collect();
    assert_eq!(report.per_process_decisions, manual_decisions);

    // Same decision *contents* for process 0 (round + tip, in order):
    // decisions are observable through the manual procs; the engine's are
    // summarized in the report, so compare via a second engine-free rerun
    // (determinism already covered elsewhere) — here cross-check decision
    // rounds against the timeline's deciding-round count.
    let manual_deciding_rounds: std::collections::BTreeSet<u64> = manual[0]
        .decisions()
        .iter()
        .map(|d| d.round.as_u64())
        .collect();
    let engine_deciding = report
        .timeline
        .samples()
        .iter()
        .filter(|s| s.decisions > 0)
        .map(|s| s.round)
        .collect::<std::collections::BTreeSet<u64>>();
    assert_eq!(manual_deciding_rounds, engine_deciding);
}

#[test]
fn engine_message_count_matches_manual() {
    let report = SimBuilder::from_config(SimConfig::new(params(), SEED).horizon(HORIZON))
        .schedule(Schedule::full(N, HORIZON))
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    // Manual count: every process sends 1 proposal at round 0; 1 vote per
    // odd round; 1 vote + 1 proposal per even round ≥ 2.
    let mut expected = N; // round 0
    for r in 1..=HORIZON {
        expected += if r % 2 == 1 { N } else { 2 * N };
    }
    assert_eq!(report.messages_sent, expected);
}
