//! Integration test: checkpoint-based late join inside a full simulated
//! execution — a joiner bootstrapped from a checkpoint rejoins the live
//! network and converges.

use sleepy_tob::core::Checkpoint;
use sleepy_tob::prelude::*;
use sleepy_tob::sim::{Network, Recipients};

#[test]
fn checkpoint_joiner_rejoins_live_network() {
    let n = 6;
    let horizon = 50u64;
    let join_at = 30u64;
    let params = Params::builder(n).expiration(3).build().unwrap();
    let config = TobConfig::new(params, 77);

    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
        .collect();
    let mut network = Network::new(n);
    let mut retained: Vec<Envelope> = Vec::new();

    // p5 "dies" at round 10 (we stop stepping it) and rejoins from a
    // checkpoint at round `join_at`.
    let mut joiner: Option<TobProcess> = None;
    for r in 0..=horizon {
        let round = Round::new(r);
        if r == join_at {
            // Capture a checkpoint from a live process plus the retained
            // recent traffic and bootstrap the joiner from it.
            let cp = Checkpoint::capture(&procs[0], round, &retained);
            assert!(cp.validate());
            let fresh = cp.bootstrap(ProcessId::new(5), config.clone());
            // The joiner does NOT get the historical backlog — discard
            // p5's undelivered queue so everything it knows about the
            // past comes from the checkpoint alone.
            let _ = network.deliver_sync(ProcessId::new(5), Round::new(join_at - 1));
            joiner = Some(fresh);
        }
        let active: Vec<usize> = if r < 10 {
            (0..n).collect()
        } else {
            (0..n - 1).collect() // p5 offline between 10 and join_at
        };
        for &i in &active {
            if i == 5 {
                continue;
            }
            for env in procs[i].step_send(round) {
                network.send(round, ProcessId::new(i as u32), Recipients::All, env);
            }
        }
        if let Some(j) = joiner.as_mut() {
            for env in j.step_send(round) {
                network.send(round, ProcessId::new(5), Recipients::All, env);
            }
        }
        // Deliveries: live processes + the joiner (which has its own
        // cursor position — deliver everything pending since its old
        // identity last read; simplest faithful model: fresh reads from
        // the pool are exactly what deliver_sync provides).
        for i in 0..n - 1 {
            for env in network.deliver_sync(ProcessId::new(i as u32), round) {
                procs[i].on_receive_shared(&env);
            }
        }
        if let Some(j) = joiner.as_mut() {
            for env in network.deliver_sync(ProcessId::new(5), round) {
                j.on_receive_shared(&env);
            }
        } else {
            // While offline, p5's slot accumulates undelivered traffic;
            // the checkpoint replaces the need to drain it. Keep the
            // retained window for checkpoint capture.
        }
        retained.extend(
            network
                .pool()
                .iter()
                .skip(retained.len())
                .map(|m| m.envelope.envelope().clone()),
        );
        let filter = TobProcess::unexpired_filter(round, 3);
        retained.retain(|e| filter(e));
    }

    let joiner = joiner.expect("joined");
    // The joiner participates: it voted and its decided log converged
    // with the live network's.
    assert!(!joiner.decisions().is_empty(), "joiner never decided");
    let live_tip = procs[0].decided_tip();
    assert!(
        joiner.tree().compatible(joiner.decided_tip(), live_tip),
        "joiner diverged"
    );
    let live_h = procs[0].tree().height(live_tip).unwrap() as i64;
    let join_h = joiner.tree().height(joiner.decided_tip()).unwrap() as i64;
    assert!(
        (live_h - join_h).abs() <= 2,
        "joiner at {join_h}, live at {live_h}"
    );
}
