//! End-to-end integration tests: each of the paper's theorems, lemmas and
//! headline claims exercised through the full stack (protocol + simulator
//! + monitors).

use sleepy_tob::prelude::*;

fn params(n: usize, eta: u64) -> Params {
    Params::builder(n)
        .expiration(eta)
        .build()
        .expect("valid parameters")
}

/// Theorem 1: the extended protocol is a correct TOB under synchrony —
/// safety and transaction liveness across participation patterns.
#[test]
fn theorem1_safety_and_liveness_under_synchrony() {
    for (label, schedule) in [
        ("full", Schedule::full(12, 50)),
        ("mass-sleep", Schedule::mass_sleep(12, 50, 0.5, 15, 35)),
        ("oscillating", Schedule::oscillating(12, 50, 0.7, 10)),
    ] {
        for eta in [0u64, 4] {
            let report = SimBuilder::from_config(
                SimConfig::new(params(12, eta), 31).horizon(50).txs_every(5),
            )
            .schedule(schedule.clone())
            .adversary(SilentAdversary)
            .build()
            .expect("valid simulation")
            .run();
            assert!(report.is_safe(), "{label}/η={eta}: agreement broken");
            assert!(
                report.tx_inclusion_rate() > 0.8,
                "{label}/η={eta}: inclusion {}",
                report.tx_inclusion_rate()
            );
            assert!(
                report.final_decided_height > 15,
                "{label}/η={eta}: no progress"
            );
        }
    }
}

/// Theorem 2 (positive): any asynchronous period of π < η rounds is
/// survived, against every attack strategy in the arsenal.
#[test]
fn theorem2_resilience_for_pi_less_than_eta() {
    let eta = 5u64;
    for pi in 1..eta {
        let attacks: Vec<(Box<dyn sleepy_tob::sim::Adversary>, usize)> = vec![
            (Box::new(BlackoutAdversary), 0),
            (Box::new(PartitionAttacker::new()), 0),
            (Box::new(ReorgAttacker::new()), 3),
            (Box::new(PartitionAttacker::with_blackout(eta)), 0),
            (Box::new(ReorgAttacker::with_blackout(eta)), 3),
        ];
        for (adversary, byz) in attacks {
            let name = adversary.name();
            let horizon = 20 + pi + 14;
            let schedule = Schedule::full(12, horizon).with_static_byzantine(byz);
            let report = SimBuilder::from_config(
                SimConfig::new(params(12, eta), 17)
                    .horizon(horizon)
                    .async_window(AsyncWindow::new(Round::new(14), pi)),
            )
            .schedule(schedule)
            .adversary_boxed(adversary)
            .run();
            assert!(
                report.is_safe() && report.is_asynchrony_resilient(),
                "π={pi} < η={eta} but {name} broke safety"
            );
        }
    }
}

/// Theorem 2 (negative direction): with π sufficiently beyond η the same
/// attacks succeed — the bound is meaningful.
#[test]
fn theorem2_bound_is_meaningful() {
    let eta = 3u64;
    let pi = eta + 8;
    let horizon = 14 + pi + 16;
    // Partition flavour: agreement breaks.
    let report = SimBuilder::from_config(
        SimConfig::new(params(12, eta), 23)
            .horizon(horizon)
            .async_window(AsyncWindow::new(Round::new(14), pi)),
    )
    .schedule(Schedule::full(12, horizon))
    .adversary(PartitionAttacker::with_blackout(eta + 1))
    .build()
    .expect("valid simulation")
    .run();
    assert!(
        !report.safety_violations.is_empty(),
        "partition attack should succeed at π ≫ η"
    );
    // Reorg flavour: D_ra is reverted.
    let report = SimBuilder::from_config(
        SimConfig::new(params(12, eta), 23)
            .horizon(horizon)
            .async_window(AsyncWindow::new(Round::new(14), pi)),
    )
    .schedule(Schedule::full(12, horizon).with_static_byzantine(3))
    .adversary(ReorgAttacker::with_blackout(eta + 1))
    .build()
    .expect("valid simulation")
    .run();
    assert!(
        !report.resilience_violations.is_empty(),
        "reorg attack should revert D_ra at π ≫ η"
    );
}

/// Theorem 3: healing — after the window closes, decisions resume within
/// one view and liveness returns.
#[test]
fn theorem3_healing() {
    for pi in [1u64, 2, 3] {
        let horizon = 16 + pi + 20;
        let report = SimBuilder::from_config(
            SimConfig::new(params(10, 4), 5)
                .horizon(horizon)
                .async_window(AsyncWindow::new(Round::new(16), pi))
                .txs_every(4),
        )
        .schedule(Schedule::full(10, horizon))
        .adversary(BlackoutAdversary)
        .build()
        .expect("valid simulation")
        .run();
        let lag = report
            .max_recovery_rounds()
            .expect("decisions resume after the window");
        assert!(lag <= 2, "healing took {lag} rounds (π={pi})");
        assert!(report.is_safe());
        // Transactions submitted after the window are included.
        let post: Vec<_> = report
            .txs
            .iter()
            .filter(|t| t.submitted.as_u64() > 16 + pi)
            .collect();
        assert!(
            post.iter()
                .filter(|t| t.included_everywhere.is_some())
                .count() as f64
                >= post.len() as f64 * 0.7,
            "post-window liveness degraded (π={pi})"
        );
    }
}

/// The vanilla protocol really is broken by one asynchronous round — the
/// negative result motivating the whole paper.
#[test]
fn vanilla_mmr_breaks_in_one_async_round() {
    let horizon = 30;
    let report = SimBuilder::from_config(
        SimConfig::new(params(10, 0), 5)
            .horizon(horizon)
            .async_window(AsyncWindow::new(Round::new(12), 1)),
    )
    .schedule(Schedule::full(10, horizon).with_static_byzantine(3))
    .adversary(ReorgAttacker::new())
    .build()
    .expect("valid simulation")
    .run();
    assert!(!report.resilience_violations.is_empty());
}

/// Dynamic availability: 99% of processes offline, the chain keeps
/// growing (the introduction's "even 99%" claim).
#[test]
fn dynamic_availability_at_99_percent_offline() {
    let n = 100;
    let horizon = 60u64;
    let schedule = Schedule::mass_sleep(n, horizon, 0.99, 16, 44);
    let report = SimBuilder::from_config(SimConfig::new(params(n, 0), 9).horizon(horizon))
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    assert!(report.is_safe());
    assert!(
        report.final_decided_height > 20,
        "chain stalled at height {}",
        report.final_decided_height
    );
    // While the classic baseline stalls for the whole incident.
    let baseline = StaticQuorumBft::new(n).run(&schedule);
    assert!(baseline.longest_stall() >= 13);
}

/// The common-case equivalence claim: under synchrony the extended
/// protocol matches the vanilla protocol's decisions exactly.
#[test]
fn extended_matches_vanilla_under_synchrony() {
    let run = |eta: u64| {
        SimBuilder::from_config(SimConfig::new(params(8, eta), 77).horizon(40).txs_every(4))
            .schedule(Schedule::full(8, 40))
            .adversary(SilentAdversary)
            .build()
            .expect("valid simulation")
            .run()
    };
    let vanilla = run(0);
    let extended = run(6);
    assert_eq!(vanilla.decisions_total, extended.decisions_total);
    assert_eq!(vanilla.final_decided_height, extended.final_decided_height);
    assert_eq!(
        vanilla.mean_tx_latency(),
        extended.mean_tx_latency(),
        "expiration must not slow the common case"
    );
}

/// Simulations are exactly reproducible from their seed.
#[test]
fn determinism_across_runs() {
    let run = || {
        SimBuilder::from_config(
            SimConfig::new(params(10, 4), 1234)
                .horizon(36)
                .async_window(AsyncWindow::new(Round::new(10), 3))
                .txs_every(3),
        )
        .schedule(Schedule::oscillating(10, 36, 0.6, 8))
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.decisions_total, b.decisions_total);
    assert_eq!(a.final_decided_height, b.final_decided_height);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.per_process_decisions, b.per_process_decisions);
    assert_eq!(a.txs.len(), b.txs.len());
    for (ta, tb) in a.txs.iter().zip(b.txs.iter()) {
        assert_eq!(ta.included_everywhere, tb.included_everywhere);
    }
}
