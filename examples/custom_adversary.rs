//! Writing your own adversary.
//!
//! ```sh
//! cargo run --example custom_adversary
//! ```
//!
//! The simulator's [`Adversary`] trait gives a strategy full knowledge of
//! the execution and two powers, exactly matching the paper's model:
//! authoring messages for corrupted processes (including per-recipient
//! equivocation) and choosing what every process receives during
//! asynchronous rounds.
//!
//! This example implements a **flip-flop eclipse**: during the window it
//! isolates one victim process, feeding it only Byzantine votes that
//! alternate between two conflicting planted blocks. Against vanilla MMR
//! the victim can be driven to decide one of the forks; with η > π the
//! victim's window still contains the other processes' unexpired votes
//! and the eclipse starves.

// The prelude carries the whole driving surface — including the
// `Adversary` trait, its context and message types — so a custom
// strategy needs no `sleepy_tob::sim::...` deep paths.
use sleepy_tob::blocktree::Block;
use sleepy_tob::prelude::*;

/// Eclipses `victim` during asynchrony and feeds it alternating votes for
/// two conflicting blocks.
struct FlipFlopEclipse {
    victim: ProcessId,
    forks: Option<(Block, Block)>,
}

impl FlipFlopEclipse {
    fn new(victim: ProcessId) -> Self {
        FlipFlopEclipse {
            victim,
            forks: None,
        }
    }
}

impl Adversary for FlipFlopEclipse {
    fn name(&self) -> &'static str {
        "flip-flop-eclipse"
    }

    fn send(&mut self, ctx: &AdversaryCtx<'_>) -> Vec<TargetedMessage> {
        if !ctx.is_async() || ctx.corrupted.is_empty() {
            return Vec::new();
        }
        let leader = ctx.corrupted[0];
        let kp_leader = ctx.keypair_of(leader).expect("corrupted");
        let mut out = Vec::new();
        if self.forks.is_none() {
            // Plant two conflicting blocks off genesis, shipped to the
            // victim so it can interpret the votes.
            let view = View::from_round(ctx.round).next();
            let a = Block::build(BlockId::GENESIS, view, leader, vec![TxId::new(1_000_001)]);
            let b = Block::build(BlockId::GENESIS, view, leader, vec![TxId::new(1_000_002)]);
            let (value, proof) = kp_leader.vrf_eval(view.as_u64());
            for block in [&a, &b] {
                let prop = Propose::new(leader, ctx.round, view, block.clone(), value, proof);
                out.push(TargetedMessage {
                    envelope: Envelope::sign(kp_leader, Payload::Propose(prop)),
                    recipients: Recipients::Only(vec![self.victim]),
                });
            }
            self.forks = Some((a, b));
        }
        let (a, b) = self.forks.as_ref().expect("planted");
        // Alternate the unanimous Byzantine vote between the two forks.
        let target = if ctx.round.as_u64().is_multiple_of(2) {
            a
        } else {
            b
        };
        for (i, &byz) in ctx.corrupted.iter().enumerate() {
            out.push(TargetedMessage {
                envelope: Envelope::sign(
                    &ctx.keypairs[i],
                    Payload::Vote(Vote::new(byz, ctx.round, target.id())),
                ),
                recipients: Recipients::Only(vec![self.victim]),
            });
        }
        out
    }

    fn deliver(
        &mut self,
        ctx: &AdversaryCtx<'_>,
        receiver: ProcessId,
        available: &[&SentMessage],
    ) -> Vec<usize> {
        if receiver == self.victim {
            // The victim hears only Byzantine traffic.
            available
                .iter()
                .filter(|m| ctx.corrupted.contains(&m.sender))
                .map(|m| m.index)
                .collect()
        } else {
            // Everyone else sees everything except the victim's votes
            // (so the rest of the network doesn't notice the eclipse).
            available
                .iter()
                .filter(|m| m.sender != self.victim)
                .map(|m| m.index)
                .collect()
        }
    }
}

fn run(eta: u64) -> SimReport {
    let n = 10;
    let horizon = 40;
    let schedule = Schedule::full(n, horizon).with_static_byzantine(3);
    let params = Params::builder(n).expiration(eta).build().expect("valid");
    SimBuilder::from_config(
        SimConfig::new(params, 99)
            .horizon(horizon)
            .async_window(AsyncWindow::new(Round::new(14), 3)),
    )
    .schedule(schedule)
    .adversary(FlipFlopEclipse::new(ProcessId::new(0)))
    .build()
    .expect("valid simulation")
    .run()
}

fn main() {
    for (label, eta) in [("vanilla (η=0)", 0u64), ("extended (η=6)", 6)] {
        let report = run(eta);
        println!(
            "{label}: agreement violations = {}, D_ra conflicts = {}, final height = {}",
            report.safety_violations.len(),
            report.resilience_violations.len(),
            report.final_decided_height,
        );
    }
    println!(
        "\nThe eclipse drives the vanilla victim onto a planted fork (violations > 0);\n\
         with η > π the victim's expiration window still holds the other processes'\n\
         votes, the Byzantine minority never reaches 2/3 of its perceived\n\
         participation, and the eclipse starves (Theorem 2's mechanism at work)."
    );
}
