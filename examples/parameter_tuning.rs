//! Choosing η, γ and δ for a deployment.
//!
//! ```sh
//! cargo run --example parameter_tuning
//! ```
//!
//! The paper's mechanism is a dial: a larger expiration period η tolerates
//! longer asynchronous periods (Theorem 2: any π < η) but demands a lower
//! churn rate γ and a stricter failure ratio β̃ (Section 2.3, Figure 1).
//! This example walks the trade-off for a concrete deployment question:
//!
//! > "Our network normally delivers in 100 ms, but we see ~6-second
//! > connectivity blips a few times a week. How should we configure the
//! > protocol?"
//!
//! and validates the chosen configuration by simulation, checking the
//! model conditions (Equations 1–5) hold for the schedule we expect.

use sleepy_tob::prelude::*;
use sleepy_tob::sim::ChurnOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let delay_ms: f64 = 100.0; // observed network delay d
    let blip_ms: f64 = 6_000.0; // worst asynchronous period to survive

    // Round duration is Δ = 3δ with δ = d (don't pad δ — that is the whole
    // point of the paper). The blip spans π rounds; pick η = π + 1.
    let round_ms = 3.0 * delay_ms;
    let pi = (blip_ms / round_ms).ceil() as u64;
    let eta = pi + 1;
    println!("δ = {delay_ms} ms  →  rounds of {round_ms} ms");
    println!("blip of {blip_ms} ms  →  π = {pi} rounds  →  choose η = {eta}");

    // What does η cost? The churn/failure trade-off of Figure 1.
    println!("\nγ (churn/η)   β̃ (max failure ratio)   max f of n={n}");
    for gamma in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let bt = beta_tilde(1.0 / 3.0, gamma);
        let max_f = ((bt * n as f64).ceil() as usize).saturating_sub(1);
        println!("{gamma:<13.2} {bt:<23.3} {max_f}");
    }

    // Suppose we budget γ = 0.10: validate the full configuration.
    let params = Params::builder(n)
        .expiration(eta)
        .max_asynchrony(pi)
        .churn_rate(0.10)
        .delta_ms(delay_ms)
        .build()?;
    assert!(params.is_asynchrony_resilient());
    println!(
        "\nchosen: n = {n}, η = {eta}, π = {pi}, γ = 0.10 → β̃ = {:.3}",
        params.adjusted_failure_ratio()
    );

    // Check the model conditions for the participation we expect
    // (light random churn), then simulate the actual blip.
    let horizon = 120;
    let schedule = Schedule::random_churn(
        n,
        horizon,
        0.005,
        7,
        &ChurnOptions {
            min_awake_frac: 0.6,
            wake_prob: 0.4,
            ..Default::default()
        },
    );
    let window = AsyncWindow::new(Round::new(40), pi);
    let conditions = check_conditions(&schedule, 1.0 / 3.0, 0.10, eta, Some(window));
    println!(
        "model conditions: churn ok = {}, η-sleepiness ok = {}, Eq.4/5 ok = {}",
        conditions.churn_violations.is_empty(),
        conditions.eta_sleepiness_violations.is_empty(),
        conditions.eq4_violations.is_empty() && conditions.eq5_holds,
    );

    let report = SimBuilder::from_config(
        SimConfig::new(params, 7)
            .horizon(horizon)
            .async_window(window)
            .txs_every(4),
    )
    .schedule(schedule)
    .adversary(BlackoutAdversary) // worst blip: nothing is delivered
    .run();
    println!(
        "simulated blip: safe = {}, resilient = {}, healed after {} rounds, \
         tx inclusion {:.0}%",
        report.is_safe(),
        report.is_asynchrony_resilient(),
        report
            .max_recovery_rounds()
            .map_or("—".into(), |l| l.to_string()),
        report.tx_inclusion_rate() * 100.0,
    );

    // The alternative the paper argues against: δ = 6 s. Same safety, but
    // every round is 18 s instead of 0.3 s — a 60× latency penalty paid
    // permanently, not just during blips.
    println!(
        "\nthe conservative alternative (δ = {blip_ms} ms) would make every round \
         {} ms — {}× slower in the common case.",
        3.0 * blip_ms,
        (blip_ms / delay_ms) as u64,
    );
    Ok(())
}
