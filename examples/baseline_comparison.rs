//! Head-to-head: the sleepy protocol vs the fixed-quorum BFT baseline,
//! built entirely from the facade prelude.
//!
//! The paper's comparative pitch in ~60 lines: both protocols run under
//! the *same* mass-sleep schedule, the same seeds and the same
//! simulator ([`Sweep::compare`] pins cell lists and per-cell seeds to
//! be identical on both sides), so every difference in the report
//! columns is the protocol's doing. The sleepy protocol keeps deciding
//! through the dip; the static `> 2n/3`-of-all-`n` quorum stalls until
//! the sleepers return.
//!
//! Run with `cargo run --release --example baseline_comparison`.

use sleepy_tob::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let horizon = 50;
    // 16 of the 50 rounds have 58% of the processes asleep — the
    // May-2023 Ethereum incident, shrunk.
    let dip = (14u64, 30u64);
    let schedule = || Schedule::mass_sleep(n, horizon, 0.58, dip.0, dip.1);

    // One cell per seed: the comparison is deterministic per cell, and
    // the three cells show it is not a seed artifact.
    let duel: SweepComparison = Sweep::over(vec![0u64, 1, 2]).seed(42).compare(
        |_, seed| {
            let params = Params::builder(n).expiration(4).build().expect("valid");
            SimBuilder::new(params, seed)
                .horizon(horizon)
                .txs_every(4)
                .schedule(schedule())
                .build()
                .expect("valid sleepy cell")
        },
        |_, seed| {
            let params = Params::builder(n).build().expect("valid");
            SimBuilder::<QuorumProcess>::for_protocol(params, seed)
                .horizon(horizon)
                .txs_every(4)
                .schedule(schedule())
                .build()
                .expect("valid quorum cell")
        },
    );

    println!(
        "{:<4} {:>24} {:>24}",
        "cell", duel.left_protocol, duel.right_protocol
    );
    let in_dip = |r: &SimReport| -> usize {
        r.timeline
            .samples()
            .iter()
            .filter(|s| (dip.0..=dip.1).contains(&s.round))
            .map(|s| s.decisions)
            .sum()
    };
    for (i, (sleepy, quorum)) in duel.pairs().enumerate() {
        println!(
            "{i:<4} {:>14} in-dip dec {:>14} in-dip dec",
            in_dip(sleepy),
            in_dip(quorum)
        );
        assert!(sleepy.is_safe() && quorum.is_safe());
        assert!(in_dip(sleepy) > 0, "sleepy protocol stalled in the dip");
        assert_eq!(in_dip(quorum), 0, "quorum baseline decided in the dip");
    }
    let advantage = duel.decision_advantage();
    println!("\nper-cell decision advantage (sleepy − quorum): {advantage:?}");
    assert!(advantage.iter().all(|&d| d > 0));

    // The generic protocol surface is ordinary library code: any
    // `Protocol` implementor exposes the same decision/ledger views.
    let params = Params::builder(n).build()?;
    let mut sim = SimBuilder::<QuorumProcess>::for_protocol(params, 7)
        .horizon(20)
        .build()?;
    while sim.step().is_some() {}
    let decided_views: Vec<u64> = sim.processes()[0]
        .decisions()
        .iter()
        .map(|d| d.view.as_u64())
        .collect();
    println!("quorum baseline under full participation decided views {decided_views:?}");
    assert_eq!(decided_views, (1..=9).collect::<Vec<u64>>());
    println!("\nSame simulator, same seeds, different protocol — that is the whole diff.");
    Ok(())
}
