//! The May-2023 Ethereum incident, replayed.
//!
//! ```sh
//! cargo run --example ethereum_incident
//! ```
//!
//! The paper's introduction motivates dynamic availability with a real
//! event: ~60% of Ethereum's consensus clients crashed for ~25 minutes,
//! and the dynamically available chain kept growing. This example replays
//! the incident at simulation scale against three systems:
//!
//! 1. the sleepy total-order broadcast (this repository's protocol),
//! 2. the same protocol with message expiration (η = 4) — showing the
//!    asynchrony-resilient variant keeps dynamic availability,
//! 3. a classic static-quorum BFT protocol, which stalls for the whole
//!    outage because its quorum is counted against the fixed membership.

use sleepy_tob::prelude::*;

const N: usize = 20;
const HORIZON: u64 = 80;
const OUTAGE_START: u64 = 20;
const OUTAGE_END: u64 = 60;

fn run_sleepy(eta: u64, schedule: &Schedule) -> SimReport {
    let params = Params::builder(N)
        .expiration(eta)
        .churn_rate(0.0)
        .build()
        .expect("valid parameters");
    SimBuilder::from_config(SimConfig::new(params, 0xE7B).horizon(HORIZON).txs_every(4))
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run()
}

fn main() {
    // 60% of the processes go dark for rounds 20..=60.
    let schedule = Schedule::mass_sleep(N, HORIZON, 0.6, OUTAGE_START, OUTAGE_END);
    println!(
        "incident: {} of {} processes offline during rounds {}..={}\n",
        (N as f64 * 0.6) as usize,
        N,
        OUTAGE_START,
        OUTAGE_END
    );

    for (label, eta) in [
        ("sleepy TOB (vanilla, η=0)", 0u64),
        ("sleepy TOB (extended, η=4)", 4),
    ] {
        let report = run_sleepy(eta, &schedule);
        println!("{label}:");
        println!("  chain height at end : {}", report.final_decided_height);
        println!("  agreement violations: {}", report.safety_violations.len());
        println!(
            "  tx inclusion        : {:.0}%  (mean latency {} rounds)",
            report.tx_inclusion_rate() * 100.0,
            report
                .mean_tx_latency()
                .map_or("—".into(), |l| format!("{l:.1}")),
        );
    }

    // The classic fixed-quorum comparator: decisions need > 2n/3 votes of
    // the *total* membership, so a 60% outage freezes it.
    let baseline = StaticQuorumBft::new(N).run(&schedule);
    println!("static-quorum BFT (fixed 2n/3):");
    println!("  decided views       : {}", baseline.decisions());
    println!(
        "  longest stall       : {} consecutive views (the whole outage)",
        baseline.longest_stall()
    );

    println!(
        "\nThe sleepy protocol's thresholds are relative to *perceived* participation,\n\
         so the 8 surviving processes keep reaching 2/3 of each other and the chain\n\
         grows through the outage — dynamic availability, the property the paper's\n\
         expiration mechanism is careful to preserve."
    );
}
