//! Quickstart: run the asynchrony-resilient sleepy total-order broadcast
//! through a network partition and watch safety hold.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Ten processes run the extended MMR protocol with a message expiration
//! period of η = 4 rounds. At round 10 the network turns asynchronous for
//! π = 3 rounds, during which an adversary partitions delivery into two
//! halves (the paper's Section-1 split-vote scenario). Because π < η,
//! Theorem 2 guarantees no decision conflicts — and the run ends with a
//! single agreed chain carrying the submitted transactions.

use sleepy_tob::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Validated protocol parameters: n = 10 processes, failure ratio
    //    β = 1/3 (MMR), expiration η = 4, designed for asynchronous
    //    periods up to π = 3, churn bounded by γ = 5% per η rounds.
    let params = Params::builder(10)
        .expiration(4)
        .max_asynchrony(3)
        .churn_rate(0.05)
        .build()?;
    println!("asynchrony-resilient: {}", params.is_asynchrony_resilient());
    println!(
        "adjusted failure ratio β̃ = {:.3} (β = {:.3}, γ = {:.2})",
        params.adjusted_failure_ratio(),
        params.failure_ratio(),
        params.churn_rate(),
    );

    // 2. A 40-round run: full participation, a 3-round partition attack
    //    starting at round 10, one fresh transaction every 4 rounds.
    let horizon = 40;
    let config = SimConfig::new(params, 2024)
        .horizon(horizon)
        .async_window(AsyncWindow::new(Round::new(10), 3))
        .txs_every(4);
    let schedule = Schedule::full(10, horizon);
    let report = SimBuilder::from_config(config)
        .schedule(schedule)
        .adversary(PartitionAttacker::new())
        .build()
        .expect("valid simulation")
        .run();

    // 3. Inspect the outcome.
    println!("\n--- outcome ---");
    println!("rounds executed      : {}", report.rounds_run + 1);
    println!("decision events      : {}", report.decisions_total);
    println!("final chain height   : {}", report.final_decided_height);
    println!("agreement violations : {}", report.safety_violations.len());
    println!(
        "D_ra conflicts       : {}",
        report.resilience_violations.len()
    );
    println!(
        "healing lag          : {} rounds after the window",
        report
            .max_recovery_rounds()
            .map_or("—".into(), |l| l.to_string()),
    );
    println!(
        "tx inclusion         : {:.0}% (mean latency {} rounds)",
        report.tx_inclusion_rate() * 100.0,
        report
            .mean_tx_latency()
            .map_or("—".into(), |l| format!("{l:.1}")),
    );

    assert!(report.is_safe(), "Theorem 2 violated?!");
    assert!(report.is_asynchrony_resilient());
    println!("\nSafety held through the partition — exactly what η > π buys.");
    Ok(())
}
