//! Regression suite for the `Protocol::on_receive_shared` delivery
//! contract (DESIGN §2.5): a real transport re-sends on reconnect and
//! interleaves peers arbitrarily, so within a round boundary the protocol
//! must tolerate duplicated and reordered envelopes with **no effect on
//! the decided chain**. A clean lockstep run is the oracle; a run whose
//! per-round streams are shuffled and duplicated must decide identically.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_core::{DecisionEvent, TobConfig, TobProcess};
use st_messages::SharedEnvelope;
use st_types::{Params, ProcessId, Round};

const N: usize = 4;
const ETA: u64 = 2;
const HORIZON: u64 = 24;
const SEED: u64 = 7;

struct Outcome {
    decisions: Vec<Vec<DecisionEvent>>,
    tips: Vec<u64>,
}

/// Drives a lockstep run; `mangle` rewrites each round's full delivery
/// stream (the concatenation of every sender's envelopes) before it is
/// handed to the receivers.
fn run(mangle: impl Fn(Round, Vec<SharedEnvelope>) -> Vec<SharedEnvelope>) -> Outcome {
    let params = Params::builder(N).expiration(ETA).build().unwrap();
    let config = TobConfig::new(params, SEED);
    let mut procs: Vec<TobProcess> = (0..N)
        .map(|i| TobProcess::new(ProcessId::new(i as u32), config.clone()))
        .collect();
    let mut decisions: Vec<Vec<DecisionEvent>> = vec![Vec::new(); N];
    let mut tx = 0u64;
    for r in 0..=HORIZON {
        let round = Round::new(r);
        if r > 0 && r % 3 == 0 {
            tx += 1;
            for p in procs.iter_mut() {
                p.submit_tx(st_types::TxId::new(tx));
            }
        }
        let mut stream: Vec<SharedEnvelope> = Vec::new();
        for p in procs.iter_mut() {
            for env in p.step_send(round) {
                stream.push(SharedEnvelope::new(env));
            }
        }
        for (i, p) in procs.iter_mut().enumerate() {
            decisions[i].extend(p.drain_decisions());
        }
        let stream = mangle(round, stream);
        for env in &stream {
            for p in procs.iter_mut() {
                p.on_receive_shared(env);
            }
        }
    }
    let tips = procs.iter().map(|p| p.decided_tip().as_u64()).collect();
    Outcome { decisions, tips }
}

#[test]
fn shuffled_and_duplicated_streams_decide_the_same_chain() {
    let clean = run(|_, stream| stream);
    assert!(
        clean.decisions.iter().all(|d| !d.is_empty()),
        "oracle run must actually decide"
    );

    // Duplicate every envelope (every third one twice more — a reconnect
    // replaying a whole batch), then Fisher–Yates shuffle the round's
    // combined stream so senders interleave arbitrarily.
    let mangled = run(|round, stream| {
        let mut rng = StdRng::seed_from_u64(SEED ^ round.as_u64());
        let mut out = Vec::with_capacity(stream.len() * 3);
        for (i, env) in stream.into_iter().enumerate() {
            out.push(env.clone());
            out.push(env.clone());
            if i % 3 == 0 {
                out.push(env.clone());
                out.push(env);
            }
        }
        for i in (1..out.len()).rev() {
            let j = rng.random_range(0..=i);
            out.swap(i, j);
        }
        out
    });

    assert_eq!(clean.tips, mangled.tips, "decided tips diverged");
    for i in 0..N {
        assert_eq!(
            serde_json::to_string(&clean.decisions[i]).unwrap(),
            serde_json::to_string(&mangled.decisions[i]).unwrap(),
            "process {i}: decision log diverged under shuffle+duplication"
        );
    }
}

#[test]
fn reversed_streams_decide_the_same_chain() {
    // Worst-case stable reorder: every round's stream fully reversed, so
    // proposals and votes arrive in the opposite order they were sent.
    let clean = run(|_, stream| stream);
    let reversed = run(|_, mut stream| {
        stream.reverse();
        stream
    });
    assert_eq!(clean.tips, reversed.tips);
    for i in 0..N {
        assert_eq!(
            serde_json::to_string(&clean.decisions[i]).unwrap(),
            serde_json::to_string(&reversed.decisions[i]).unwrap(),
        );
    }
}
