//! Property-based tests of the full protocol state machine under random
//! synchronous executions: random participation (with an honest-majority
//! floor), random expiration periods, random transaction workloads.
//!
//! Invariants checked on every execution:
//! * agreement — all decisions of all processes are pairwise compatible;
//! * per-process monotonicity — a process's decided log never regresses;
//! * decision grade soundness — every decided tip is a block that exists
//!   in the decider's own tree;
//! * liveness trend — with enough all-awake suffix rounds, the chain grows.

use proptest::prelude::*;
use st_core::{TobConfig, TobProcess};
use st_messages::Envelope;
use st_types::{Params, ProcessId, Round, TxId};

struct Execution {
    procs: Vec<TobProcess>,
}

/// Drives `n` processes through `rounds` lock-step rounds; process `p`
/// sleeps in round `r` iff `sleep[r][p]`, except a floor keeps more than
/// 2/3 of the processes awake (the paper's η-sleepiness for the window is
/// then satisfied for modest η). All messages reach all awake processes
/// at each round's end (synchrony).
fn run(n: usize, eta: u64, rounds: u64, sleep_bits: &[u64], txs: &[u8]) -> Execution {
    let params = Params::builder(n)
        .expiration(eta)
        .churn_rate(0.1)
        .build()
        .expect("valid");
    let config = TobConfig::new(params, 7);
    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
        .collect();
    let min_awake = (2 * n) / 3 + 1;

    // Precompute awake sets: the sleepy model requires a process awake at
    // the beginning of round r+1 to have been awake at the END of round r
    // (it participates in round r's receive phase and drains its queue
    // before it ever sends again).
    let awake_at = |r: u64| -> Vec<bool> {
        let bits = sleep_bits[(r as usize) % sleep_bits.len()];
        let mut awake: Vec<bool> = (0..n).map(|p| bits & (1 << (p % 64)) == 0).collect();
        let mut count = awake.iter().filter(|&&a| a).count();
        let mut idx = 0;
        while count < min_awake {
            if !awake[idx % n] {
                awake[idx % n] = true;
                count += 1;
            }
            idx += 1;
        }
        awake
    };

    // Queued messages for sleeping processes.
    let mut queued: Vec<Vec<Envelope>> = vec![Vec::new(); n];

    for r in 0..=rounds {
        let round = Round::new(r);
        let awake = awake_at(r);
        let awake_next = awake_at(r + 1);

        // Random transaction submissions to awake processes.
        if let Some(&t) = txs.get(r as usize % txs.len()) {
            let target = (t as usize) % n;
            if awake[target] {
                procs[target].submit_tx(TxId::new(r * 1000 + t as u64));
            }
        }

        // Send phase: processes awake at the beginning of round r.
        let mut batch: Vec<Envelope> = Vec::new();
        for (i, p) in procs.iter_mut().enumerate() {
            if awake[i] {
                batch.extend(p.step_send(round));
            }
        }
        // Receive phase (end of round r): processes awake at the
        // beginning of round r+1 receive everything — queued backlog
        // first, then this round's batch. Others queue.
        for (i, p) in procs.iter_mut().enumerate() {
            if awake_next[i] {
                for env in queued[i].drain(..) {
                    p.on_receive(env);
                }
                for env in &batch {
                    p.on_receive(env.clone());
                }
            } else {
                queued[i].extend(batch.iter().cloned());
            }
        }
    }
    Execution { procs }
}

fn check_invariants(ex: &Execution) -> Result<(), TestCaseError> {
    // A tree that has seen every proposal (p0 receives everything while
    // awake; use the union for robustness).
    let mut global = st_blocktree::BlockTree::new();
    for p in &ex.procs {
        global.absorb(p.tree());
    }

    // Agreement across all decision events of all processes.
    let mut all: Vec<(usize, st_types::BlockId)> = Vec::new();
    for (i, p) in ex.procs.iter().enumerate() {
        for d in p.decisions() {
            prop_assert!(
                p.tree().contains(d.tip),
                "p{i} decided a block missing from its own tree"
            );
            all.push((i, d.tip));
        }
    }
    for (i, (pa, a)) in all.iter().enumerate() {
        for (pb, b) in &all[i + 1..] {
            prop_assert!(
                global.compatible(*a, *b),
                "agreement violated between p{pa} ({a:?}) and p{pb} ({b:?})"
            );
        }
    }

    // Per-process monotonicity.
    for (i, p) in ex.procs.iter().enumerate() {
        let mut prev: Option<st_types::BlockId> = None;
        for d in p.decisions() {
            if let Some(prev_tip) = prev {
                prop_assert!(
                    global.is_ancestor(prev_tip, d.tip) || global.is_ancestor(d.tip, prev_tip),
                    "p{i}'s decisions regressed"
                );
            }
            prev = Some(d.tip);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_synchronous_executions_are_safe(
        n in 4usize..10,
        eta in 0u64..6,
        sleep_bits in prop::collection::vec(any::<u64>(), 1..8),
        txs in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        let ex = run(n, eta, 30, &sleep_bits, &txs);
        check_invariants(&ex)?;
    }

    #[test]
    fn full_participation_always_progresses(
        n in 4usize..10,
        eta in 0u64..6,
    ) {
        let ex = run(n, eta, 30, &[0u64], &[0]);
        check_invariants(&ex)?;
        for p in &ex.procs {
            prop_assert!(
                p.decisions().len() >= 10,
                "only {} decisions with full participation",
                p.decisions().len()
            );
            let height = p.tree().height(p.decided_tip()).unwrap_or(0);
            prop_assert!(height >= 10, "chain stalled at height {height}");
        }
    }
}
