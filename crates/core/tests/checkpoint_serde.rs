//! Serde round-trip for the checkpoint payload — the remaining
//! wire-crossing type (a joiner fetches checkpoints from peers over the
//! same transport as envelopes, so its serialized form must survive the
//! trip and still validate and bootstrap).

use st_core::{Checkpoint, TobConfig, TobProcess};
use st_messages::Envelope;
use st_types::{Params, ProcessId, Round};

#[test]
fn checkpoint_roundtrip_validates_and_bootstraps() {
    let params = Params::builder(4).expiration(2).build().unwrap();
    let config = TobConfig::new(params, 7);
    let mut procs: Vec<TobProcess> = (0..4)
        .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
        .collect();
    let mut retained: Vec<Envelope> = Vec::new();
    let horizon = 12u64;
    for r in 0..=horizon {
        let round = Round::new(r);
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in batches {
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
                retained.push(env);
            }
        }
    }
    assert!(!procs[0].decisions().is_empty(), "run must decide");

    let cp = Checkpoint::capture(&procs[0], Round::new(horizon), &retained);
    let json = serde_json::to_string(&cp).unwrap();
    let back: Checkpoint = serde_json::from_str(&json).unwrap();

    assert_eq!(back.taken_at(), cp.taken_at());
    assert_eq!(back.decided_tip(), cp.decided_tip());
    assert_eq!(back.block_count(), cp.block_count());
    assert_eq!(back.message_count(), cp.message_count());
    assert!(back.validate(), "round-tripped checkpoint must validate");
    // Serialization is canonical: encoding the decoded value reproduces
    // the exact bytes (the JSON oracle property the binary codec is
    // cross-checked against).
    assert_eq!(serde_json::to_string(&back).unwrap(), json);

    // And it still bootstraps: the joiner built from the round-tripped
    // checkpoint knows the decided tip at the same height as one built
    // from the original.
    let from_orig = cp.bootstrap(ProcessId::new(3), config.clone());
    let from_back = back.bootstrap(ProcessId::new(3), config);
    let tip = cp.decided_tip();
    assert!(from_back.tree().contains(tip));
    assert_eq!(from_back.tree().height(tip), from_orig.tree().height(tip));
}
