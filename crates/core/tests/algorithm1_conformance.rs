//! Line-by-line conformance of [`TobProcess`] to Algorithm 1 of the
//! paper, checked against hand-computed expectations on a fully
//! observable 4-process synchronous execution.
//!
//! ```text
//! View 0 lasts 1 round, round r = 0: multicast [propose, Λ:=[b₀], VRF(1)].
//! View v ≥ 1, round 1 (r = 2v−1):
//!   1: compute outputs from GA_{v−1,2}
//!   2: if GA_{v−1,2} outputs (Λ, 1) then
//!   3:     decide Λ
//!   5: L_{v−1} ← longest log s.t. GA_{v−1,2} outputs (Λ′, ∗)
//!   6: start GA_{v,1} with a log in the propose message with the largest
//!   7:     valid VRF(v) not conflicting with L_{v−1}
//! View v ≥ 1, round 2 (r = 2v):
//!   8: compute outputs from GA_{v,1}
//!   9: start GA_{v,2} with the longest Λ s.t. GA_{v,1} outputs (Λ, 1)
//!  10: C_v ← longest log s.t. GA_{v,1} outputs (C, ∗)
//!  12: multicast [propose, Λ′:=b‖C_v, VRF(v+1)]
//! ```

use st_core::{TobConfig, TobProcess};
use st_crypto::Keypair;
use st_messages::{Envelope, Payload};
use st_types::{BlockId, Params, ProcessId, Round, View};

const N: usize = 4;
const SEED: u64 = 7;

struct Harness {
    procs: Vec<TobProcess>,
    /// Every batch sent, per round.
    sent: Vec<Vec<Envelope>>,
}

impl Harness {
    fn new(eta: u64) -> Harness {
        let cfg = TobConfig::new(Params::builder(N).expiration(eta).build().unwrap(), SEED);
        Harness {
            procs: (0..N as u32)
                .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
                .collect(),
            sent: Vec::new(),
        }
    }

    fn round(&mut self, r: u64) -> &[Envelope] {
        let round = Round::new(r);
        let mut batch = Vec::new();
        for p in self.procs.iter_mut() {
            batch.extend(p.step_send(round));
        }
        for env in &batch {
            for p in self.procs.iter_mut() {
                p.on_receive(env.clone());
            }
        }
        self.sent.push(batch);
        self.sent.last().unwrap()
    }
}

fn votes_of(batch: &[Envelope]) -> Vec<(ProcessId, BlockId)> {
    batch
        .iter()
        .filter_map(|e| match e.payload() {
            Payload::Vote(v) => Some((v.sender(), v.tip())),
            _ => None,
        })
        .collect()
}

fn proposals_of(batch: &[Envelope]) -> Vec<(ProcessId, View, BlockId)> {
    batch
        .iter()
        .filter_map(|e| match e.payload() {
            Payload::Propose(p) => Some((p.sender(), p.view(), p.tip())),
            _ => None,
        })
        .collect()
}

/// View 0: every awake process multicasts [propose, Λ:=[b₀], VRF(1)] and
/// nothing else.
#[test]
fn view0_proposes_genesis_with_vrf1() {
    let mut h = Harness::new(0);
    let batch = h.round(0).to_vec();
    assert!(
        votes_of(&batch).is_empty(),
        "no votes in the bootstrap round"
    );
    let proposals = proposals_of(&batch);
    assert_eq!(proposals.len(), N);
    for (_, view, tip) in proposals {
        assert_eq!(view, View::new(1));
        assert_eq!(tip, BlockId::GENESIS, "Λ := [b₀]");
    }
}

/// Lines 6–7: in round 1 every process votes for the proposal with the
/// largest valid VRF(1) — computed independently here from the keypairs.
#[test]
fn round1_votes_follow_max_vrf() {
    let mut h = Harness::new(0);
    h.round(0);
    let batch = h.round(1).to_vec();
    let votes = votes_of(&batch);
    assert_eq!(votes.len(), N);
    // All bootstrap proposals carry the genesis log, so the winner's tip
    // is genesis regardless of VRF — but everyone must vote (uniformly).
    for (_, tip) in &votes {
        assert_eq!(*tip, BlockId::GENESIS);
    }
}

/// Lines 1–3: a decision happens exactly when GA_{v−1,2} reached grade 1,
/// i.e. the first decision appears at round 3 (view 2), never earlier.
#[test]
fn first_decision_is_at_round_3() {
    let mut h = Harness::new(0);
    for r in 0..=3 {
        h.round(r);
    }
    for p in &h.procs {
        assert!(!p.decisions().is_empty());
        assert_eq!(p.decisions()[0].round, Round::new(3));
        assert_eq!(p.decisions()[0].view, View::new(2));
    }
}

/// Line 12: in every even round ≥ 2 each process multicasts exactly one
/// proposal, for view v+1, with a *valid* VRF(v+1), extending C_v.
#[test]
fn even_rounds_propose_for_next_view_with_valid_vrf() {
    let mut h = Harness::new(0);
    for r in 0..=8 {
        let batch = h.round(r).to_vec();
        if r >= 2 && r % 2 == 0 {
            let v = r / 2;
            let proposals = proposals_of(&batch);
            assert_eq!(proposals.len(), N, "round {r}");
            for (sender, view, _) in &proposals {
                assert_eq!(view.as_u64(), v + 1, "round {r}: proposal view");
                // VRF validity: recompute and compare.
                let kp = Keypair::derive(*sender, SEED);
                let env = batch
                    .iter()
                    .find_map(|e| match e.payload() {
                        Payload::Propose(p) if p.sender() == *sender => Some(p.clone()),
                        _ => None,
                    })
                    .unwrap();
                let (expected_value, _) = kp.vrf_eval(v + 1);
                assert_eq!(env.vrf_value(), expected_value);
            }
        }
        if r % 2 == 1 {
            assert!(
                proposals_of(&batch).is_empty(),
                "round {r}: odd rounds never propose"
            );
        }
    }
}

/// Line 12 continued: each proposal's parent is C_v — under unanimity the
/// previous view's proposal — so the chain grows one block per view.
#[test]
fn proposals_chain_one_block_per_view() {
    let mut h = Harness::new(0);
    let mut last_winner: Option<BlockId> = None;
    for r in 0..=10 {
        let batch = h.round(r).to_vec();
        if r >= 2 && r % 2 == 0 {
            let proposals = proposals_of(&batch);
            // All proposals extend the same parent (unanimous C_v)…
            let tree = h.procs[0].tree();
            let parents: Vec<BlockId> = proposals
                .iter()
                .map(|&(_, _, tip)| tree.parent(tip).unwrap())
                .collect();
            assert!(parents.windows(2).all(|w| w[0] == w[1]), "round {r}");
            // …and that parent is the previous view's elected proposal.
            if let Some(prev) = last_winner {
                assert_eq!(parents[0], prev, "round {r}: C_v should be view v's winner");
            }
            // The next round's votes elect this view's winner.
            let next = h.round(r + 1).to_vec();
            let votes = votes_of(&next);
            assert!(
                votes.windows(2).all(|w| w[0].1 == w[1].1),
                "split vote at {}",
                r + 1
            );
            last_winner = Some(votes[0].1);
        }
    }
}

/// Line 9: the round-2 vote is the longest grade-1 output of GA_{v,1} —
/// under unanimity, exactly the log everyone voted in round 2v−1.
#[test]
fn round2_votes_echo_grade1_log() {
    let mut h = Harness::new(0);
    h.round(0);
    let mut last_odd_vote: Option<BlockId> = None;
    for r in 1..=9 {
        let batch = h.round(r).to_vec();
        let votes = votes_of(&batch);
        if r % 2 == 1 {
            last_odd_vote = Some(votes[0].1);
        } else if let Some(expected) = last_odd_vote {
            for (sender, tip) in votes {
                assert_eq!(
                    tip, expected,
                    "round {r}: {sender} diverged from grade-1 log"
                );
            }
        }
    }
}

/// The η parameter leaves synchronous behaviour untouched: the full
/// message trace (senders, rounds, tips, views) is identical for η = 0
/// and η = 6.
#[test]
fn eta_does_not_change_synchronous_traces() {
    let mut a = Harness::new(0);
    let mut b = Harness::new(6);
    for r in 0..=14 {
        let ba = a.round(r).to_vec();
        let bb = b.round(r).to_vec();
        assert_eq!(ba.len(), bb.len(), "round {r}");
        for (ea, eb) in ba.iter().zip(bb.iter()) {
            assert_eq!(ea.payload(), eb.payload(), "round {r}");
        }
    }
}
