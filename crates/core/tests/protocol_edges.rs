//! Edge-case tests of the protocol state machine, driven by hand-crafted
//! message sequences rather than the simulator.

use st_blocktree::Block;
use st_core::{TobConfig, TobProcess};
use st_crypto::Keypair;
use st_messages::{Envelope, Payload, Propose, Vote};
use st_types::{BlockId, Params, ProcessId, Round, TxId, View};

fn config(n: usize, eta: u64) -> TobConfig {
    TobConfig::new(Params::builder(n).expiration(eta).build().unwrap(), 7)
}

fn keypair(i: u32) -> Keypair {
    Keypair::derive(ProcessId::new(i), 7)
}

/// Lock-step helper: run all processes through rounds 0..=last with full
/// delivery.
fn lockstep(procs: &mut [TobProcess], last: u64) {
    for r in 0..=last {
        let round = Round::new(r);
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in &batches {
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
            }
        }
    }
}

/// An equivocating proposer (two proposals for one view) does not split
/// honest processes: the deterministic VRF/tip tie-break keeps them
/// voting identically.
#[test]
fn equivocating_proposer_does_not_split_honest_votes() {
    let n = 4;
    let cfg = config(n, 2);
    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
        .collect();
    lockstep(&mut procs, 4);

    // A (Byzantine-ish) fifth keypair is not in the directory, so instead
    // equivocate as p3: two different proposals for view 4.
    let kp = keypair(3);
    let parent = procs[0].decided_tip();
    let (value, proof) = kp.vrf_eval(4);
    for salt in [1u64, 2] {
        let block = Block::build(parent, View::new(4), kp.owner(), vec![TxId::new(salt)]);
        let prop = Propose::new(kp.owner(), Round::new(6), View::new(4), block, value, proof);
        let env = Envelope::sign(&kp, Payload::Propose(prop));
        for p in procs.iter_mut() {
            p.on_receive(env.clone());
        }
    }
    // Advance through view 4's first round: all honest processes must
    // have voted for the same tip.
    for r in 5..=7u64 {
        let round = Round::new(r);
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in &batches {
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
            }
        }
    }
    let tips: Vec<BlockId> = procs.iter().map(|p| p.last_vote_tip()).collect();
    assert!(
        tips.windows(2).all(|w| w[0] == w[1]),
        "honest votes split: {tips:?}"
    );
}

/// A proposal conflicting with the established chain is never voted for,
/// even with the highest VRF in its view.
#[test]
fn conflicting_proposal_is_filtered() {
    let n = 4;
    let cfg = config(n, 2);
    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
        .collect();
    lockstep(&mut procs, 8);
    let established = procs[0].decided_tip();
    assert_ne!(established, BlockId::GENESIS);

    // p3 proposes a genesis fork for view 6 (round 11 uses it).
    let kp = keypair(3);
    let fork = Block::build(
        BlockId::GENESIS,
        View::new(6),
        kp.owner(),
        vec![TxId::new(666)],
    );
    let fork_id = fork.id();
    let (value, proof) = kp.vrf_eval(6);
    let prop = Propose::new(kp.owner(), Round::new(10), View::new(6), fork, value, proof);
    let env = Envelope::sign(&kp, Payload::Propose(prop));
    for p in procs.iter_mut() {
        p.on_receive(env.clone());
    }
    lockstep_from(&mut procs, 9, 13);
    for p in &procs {
        assert_ne!(
            p.last_vote_tip(),
            fork_id,
            "{:?} voted the genesis fork",
            p.id()
        );
        assert!(p.tree().is_ancestor(established, p.decided_tip()));
    }
}

fn lockstep_from(procs: &mut [TobProcess], from: u64, to: u64) {
    for r in from..=to {
        let round = Round::new(r);
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in &batches {
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
            }
        }
    }
}

/// Round-0 votes are rejected outright (no graded agreement has a send
/// phase in the bootstrap round).
#[test]
fn round_zero_votes_rejected() {
    let cfg = config(3, 0);
    let mut p = TobProcess::new(ProcessId::new(0), cfg);
    let kp = keypair(1);
    let vote = Vote::new(kp.owner(), Round::ZERO, BlockId::GENESIS);
    p.on_receive(Envelope::sign(&kp, Payload::Vote(vote)));
    // Drive a few rounds: an accepted round-0 vote would produce a
    // grade-1 output and a (bogus) decision at round 1; instead the first
    // legitimate decision arrives at round 3 (view 2 tallying GA_{1,2}).
    let mut procs = vec![
        p,
        TobProcess::new(ProcessId::new(1), config(3, 0)),
        TobProcess::new(ProcessId::new(2), config(3, 0)),
    ];
    lockstep(&mut procs, 5);
    assert!(!procs[0].decisions().is_empty());
    assert!(procs[0]
        .decisions()
        .iter()
        .all(|d| d.round >= Round::new(3)));
}

/// Pruning keeps memory bounded: after many rounds the vote store holds
/// only a window of recent rounds.
#[test]
fn state_is_pruned_over_long_runs() {
    let n = 4;
    let eta = 3;
    let cfg = config(n, eta);
    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
        .collect();
    lockstep(&mut procs, 100);
    // The tree grows with the chain, but the decisions list and chain are
    // the only unbounded state; proposals and votes are windowed.
    // Indirect check: a process clone is cheap enough to be usable and
    // decisions track the chain height.
    let p = &procs[0];
    let height = p.tree().height(p.decided_tip()).unwrap();
    assert!(height >= 45, "height {height}");
    assert!(p.decisions().len() >= 45);
}

/// The same config can be shared across processes and reused for late
/// joiners: a process constructed fresh and fed the full message history
/// converges to the same decided log.
#[test]
fn late_joiner_converges() {
    let n = 4;
    let cfg = config(n, 2);
    let mut procs: Vec<TobProcess> = (0..n as u32)
        .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
        .collect();
    // Record every message.
    let mut history: Vec<Envelope> = Vec::new();
    for r in 0..=20u64 {
        let round = Round::new(r);
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in &batches {
            history.extend(batch.iter().cloned());
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
            }
        }
    }
    // A brand-new observer replays the history (a light client / late
    // joiner) and then participates in one tally-only step.
    let mut observer = TobProcess::new(ProcessId::new(0), cfg);
    for env in &history {
        observer.on_receive(env.clone());
    }
    let _ = observer.step_send(Round::new(21));
    assert!(observer
        .tree()
        .compatible(observer.decided_tip(), procs[1].decided_tip()));
    // After replay + one step the observer's decided log is within one
    // view of the live processes (it may even be one decision *ahead*,
    // having tallied round-20 votes the live processes will only use at
    // their own round 21).
    let live = procs[1].tree().height(procs[1].decided_tip()).unwrap() as i64;
    let observed = observer.tree().height(observer.decided_tip()).unwrap() as i64;
    assert!(
        (live - observed).abs() <= 2,
        "observer at {observed}, live at {live}"
    );
}
