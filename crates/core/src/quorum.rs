//! A classic fixed-quorum BFT baseline, as a message-passing
//! [`Protocol`] implementor.
//!
//! The introduction motivates dynamic availability with the observation
//! that "traditional BFT protocols (synchronous or partially synchronous)
//! get stuck when participation drops below their fixed (usually 1/2 or
//! 2/3) quorum threshold". [`QuorumProcess`] is that comparator, runnable
//! under the *same* simulator — network pool, participation schedules,
//! environment timeline, adversarial delivery — as the sleepy protocol,
//! so experiment B1 and the head-to-head sweeps compare executions, not
//! an execution against a formula.
//!
//! The protocol is deliberately simple, honest-only (the comparison is
//! about availability, not attack resistance), and mirrors the sleepy
//! protocol's two-rounds-per-view cadence so decision counts are
//! directly comparable:
//!
//! * **first round of view `v`** (`r = 2v − 1`): every awake process
//!   multicasts a proposal extending its decided chain;
//! * **second round of view `v`** (`r = 2v`): every awake process votes
//!   for the admissible view-`v` proposal with the largest VRF (the same
//!   leader rule the sleepy protocol uses);
//! * a view **decides** once some process counts votes for one proposal
//!   from **strictly more than `2n/3` of all `n` processes** — the
//!   static quorum, counted against fixed membership rather than
//!   perceived participation. Votes are never expired: a quorum observed
//!   late (woken process replaying its backlog) still decides.
//!
//! Under full participation and synchrony every view decides (at the
//! first send step after its vote round). When more than a third of the
//! processes sleep through a view's vote round, that view can never
//! reach quorum and is **permanently stalled** — the protocol only
//! resumes deciding with the first view whose vote round sees enough
//! participation again. The closed-form schedule walk in st-sim's
//! `baseline` module predicts exactly which views decide and which
//! stall on honest synchronous schedules; a regression test holds this
//! implementation to that prediction.

use crate::{BlockBuffer, DecisionEvent, Protocol, TobConfig};
use st_blocktree::{Block, BlockTree};
use st_crypto::Keypair;
use st_messages::{Envelope, Payload, Propose, ProposeStore, SharedEnvelope, Vote};
use st_types::{BlockId, FastSet, ProcessId, Round, RoundKind, TxId, View};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A well-behaved process running the fixed-quorum baseline. See the
/// [module docs](self) for the protocol.
#[derive(Clone, Debug)]
pub struct QuorumProcess {
    id: ProcessId,
    config: TobConfig,
    keypair: Keypair,
    tree: BlockTree,
    buffer: BlockBuffer,
    proposes: ProposeStore,
    /// Per-view ballots: `votes[view][voter] = tip` (first vote per voter
    /// wins; honest processes vote once per view). A `BTreeMap` so the
    /// quorum scan visits views in deterministic ascending order.
    votes: BTreeMap<View, BTreeMap<ProcessId, BlockId>>,
    /// Views already decided by this process (their ballots are pruned).
    decided_views: FastSet<u64>,
    decisions: Vec<DecisionEvent>,
    decided_tip: BlockId,
    mempool: Vec<TxId>,
    naive_receive: bool,
}

impl QuorumProcess {
    /// Creates the process `id` under the shared `config`.
    pub fn new(id: ProcessId, config: TobConfig) -> QuorumProcess {
        let keypair = Keypair::derive(id, config.seed());
        QuorumProcess {
            id,
            config,
            keypair,
            tree: BlockTree::new(),
            buffer: BlockBuffer::new(),
            proposes: ProposeStore::new(),
            votes: BTreeMap::new(),
            decided_views: FastSet::default(),
            decisions: Vec::new(),
            decided_tip: BlockId::GENESIS,
            mempool: Vec::new(),
            naive_receive: false,
        }
    }

    /// The static quorum rule: decisions need votes from strictly more
    /// than `2n/3` of all `n` fixed members.
    pub fn quorum_exceeded(n: usize, votes: usize) -> bool {
        3 * votes > 2 * n
    }

    /// Scans pending ballots for completed quorums and decides them.
    /// Only views whose vote round is strictly before `round` are
    /// eligible — a view's own votes are in flight during its vote
    /// round, so the earliest decision is at the next send step, exactly
    /// one round after the analytical baseline's "decision round".
    fn integrate(&mut self, round: Round) {
        let n = self.config.params().n();
        let mut newly_decided = Vec::new();
        for (&view, ballots) in &self.votes {
            if self.decided_views.contains(&view.as_u64()) {
                continue;
            }
            match view.second_round() {
                Some(r) if r < round => {}
                _ => continue,
            }
            // Count ballots per tip; at most one tip can exceed the
            // quorum (each voter is counted once per view).
            let mut counts: BTreeMap<BlockId, usize> = BTreeMap::new();
            for &tip in ballots.values() {
                *counts.entry(tip).or_default() += 1;
            }
            let Some((&tip, _)) = counts
                .iter()
                .find(|&(_, &count)| Self::quorum_exceeded(n, count))
            else {
                continue;
            };
            // The decided block must be locally known and extend the
            // decided chain (a late quorum for a view older than the
            // decided tip is already subsumed by a descendant decision).
            if !self.tree.contains(tip) || !self.tree.is_ancestor(self.decided_tip, tip) {
                continue;
            }
            newly_decided.push((view, tip));
        }
        for (view, tip) in newly_decided {
            self.decided_views.insert(view.as_u64());
            self.votes.remove(&view);
            self.decisions.push(DecisionEvent { round, view, tip });
            self.decided_tip = tip;
        }
    }

    /// Transactions to include in the next proposal: pending mempool
    /// entries not already on the chain being extended.
    fn payload_for(&self, parent_tip: BlockId) -> Vec<TxId> {
        if self.mempool.is_empty() {
            return Vec::new();
        }
        let onchain: FastSet<TxId> = self.tree.log_transactions(parent_tip).into_iter().collect();
        self.mempool
            .iter()
            .copied()
            .filter(|tx| !onchain.contains(tx))
            .collect()
    }

    /// First round of view `v`: propose a block extending the decided
    /// chain.
    fn propose(&mut self, round: Round, view: View) -> Vec<Envelope> {
        let block = Arc::new(Block::build(
            self.decided_tip,
            view,
            self.id,
            self.payload_for(self.decided_tip),
        ));
        let (vrf_value, vrf_proof) = self.keypair.vrf_eval(view.as_u64());
        let proposal = Propose::new(self.id, round, view, block.clone(), vrf_value, vrf_proof);
        // A process hears its own multicast: record locally right away.
        self.buffer.insert(&mut self.tree, block);
        self.store_proposal(proposal.clone());
        vec![Envelope::sign(&self.keypair, Payload::Propose(proposal))]
    }

    /// Second round of view `v`: vote for the admissible proposal with
    /// the largest VRF, or stay silent when none qualifies (the stall).
    fn vote(&mut self, round: Round, view: View) -> Vec<Envelope> {
        let tip = self
            .proposes
            .select_leader_proposal(view, |p| {
                self.tree.contains(p.tip()) && self.tree.is_ancestor(self.decided_tip, p.tip())
            })
            .map(|p| p.tip());
        let Some(tip) = tip else {
            return Vec::new();
        };
        let vote = Vote::new(self.id, round, tip);
        self.record_vote(&vote);
        vec![Envelope::sign(&self.keypair, Payload::Vote(vote))]
    }

    fn record_vote(&mut self, vote: &Vote) {
        // Ballots are keyed by the round tag's view; a vote whose round
        // is not a view's second round is protocol-invalid and dropped.
        let RoundKind::ViewSecond(view) = RoundKind::of(vote.round()) else {
            return;
        };
        if self.decided_views.contains(&view.as_u64()) {
            return;
        }
        self.votes
            .entry(view)
            .or_default()
            .entry(vote.sender())
            .or_insert(vote.tip());
    }

    fn store_proposal(&mut self, proposal: Propose) {
        if self.naive_receive {
            self.proposes
                .insert_full_scan(proposal, self.config.directory());
        } else {
            self.proposes.insert(proposal, self.config.directory());
        }
    }

    /// Drops proposal state for past views (ballots for undecided views
    /// are kept — a late quorum must still be able to complete).
    fn prune(&mut self, round: Round) {
        let view = RoundKind::of(round).view();
        if view.as_u64() > 1 {
            self.proposes.prune_below(View::new(view.as_u64() - 1));
        }
    }
}

impl Protocol for QuorumProcess {
    fn protocol_name() -> &'static str {
        "static-quorum"
    }

    fn new(id: ProcessId, config: TobConfig) -> Self {
        QuorumProcess::new(id, config)
    }

    fn id(&self) -> ProcessId {
        self.id
    }

    fn submit_tx(&mut self, tx: TxId) {
        if !self.mempool.contains(&tx) {
            self.mempool.push(tx);
        }
    }

    fn on_receive_shared(&mut self, envelope: &SharedEnvelope) {
        if !envelope.verify_cached(self.config.directory()) {
            return;
        }
        match envelope.payload() {
            Payload::Vote(vote) => {
                let vote = *vote;
                self.record_vote(&vote);
            }
            Payload::Propose(proposal) => {
                let proposal = proposal.clone();
                self.buffer
                    .insert(&mut self.tree, proposal.block_arc().clone());
                self.store_proposal(proposal);
            }
        }
    }

    fn step_send(&mut self, round: Round) -> Vec<Envelope> {
        // Complete any quorums whose votes have arrived (including a
        // backlog replayed on wake-up) before acting in this round.
        self.integrate(round);
        let out = match RoundKind::of(round) {
            // Round 0 is a bootstrap idle round: view 1's proposals go
            // out in round 1, keeping view/round arithmetic aligned with
            // the sleepy protocol's cadence.
            RoundKind::Bootstrap => Vec::new(),
            RoundKind::ViewFirst(view) => self.propose(round, view),
            RoundKind::ViewSecond(view) => self.vote(round, view),
        };
        self.prune(round);
        out
    }

    fn decisions(&self) -> &[DecisionEvent] {
        &self.decisions
    }

    fn drain_decisions(&mut self) -> Vec<DecisionEvent> {
        std::mem::take(&mut self.decisions)
    }

    fn decided_tip(&self) -> BlockId {
        self.decided_tip
    }

    fn tree(&self) -> &BlockTree {
        &self.tree
    }

    fn set_naive_receive(&mut self, naive: bool) {
        self.naive_receive = naive;
    }

    fn install_blocks(&mut self, blocks: &[Block]) {
        for block in blocks {
            self.buffer.insert(&mut self.tree, block.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::Params;

    fn config(n: usize, seed: u64) -> TobConfig {
        TobConfig::new(Params::builder(n).build().unwrap(), seed)
    }

    /// Lock-step synchronous driver over an awake-set-per-round schedule.
    fn run_partial(
        n: usize,
        rounds: u64,
        seed: u64,
        awake: impl Fn(u64, usize) -> bool,
    ) -> Vec<QuorumProcess> {
        let cfg = config(n, seed);
        let mut procs: Vec<QuorumProcess> = (0..n as u32)
            .map(|i| QuorumProcess::new(ProcessId::new(i), cfg.clone()))
            .collect();
        let mut queued: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        for r in 0..=rounds {
            let round = Round::new(r);
            let mut batches: Vec<Envelope> = Vec::new();
            for (i, p) in procs.iter_mut().enumerate() {
                if awake(r, i) {
                    batches.extend(p.step_send(round));
                }
            }
            // Receive phase: processes awake at r + 1 get this round's
            // traffic plus their queued backlog; sleepers queue.
            for (i, p) in procs.iter_mut().enumerate() {
                if awake(r + 1, i) {
                    for env in queued[i].drain(..) {
                        p.on_receive(env);
                    }
                    for env in &batches {
                        p.on_receive(env.clone());
                    }
                } else {
                    queued[i].extend(batches.iter().cloned());
                }
            }
        }
        procs
    }

    #[test]
    fn full_participation_decides_every_view() {
        let n = 9;
        let rounds = 20;
        let procs = run_partial(n, rounds, 3, |_, _| true);
        // Views 1..=9 vote at rounds 2..=18 and decide at rounds 3..=19;
        // view 10's votes (round 20) are only integrated at round 21,
        // past the horizon.
        for p in &procs {
            let views: Vec<u64> = p.decisions().iter().map(|d| d.view.as_u64()).collect();
            assert_eq!(views, (1..=9).collect::<Vec<u64>>(), "{:?}", p.id);
            // Decided exactly one round after the analytical decision
            // round 2v.
            for d in p.decisions() {
                assert_eq!(d.round.as_u64(), 2 * d.view.as_u64() + 1);
            }
        }
    }

    #[test]
    fn over_one_third_sleeping_stalls_every_affected_view() {
        let n = 9;
        // 4 of 9 sleep (> n/3) through rounds 6..=14: views whose vote
        // round lands in the window can never reach the 2n/3 quorum.
        let procs = run_partial(n, 24, 5, |r, i| !((6..=14).contains(&r) && i < 4));
        let decided: FastSet<u64> = procs
            .iter()
            .flat_map(|p| p.decisions().iter().map(|d| d.view.as_u64()))
            .collect();
        for v in 3..=7u64 {
            assert!(!decided.contains(&v), "stalled view {v} decided");
        }
        // It recovers: views after the window decide again.
        assert!(decided.contains(&8));
        // And everything stays on one chain.
        let tree = procs[0].tree();
        for p in &procs {
            assert!(tree.compatible(p.decided_tip(), procs[0].decided_tip()));
        }
    }

    #[test]
    fn waking_process_decides_backlogged_views() {
        let n = 6;
        // p5 sleeps through rounds 4..=9 while the rest keep the quorum
        // (5 of 6 > 2n/3): the awake processes decide views 2..=4; p5
        // replays the backlog on wake and decides them at its first step.
        let procs = run_partial(n, 16, 7, |r, i| !((4..=9).contains(&r) && i == 5));
        let woken = &procs[5];
        let views: Vec<u64> = woken.decisions().iter().map(|d| d.view.as_u64()).collect();
        assert!(views.contains(&2) && views.contains(&3), "{views:?}");
        assert!(procs[0]
            .tree()
            .compatible(woken.decided_tip(), procs[0].decided_tip()));
    }

    #[test]
    fn quorum_rule_is_strictly_greater_than_two_thirds() {
        assert!(!QuorumProcess::quorum_exceeded(9, 6)); // 6 = 2·9/3 exactly
        assert!(QuorumProcess::quorum_exceeded(9, 7));
        assert!(!QuorumProcess::quorum_exceeded(3, 2));
        assert!(QuorumProcess::quorum_exceeded(3, 3));
    }

    #[test]
    fn submitted_transactions_reach_the_decided_log() {
        let cfg = config(4, 11);
        let mut procs: Vec<QuorumProcess> = (0..4u32)
            .map(|i| QuorumProcess::new(ProcessId::new(i), cfg.clone()))
            .collect();
        let tx = TxId::new(777);
        for p in procs.iter_mut() {
            Protocol::submit_tx(p, tx);
        }
        for r in 0..=12u64 {
            let round = Round::new(r);
            let batches: Vec<Vec<Envelope>> =
                procs.iter_mut().map(|p| p.step_send(round)).collect();
            for batch in &batches {
                for env in batch {
                    for p in procs.iter_mut() {
                        p.on_receive(env.clone());
                    }
                }
            }
        }
        // Every proposal carries the tx (the simulator's workload floods
        // every honest mempool), so the first decided view includes it.
        for p in &procs {
            assert!(
                p.tree().log_contains_tx(p.decided_tip(), tx),
                "tx missing from {:?}'s decided log",
                p.id
            );
        }
    }

    #[test]
    fn invalid_signature_is_discarded() {
        let cfg = config(3, 1);
        let mut p = QuorumProcess::new(ProcessId::new(0), cfg);
        let alien = Keypair::derive(ProcessId::new(1), 999);
        let vote = Vote::new(ProcessId::new(1), Round::new(2), BlockId::GENESIS);
        Protocol::on_receive(&mut p, Envelope::sign(&alien, Payload::Vote(vote)));
        assert!(p.votes.is_empty());
    }
}
