//! Checkpointing: bootstrapping a process from a compact snapshot.
//!
//! The model says a waking process receives *every* message it missed —
//! fine for the lock-step simulator, unbounded in a real deployment. A
//! process that slept for longer than the expiration period `η` does not
//! actually need the missed messages: everything older than the window
//! can never influence a tally again. What it needs is (i) the decided
//! chain (block bodies), and (ii) the *unexpired* recent traffic. A
//! [`Checkpoint`] packages (i) plus the sender's latest-vote window so a
//! joiner can participate after replaying only `O(n·η)` messages instead
//! of the whole history.
//!
//! Checkpoints are **advisory** in the Byzantine setting: a joiner must
//! obtain one from a trusted source or cross-validate several (the
//! classic weak-subjectivity caveat; see
//! [`Checkpoint::merge_validated`]). The simulation uses them to test
//! that windowed state is *sufficient* — a checkpoint-bootstrapped
//! process behaves identically to a full-replay one.

use crate::{TobConfig, TobProcess};
use serde::{Deserialize, Serialize};
use st_blocktree::{Block, BlockTree};
use st_messages::{Envelope, Payload};
use st_types::{BlockId, Round};

/// A compact protocol snapshot: the decided chain's blocks plus the
/// recent signed traffic (votes and proposals still inside the
/// expiration window).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The round the checkpoint was taken at.
    taken_at: Round,
    /// Tip of the decided log at snapshot time.
    decided_tip: BlockId,
    /// Every block on the decided chain plus recently proposed side
    /// blocks (parents precede children).
    blocks: Vec<Block>,
    /// Signed messages from the unexpired window `[taken_at − η, taken_at]`.
    recent: Vec<Envelope>,
}

impl Checkpoint {
    /// Captures a checkpoint from a process plus the recent signed
    /// traffic the caller retained (a deployment keeps the last `η + 1`
    /// rounds of gossip; the simulator's network pool provides it).
    ///
    /// Only messages from the unexpired window survive into the
    /// checkpoint; older traffic is dropped — that is the point.
    pub fn capture(process: &TobProcess, taken_at: Round, retained: &[Envelope]) -> Checkpoint {
        let eta = process.config().params().expiration();
        let lo = taken_at.saturating_sub(eta + 1);
        let tree = process.tree();
        // Ship every block the process knows (side branches may still be
        // voted on within the window). Height order ⇒ parents first. The
        // id tie-break matters: `block_ids()` walks a FastMap index in
        // hasher-bucket order, and a stable sort by height alone would
        // let that order leak into the shipped block sequence.
        let mut ids: Vec<BlockId> = tree.block_ids().filter(|b| !b.is_genesis()).collect();
        ids.sort_by_key(|&b| (tree.height(b).unwrap_or(0), b));
        let blocks = ids
            .into_iter()
            .filter_map(|id| tree.block(id).cloned())
            .collect();
        let recent = retained
            .iter()
            .filter(|env| env.payload().round() >= lo)
            .cloned()
            .collect();
        Checkpoint {
            taken_at,
            decided_tip: process.decided_tip(),
            blocks,
            recent,
        }
    }

    /// The round the checkpoint was taken at.
    pub fn taken_at(&self) -> Round {
        self.taken_at
    }

    /// The decided tip at capture time.
    pub fn decided_tip(&self) -> BlockId {
        self.decided_tip
    }

    /// Number of blocks shipped.
    pub fn block_count(&self) -> usize {
        // stlint::allow(deadpub, reason = "checkpoint size accessor paired with message_count; kept so wake-cost accounting can weigh blocks when the socket runtime lands")
        self.blocks.len()
    }

    /// Number of recent signed messages shipped.
    pub fn message_count(&self) -> usize {
        self.recent.len()
    }

    /// Validates the checkpoint's internal consistency: blocks connect to
    /// genesis and the decided tip is among them. Signature validity of
    /// `recent` is checked by the bootstrapping process itself (it runs
    /// every envelope through `on_receive`).
    pub fn validate(&self) -> bool {
        let mut tree = BlockTree::new();
        for block in &self.blocks {
            if tree.insert_or_get(block.clone()).is_err() {
                return false;
            }
        }
        self.decided_tip.is_genesis() || tree.contains(self.decided_tip)
    }

    /// Cross-validates several checkpoints (e.g. fetched from different
    /// peers) and returns the best mutually consistent one: the highest
    /// `taken_at` among those whose decided tips are pairwise compatible
    /// within the union of their blocks. Returns `None` if the sources
    /// conflict — the weak-subjectivity failure mode a joiner must
    /// escalate to its operator.
    pub fn merge_validated(sources: &[Checkpoint]) -> Option<&Checkpoint> {
        let valid: Vec<&Checkpoint> = sources.iter().filter(|c| c.validate()).collect();
        if valid.is_empty() {
            return None;
        }
        let mut tree = BlockTree::new();
        for c in &valid {
            for block in &c.blocks {
                let _ = tree.insert_or_get(block.clone());
            }
        }
        for a in &valid {
            for b in &valid {
                if !tree.compatible(a.decided_tip, b.decided_tip) {
                    return None;
                }
            }
        }
        valid.into_iter().max_by_key(|c| c.taken_at)
    }

    /// Bootstraps a fresh process from this checkpoint: blocks are
    /// installed, recent traffic is replayed through the normal receive
    /// path (signature checks included), and the process is ready to be
    /// stepped from round `taken_at + 1`.
    pub fn bootstrap(&self, id: st_types::ProcessId, config: TobConfig) -> TobProcess {
        let mut process = TobProcess::new(id, config);
        process.install_blocks(&self.blocks);
        for env in &self.recent {
            process.on_receive(env.clone());
        }
        process
    }
}

impl TobProcess {
    /// Installs externally obtained blocks (checkpoint sync). Orphans are
    /// buffered exactly like blocks arriving in proposals.
    pub fn install_blocks(&mut self, blocks: &[Block]) {
        for block in blocks {
            self.receive_block(block.clone());
        }
    }

    /// Retains only envelopes that could still influence a tally — the
    /// helper deployments use to build their checkpoint `retained` set.
    pub fn unexpired_filter(round: Round, eta: u64) -> impl Fn(&Envelope) -> bool {
        let lo = round.saturating_sub(eta + 1);
        move |env: &Envelope| match env.payload() {
            Payload::Vote(v) => v.round() >= lo,
            Payload::Propose(p) => p.round() >= lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::{Params, ProcessId, TxId};

    fn config(n: usize, eta: u64) -> TobConfig {
        TobConfig::new(Params::builder(n).expiration(eta).build().unwrap(), 7)
    }

    /// Runs n processes lock-step, recording all traffic; returns procs +
    /// history.
    fn run(n: usize, eta: u64, rounds: u64) -> (Vec<TobProcess>, Vec<Envelope>) {
        let cfg = config(n, eta);
        let mut procs: Vec<TobProcess> = (0..n as u32)
            .map(|i| TobProcess::new(ProcessId::new(i), cfg.clone()))
            .collect();
        let mut history = Vec::new();
        for r in 0..=rounds {
            let round = Round::new(r);
            if r % 3 == 0 {
                procs[0].submit_tx(TxId::new(r));
            }
            let batches: Vec<Vec<Envelope>> =
                procs.iter_mut().map(|p| p.step_send(round)).collect();
            for batch in &batches {
                history.extend(batch.iter().cloned());
                for env in batch {
                    for p in procs.iter_mut() {
                        p.on_receive(env.clone());
                    }
                }
            }
        }
        (procs, history)
    }

    #[test]
    fn checkpoint_is_much_smaller_than_history() {
        let (procs, history) = run(4, 3, 60);
        let cp = Checkpoint::capture(&procs[0], Round::new(60), &history);
        assert!(cp.validate());
        assert!(
            cp.message_count() * 3 < history.len(),
            "checkpoint {} msgs vs history {}",
            cp.message_count(),
            history.len()
        );
    }

    #[test]
    fn bootstrap_matches_full_replay() {
        let (procs, history) = run(4, 3, 40);
        let cp = Checkpoint::capture(&procs[0], Round::new(40), &history);

        // Full replay joiner.
        let mut full = TobProcess::new(ProcessId::new(0), config(4, 3));
        for env in &history {
            full.on_receive(env.clone());
        }
        // Checkpoint joiner.
        let mut fast = cp.bootstrap(ProcessId::new(0), config(4, 3));

        // Step both one round: identical outputs (votes for the same tip).
        let full_out = full.step_send(Round::new(41));
        let fast_out = fast.step_send(Round::new(41));
        assert_eq!(full.last_vote_tip(), fast.last_vote_tip());
        assert_eq!(full_out.len(), fast_out.len());
        assert!(fast
            .tree()
            .compatible(fast.decided_tip(), procs[1].decided_tip()));
    }

    #[test]
    fn tampered_checkpoint_fails_validation() {
        let (procs, history) = run(3, 2, 20);
        let mut cp = Checkpoint::capture(&procs[0], Round::new(20), &history);
        // Claim a decided tip that is not in the shipped blocks.
        cp.decided_tip = BlockId::new(0xBAD);
        assert!(!cp.validate());
    }

    #[test]
    fn merge_validated_picks_newest_consistent() {
        let (procs, history) = run(4, 2, 30);
        let old = Checkpoint::capture(&procs[0], Round::new(20), &history);
        let new = Checkpoint::capture(&procs[1], Round::new(30), &history);
        let sources = [old.clone(), new.clone()];
        let best = Checkpoint::merge_validated(&sources).unwrap();
        assert_eq!(best.taken_at(), Round::new(30));
        // A conflicting source poisons the merge.
        let mut evil = old.clone();
        evil.decided_tip = BlockId::new(0xE71);
        evil.blocks.push(Block::build(
            BlockId::GENESIS,
            st_types::View::new(1),
            ProcessId::new(3),
            vec![TxId::new(0xE71)],
        ));
        evil.decided_tip = evil.blocks.last().unwrap().id();
        assert!(Checkpoint::merge_validated(&[new, evil]).is_none());
    }

    #[test]
    fn unexpired_filter_bounds_retention() {
        let filter = TobProcess::unexpired_filter(Round::new(50), 4);
        let kp = st_crypto::Keypair::derive(ProcessId::new(0), 7);
        let old = Envelope::sign(
            &kp,
            Payload::Vote(st_messages::Vote::new(
                ProcessId::new(0),
                Round::new(40),
                BlockId::GENESIS,
            )),
        );
        let fresh = Envelope::sign(
            &kp,
            Payload::Vote(st_messages::Vote::new(
                ProcessId::new(0),
                Round::new(48),
                BlockId::GENESIS,
            )),
        );
        assert!(!filter(&old));
        assert!(filter(&fresh));
    }
}
