//! Decision events.

use serde::{Deserialize, Serialize};
use st_types::{BlockId, Round, View};
use std::fmt;

/// A decision made by a process: in the first round of `view` (= `round`),
/// the graded agreement `GA_{view−1,2}` output the log with tip `tip` at
/// grade 1 (Algorithm 1 lines 2–3).
///
/// Decision events are recorded faithfully — *including* events that would
/// conflict with earlier decisions under broken model assumptions — so
/// that safety monitors can detect agreement violations instead of the
/// process silently masking them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecisionEvent {
    /// The round the decision was made in.
    pub round: Round,
    /// The view whose second graded agreement produced the decision.
    pub view: View,
    /// The tip of the decided log.
    pub tip: BlockId,
}

impl fmt::Debug for DecisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decide({} {} {})", self.round, self.view, self.tip)
    }
}

impl fmt::Display for DecisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_format_mentions_all_fields() {
        let e = DecisionEvent {
            round: Round::new(3),
            view: View::new(2),
            tip: BlockId::new(7),
        };
        let s = format!("{e:?}");
        assert!(s.contains("r3") && s.contains("v2"));
    }
}
