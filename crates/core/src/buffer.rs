//! Orphan-block buffering.
//!
//! During asynchrony the adversary can deliver a proposal whose ancestor
//! blocks have not arrived yet (selective delivery). The buffer parks such
//! orphans and retries them whenever a parent lands, so the process's tree
//! only ever contains fully connected chains.

use st_blocktree::{Block, BlockTree};
use st_types::BlockId;
use st_types::FastMap;
use std::sync::Arc;

/// Parks blocks whose parent is unknown and flushes them once the parent
/// arrives. Blocks are held behind [`Arc`] handles so parking a multicast
/// body never copies it.
#[derive(Clone, Debug, Default)]
pub struct BlockBuffer {
    /// parent id → orphans waiting for it.
    waiting: FastMap<BlockId, Vec<Arc<Block>>>,
}

impl BlockBuffer {
    /// Creates an empty buffer.
    pub fn new() -> BlockBuffer {
        BlockBuffer::default()
    }

    /// Number of parked orphan blocks.
    pub fn len(&self) -> usize {
        self.waiting.values().map(Vec::len).sum()
    }

    /// Whether no orphans are parked.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Inserts `block` into `tree`, parking it if the parent is missing.
    /// Whenever an insertion succeeds, any orphans waiting on the new
    /// block are flushed recursively. Returns the ids that actually
    /// entered the tree (in insertion order).
    pub fn insert(&mut self, tree: &mut BlockTree, block: impl Into<Arc<Block>>) -> Vec<BlockId> {
        let mut inserted = Vec::new();
        let mut queue = vec![block.into()];
        while let Some(b) = queue.pop() {
            // Only the unknown-parent path needs `b` back (to park it), so
            // probe for the parent first and move — rather than clone —
            // the handle into the tree on the (overwhelmingly common)
            // insertable path.
            if !tree.contains(b.parent()) && !tree.contains(b.id()) {
                let entry = self.waiting.entry(b.parent()).or_default();
                if !entry.contains(&b) {
                    entry.push(b);
                }
                continue;
            }
            match tree.insert_or_get(b) {
                Ok(id) => {
                    inserted.push(id);
                    if let Some(children) = self.waiting.remove(&id) {
                        queue.extend(children);
                    }
                }
                Err(_) => unreachable!("parent presence checked above"), // stlint::allow(panic, reason = "insert_or_get only errs on a missing parent, and this arm is reached only after tree.contains(b.parent()) held")
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::{ProcessId, View};

    fn blocks_chain(len: usize) -> Vec<Block> {
        let mut out: Vec<Block> = Vec::new();
        let mut parent = BlockId::GENESIS;
        for i in 0..len {
            let b = Block::build(parent, View::new(i as u64 + 1), ProcessId::new(0), vec![]);
            parent = b.id();
            out.push(b);
        }
        out
    }

    #[test]
    fn in_order_insertion_never_parks() {
        let mut tree = BlockTree::new();
        let mut buf = BlockBuffer::new();
        for b in blocks_chain(5) {
            let ins = buf.insert(&mut tree, b);
            assert_eq!(ins.len(), 1);
        }
        assert!(buf.is_empty());
        assert_eq!(tree.len(), 6);
    }

    #[test]
    fn out_of_order_insertion_flushes_on_parent_arrival() {
        let mut tree = BlockTree::new();
        let mut buf = BlockBuffer::new();
        let chain = blocks_chain(4);
        // Deliver children first: all parked.
        for b in chain[1..].iter().rev() {
            assert!(buf.insert(&mut tree, b.clone()).is_empty());
        }
        assert_eq!(buf.len(), 3);
        // Delivering the first block flushes the whole chain.
        let ins = buf.insert(&mut tree, chain[0].clone());
        assert_eq!(ins.len(), 4);
        assert!(buf.is_empty());
        assert!(tree.contains(chain[3].id()));
    }

    #[test]
    fn duplicate_orphans_are_not_parked_twice() {
        let mut tree = BlockTree::new();
        let mut buf = BlockBuffer::new();
        let chain = blocks_chain(2);
        buf.insert(&mut tree, chain[1].clone());
        buf.insert(&mut tree, chain[1].clone());
        assert_eq!(buf.len(), 1);
        let ins = buf.insert(&mut tree, chain[0].clone());
        assert_eq!(ins.len(), 2);
    }

    #[test]
    fn reinsertion_of_known_block_is_noop() {
        let mut tree = BlockTree::new();
        let mut buf = BlockBuffer::new();
        let chain = blocks_chain(1);
        buf.insert(&mut tree, chain[0].clone());
        let again = buf.insert(&mut tree, chain[0].clone());
        assert_eq!(again.len(), 1); // insert_or_get reports the id
        assert_eq!(tree.len(), 2);
    }
}
