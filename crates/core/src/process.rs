//! The per-process state machine of Algorithm 1 (with message expiration).

use crate::{BlockBuffer, DecisionEvent, TobConfig};
use st_blocktree::{Block, BlockTree};
use st_crypto::Keypair;
use st_ga::{tally, GaOutput, SupportIndex};
use st_messages::{
    Envelope, InsertOutcome, LatestVotes, Payload, Propose, ProposeStore, SharedEnvelope, Vote,
    VoteStore,
};
use st_types::fasthash::{mix64_pair, set_into_sorted_vec};
use st_types::{BlockId, FastMap, FastSet, ProcessId, Round, RoundKind, TxId, View};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A well-behaved process running Algorithm 1, parameterised by the
/// expiration period `η` from its [`TobConfig`].
///
/// The state machine is deterministic and I/O-free: drivers call
/// [`TobProcess::on_receive`] for every delivered message and
/// [`TobProcess::step_send`] once per round the process is awake in; the
/// latter returns the messages to multicast. A process that is asleep for
/// some rounds is simply not stepped for them — queued messages are
/// delivered via `on_receive` when it wakes, exactly matching the sleepy
/// model's message-queueing semantics.
#[derive(Clone, Debug)]
pub struct TobProcess {
    id: ProcessId,
    config: TobConfig,
    keypair: Keypair,
    tree: BlockTree,
    buffer: BlockBuffer,
    votes: VoteStore,
    proposes: ProposeStore,
    mempool: Vec<TxId>,
    decisions: Vec<DecisionEvent>,
    /// Tip of the longest decided log (genesis until the first decision).
    decided_tip: BlockId,
    /// The log this process voted for most recently (diagnostics/fallback).
    last_vote_tip: BlockId,
    /// Output of the most recent graded-agreement tally (diagnostics).
    last_ga_output: Option<GaOutput>,
    /// Reusable scratch for the per-round tally input (naive mode only;
    /// the fast path maintains `support` incrementally instead).
    tally_scratch: LatestVotes,
    /// Incremental tally state (fast mode): chain support of every
    /// counted in-window vote, updated per sender delta instead of being
    /// rebuilt from the whole window each round. The stateless
    /// [`st_ga::tally`] survives as the naive-mode oracle, so the
    /// fast-vs-naive equivalence grid proves the two paths byte-equal.
    support: SupportIndex,
    /// sender → (round of its counted record, tip it voted for). Present
    /// iff the sender currently contributes to perceived participation
    /// `m` (its latest in-window record is a clean vote).
    counted: FastMap<ProcessId, (Round, BlockId)>,
    /// Senders whose vote-store records changed since the last tally.
    dirty: FastSet<ProcessId>,
    /// Counted senders whose tip is not (yet) in the tree: they count
    /// toward `m` but support nothing, and are re-checked every tally
    /// because the tree only grows.
    unknown: FastSet<ProcessId>,
    /// round → senders counted at that round; when the expiration
    /// window's lower edge passes a bucket, its senders are re-derived.
    /// Entries are lazily invalidated (a sender re-counted at a later
    /// round leaves its old entry behind), so each pop re-checks against
    /// `counted` before acting.
    expiries: BTreeMap<Round, Vec<ProcessId>>,
    /// A tally for a specific round, installed by a driver that computed
    /// it once for a certified cohort of identical-state receivers
    /// ([`crate::Protocol::install_shared_tally`]); consumed by the next
    /// [`TobProcess::step_send`] for that round.
    shared_tally: Option<(Round, Arc<GaOutput>)>,
    /// Benchmarking baseline switch: route proposal inserts through the
    /// pre-fast-path full-view duplicate scan
    /// ([`ProposeStore::insert_full_scan`]) and the stateless full-window
    /// tally. Identical behaviour, seed cost model. Off everywhere except
    /// `SimConfig::naive_delivery`.
    naive_receive: bool,
}

impl TobProcess {
    /// Creates the process `id` under the shared `config`.
    pub fn new(id: ProcessId, config: TobConfig) -> TobProcess {
        let keypair = Keypair::derive(id, config.seed());
        TobProcess {
            id,
            config,
            keypair,
            tree: BlockTree::new(),
            buffer: BlockBuffer::new(),
            votes: VoteStore::new(),
            proposes: ProposeStore::new(),
            mempool: Vec::new(),
            decisions: Vec::new(),
            decided_tip: BlockId::GENESIS,
            last_vote_tip: BlockId::GENESIS,
            last_ga_output: None,
            tally_scratch: LatestVotes::empty(),
            support: SupportIndex::new(),
            counted: FastMap::default(),
            dirty: FastSet::default(),
            unknown: FastSet::default(),
            expiries: BTreeMap::new(),
            shared_tally: None,
            naive_receive: false,
        }
    }

    /// Switches this process to the pre-fast-path receive cost model (see
    /// the `naive_receive` field). Benchmarking only.
    pub fn set_naive_receive(&mut self, naive: bool) {
        self.naive_receive = naive;
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The shared configuration.
    pub fn config(&self) -> &TobConfig {
        &self.config
    }

    /// The process's view of the block tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The tip of the longest log this process has decided (genesis before
    /// any decision).
    pub fn decided_tip(&self) -> BlockId {
        self.decided_tip
    }

    /// Every decision event not yet drained, in the order they occurred.
    /// Conflicting decisions (possible only when model assumptions are
    /// violated) are recorded faithfully so monitors can detect them.
    pub fn decisions(&self) -> &[DecisionEvent] {
        &self.decisions
    }

    /// Removes and returns every decision event recorded since the last
    /// drain. Long-running drivers consume decisions through this so a
    /// process's event log stays bounded on unbounded horizons;
    /// [`TobProcess::decisions`] exposes whatever has not been drained
    /// yet.
    pub fn drain_decisions(&mut self) -> Vec<DecisionEvent> {
        std::mem::take(&mut self.decisions)
    }

    /// The windowed vote store — bounded by `n · (η + 2)` distinct
    /// records thanks to per-round pruning (diagnostics; the
    /// bounded-memory regression suite watches its size).
    pub fn votes(&self) -> &VoteStore {
        &self.votes
    }

    /// The tip this process voted for most recently.
    pub fn last_vote_tip(&self) -> BlockId {
        self.last_vote_tip
    }

    /// The most recent graded-agreement output (diagnostics).
    pub fn last_ga_output(&self) -> Option<&GaOutput> {
        self.last_ga_output.as_ref()
    }

    /// Queues a transaction for inclusion in this process's future
    /// proposals.
    pub fn submit_tx(&mut self, tx: TxId) {
        if !self.mempool.contains(&tx) {
            self.mempool.push(tx);
        }
    }

    /// Handles a received message: verifies the signature (unverifiable
    /// messages are discarded per Section 2.1), then routes votes to the
    /// vote store and proposals to the propose store / block tree.
    ///
    /// This convenience wrapper wraps the envelope into a fresh
    /// [`SharedEnvelope`] and therefore re-verifies it; multicast drivers
    /// should wrap each envelope **once** and fan the shared handle out to
    /// every receiver via [`TobProcess::on_receive_shared`] so the
    /// signature is checked once per envelope, not once per receiver.
    pub fn on_receive(&mut self, envelope: Envelope) {
        self.on_receive_shared(&SharedEnvelope::new(envelope));
    }

    /// Handles a received shared envelope. The signature verdict is read
    /// from the envelope's verification cache — over a whole process set,
    /// a multicast envelope is verified exactly once (the first receiver
    /// pays the hash; everyone else reuses the verdict). Behaviour is
    /// identical to [`TobProcess::on_receive`]: honest envelopes are
    /// immutable after signing and forgeries fail deterministically, so
    /// caching the verdict cannot change any accept/discard outcome.
    pub fn on_receive_shared(&mut self, envelope: &SharedEnvelope) {
        if !envelope.verify_cached(self.config.directory()) {
            return;
        }
        match envelope.payload() {
            Payload::Vote(vote) => {
                // Round 0 is view 0's propose-only round: no graded
                // agreement has a send phase there, so a round-0 vote tag
                // is protocol-invalid (only an adversary would produce
                // one) and is discarded.
                if vote.round() > Round::ZERO
                    && self.votes.insert(*vote) != InsertOutcome::Duplicate
                {
                    self.dirty.insert(vote.sender());
                }
            }
            Payload::Propose(proposal) => {
                self.receive_block(proposal.block_arc().clone());
                self.store_proposal(proposal.clone());
            }
        }
    }

    /// Records a proposal, honouring the naive-baseline switch.
    fn store_proposal(&mut self, proposal: Propose) {
        if self.naive_receive {
            self.proposes
                .insert_full_scan(proposal, self.config.directory());
        } else {
            self.proposes.insert(proposal, self.config.directory());
        }
    }

    /// Adds a block body to the local tree (buffering orphans). Used for
    /// proposal delivery and checkpoint installation. Takes the shared
    /// handle so a multicast block body is stored once, not once per
    /// receiver.
    pub(crate) fn receive_block(&mut self, block: impl Into<Arc<Block>>) {
        self.buffer.insert(&mut self.tree, block);
    }

    /// Executes the send phase of `round` and returns the messages this
    /// process multicasts. Callers must invoke this only for rounds the
    /// process is awake in; rounds may be skipped (sleep) but must be
    /// presented in increasing order.
    pub fn step_send(&mut self, round: Round) -> Vec<Envelope> {
        let out = match RoundKind::of(round) {
            RoundKind::Bootstrap => self.step_bootstrap(round),
            RoundKind::ViewFirst(view) => self.step_view_first(round, view),
            RoundKind::ViewSecond(view) => self.step_view_second(round, view),
        };
        self.prune(round);
        out
    }

    /// Round 0: multicast `[propose, Λ := [b₀], VRF(1)]` (Algorithm 1,
    /// view 0).
    fn step_bootstrap(&mut self, round: Round) -> Vec<Envelope> {
        let (vrf_value, vrf_proof) = self.keypair.vrf_eval(1);
        let proposal = Propose::new(
            self.id,
            round,
            View::new(1),
            Block::genesis(),
            vrf_value,
            vrf_proof,
        );
        // Record own proposal locally (a process hears its own multicast).
        self.proposes
            .insert(proposal.clone(), self.config.directory());
        vec![Envelope::sign(&self.keypair, Payload::Propose(proposal))]
    }

    /// First round of view `v` (`r = 2v − 1`): compute `GA_{v−1,2}`
    /// outputs, decide grade-1 logs, and vote in `GA_{v,1}` for the
    /// admissible proposal with the largest VRF.
    fn step_view_first(&mut self, round: Round, view: View) -> Vec<Envelope> {
        let outputs = self.tally_previous_round(round);

        // Lines 2–3: decide any grade-1 log (we record the longest).
        // View 1 has no preceding GA_{0,2} — view 0 is the propose-only
        // bootstrap round — so the first possible decision is in view 2.
        if view.as_u64() >= 2 {
            if let Some(decided) = outputs.longest_grade1() {
                self.record_decision(round, view, decided);
            }
        }

        // Line 5: L_{v−1} = longest log output with any grade. For view 1
        // there is no GA_{0,2}; the bootstrap log [b₀] stands in.
        let l_prev = outputs.longest_any_grade().unwrap_or(BlockId::GENESIS);

        // Lines 6–7: vote the proposal with the largest valid VRF(v) not
        // conflicting with L_{v−1}. The block must be locally known,
        // otherwise conflict-checking (and later counting) is impossible.
        let proposal_tip = self
            .proposes
            .select_leader_proposal(view, |p| {
                self.tree.contains(p.tip()) && self.tree.compatible(p.tip(), l_prev)
            })
            .map(|p| p.tip());
        // Fallback outside the model's guarantees (e.g. no proposal was
        // delivered during asynchrony): vote L_{v−1} itself, which keeps
        // this process voting for extensions of its protected prefix —
        // the behaviour Lemma 2's induction relies on.
        let vote_tip = proposal_tip.unwrap_or(l_prev);

        self.last_ga_output = Some(outputs);
        vec![self.make_vote(round, vote_tip)]
    }

    /// Second round of view `v` (`r = 2v`): compute `GA_{v,1}` outputs,
    /// vote the longest grade-1 log in `GA_{v,2}`, and propose a new block
    /// extending `C_v` for view `v + 1`.
    fn step_view_second(&mut self, round: Round, view: View) -> Vec<Envelope> {
        let outputs = self.tally_previous_round(round);

        // Line 9: vote the longest Λ output with grade 1. Validity
        // guarantees one exists under the model's assumptions; outside
        // them fall back to the longest any-grade output, then to the last
        // vote (never regress to nothing).
        let vote_tip = outputs
            .longest_grade1()
            .or_else(|| outputs.longest_any_grade())
            .unwrap_or(self.last_vote_tip);

        // Line 10: C_v = longest log output with any grade.
        let c_v = outputs.longest_any_grade().unwrap_or(self.last_vote_tip);

        // Line 12: propose b‖C_v for view v+1 with VRF(v+1). The body is
        // built once and shared between the proposal and the local tree.
        let next_view = view.next();
        let payload = self.take_payload_for(c_v);
        let block = Arc::new(Block::build(c_v, next_view, self.id, payload));
        let (vrf_value, vrf_proof) = self.keypair.vrf_eval(next_view.as_u64());
        let proposal = Propose::new(
            self.id,
            round,
            next_view,
            block.clone(),
            vrf_value,
            vrf_proof,
        );
        // A process hears its own multicast: record locally right away.
        self.buffer.insert(&mut self.tree, block);
        self.proposes
            .insert(proposal.clone(), self.config.directory());

        self.last_ga_output = Some(outputs);
        vec![
            self.make_vote(round, vote_tip),
            Envelope::sign(&self.keypair, Payload::Propose(proposal)),
        ]
    }

    /// Tallies the graded agreement whose send phase was the previous
    /// round: latest unexpired votes from `[r − 1 − η, r − 1]`
    /// (Section 2.1's expiration window for round `r`). With `η = 0` this
    /// is exactly the vanilla single-round tally of Figure 2.
    ///
    /// Three paths, all producing the same output for the same state:
    /// an installed shared tally (a driver certified this process's
    /// inputs identical to a cohort representative's and computed once),
    /// the incremental support index (fast mode), or the stateless
    /// full-window recompute (naive mode — the equivalence oracle).
    fn tally_previous_round(&mut self, round: Round) -> GaOutput {
        let Some(prev) = round.prev() else {
            return GaOutput::empty();
        };
        if let Some((r, shared)) = self.shared_tally.take() {
            if r == round {
                return GaOutput::clone(&shared);
            }
        }
        let lo = prev.saturating_sub(self.config.params().expiration());
        if self.naive_receive {
            self.votes
                .latest_in_window_into(lo, prev, &mut self.tally_scratch);
            return tally(&self.tree, &self.tally_scratch, self.config.thresholds());
        }
        self.reconcile_window(lo, prev);
        self.support
            .outputs(&self.tree, self.config.thresholds(), self.counted.len())
    }

    /// Brings the incremental tally state in line with the window
    /// `[lo, hi]`: re-derives every sender whose counted record expired
    /// or whose vote-store records changed, and re-checks whether
    /// previously unknown tips have landed in the (grow-only) tree. Work
    /// is proportional to what changed, not to the window size.
    fn reconcile_window(&mut self, lo: Round, hi: Round) {
        // Expired buckets: a counted record that dropped below the window
        // can only be replaced by a record inserted since (already dirty)
        // or by nothing — either way re-derivation settles it.
        while let Some((&bucket_round, _)) = self.expiries.first_key_value() {
            if bucket_round >= lo {
                break;
            }
            if let Some((_, senders)) = self.expiries.pop_first() {
                for s in senders {
                    if self.counted.get(&s).is_some_and(|c| c.0 == bucket_round) {
                        self.dirty.insert(s);
                    }
                }
            }
        }
        if !self.dirty.is_empty() {
            for s in set_into_sorted_vec(std::mem::take(&mut self.dirty)) {
                match self.votes.latest_of(s, lo, hi) {
                    Some((r, Some(tip))) => {
                        let prev_round = self.counted.insert(s, (r, tip)).map(|c| c.0);
                        if prev_round != Some(r) {
                            self.expiries.entry(r).or_default().push(s);
                        }
                        if self.tree.contains(tip) {
                            self.support.set_vote(&self.tree, s, tip);
                            self.unknown.remove(&s);
                        } else {
                            self.support.remove_vote(&self.tree, s);
                            self.unknown.insert(s);
                        }
                    }
                    // No record in the window, or the latest record is an
                    // equivocation: the sender is discarded entirely.
                    _ => {
                        if self.counted.remove(&s).is_some() {
                            self.support.remove_vote(&self.tree, s);
                            self.unknown.remove(&s);
                        }
                    }
                }
            }
        }
        if !self.unknown.is_empty() {
            for s in set_into_sorted_vec(std::mem::take(&mut self.unknown)) {
                let Some(&(_, tip)) = self.counted.get(&s) else {
                    continue;
                };
                if self.tree.contains(tip) {
                    self.support.set_vote(&self.tree, s, tip);
                } else {
                    self.unknown.insert(s);
                }
            }
        }
    }

    /// Computes the round-`round` tally for sharing across a certified
    /// cohort (drivers call this on one representative, then install the
    /// result into every member via
    /// [`crate::Protocol::install_shared_tally`]).
    pub fn shared_round_tally(&mut self, round: Round) -> GaOutput {
        self.tally_previous_round(round)
    }

    /// Installs a cohort-shared tally for `round`, consumed by the next
    /// [`TobProcess::step_send`] for that round (a stale round is
    /// silently discarded and the tally recomputed locally).
    pub fn install_shared_tally(&mut self, round: Round, tally: Arc<GaOutput>) {
        self.shared_tally = Some((round, tally));
    }

    /// Hasher-independent digest of the tally-relevant state (vote store
    /// combined with block tree): two processes with equal fingerprints
    /// answer every windowed tally identically. `None` in naive mode,
    /// which opts out of tally sharing.
    pub fn tally_fingerprint(&self) -> Option<u64> {
        if self.naive_receive {
            return None;
        }
        Some(mix64_pair(
            self.votes.fingerprint(),
            self.tree.fingerprint(),
        ))
    }

    fn make_vote(&mut self, round: Round, tip: BlockId) -> Envelope {
        self.last_vote_tip = tip;
        let vote = Vote::new(self.id, round, tip);
        // A process hears its own vote.
        if self.votes.insert(vote) != InsertOutcome::Duplicate {
            self.dirty.insert(self.id);
        }
        Envelope::sign(&self.keypair, Payload::Vote(vote))
    }

    fn record_decision(&mut self, round: Round, view: View, tip: BlockId) {
        self.decisions.push(DecisionEvent { round, view, tip });
        // Adopt as the decided tip if it extends the current decided log;
        // a conflicting decision (model violation) is recorded above but
        // the exposed decided log stays monotone for downstream readers.
        if self.tree.is_ancestor(self.decided_tip, tip) {
            self.decided_tip = tip;
        }
    }

    /// Transactions to include in the next proposal: pending mempool
    /// entries not already present in the log being extended.
    fn take_payload_for(&mut self, parent_tip: BlockId) -> Vec<TxId> {
        if self.mempool.is_empty() {
            return Vec::new();
        }
        let onchain: FastSet<TxId> = self.tree.log_transactions(parent_tip).into_iter().collect();
        let payload: Vec<TxId> = self
            .mempool
            .iter()
            .copied()
            .filter(|tx| !onchain.contains(tx))
            .collect();
        payload
    }

    /// Drops state that can no longer influence any future tally:
    /// votes older than one full expiration window behind, proposals for
    /// past views.
    fn prune(&mut self, round: Round) {
        // Keep a safety margin of one extra window to serve diagnostics.
        let horizon = round.saturating_sub(2 * self.config.params().expiration() + 4);
        if self.naive_receive {
            self.votes.prune_below_presplit(horizon);
        } else {
            self.votes.prune_below(horizon);
        }
        let view = RoundKind::of(round).view();
        if view.as_u64() > 1 {
            self.proposes.prune_below(View::new(view.as_u64() - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::Params;

    /// Lock-step synchronous driver: every round, all processes send and
    /// every message reaches everyone before the next round.
    fn run_lockstep(n: usize, eta: u64, rounds: u64, seed: u64) -> Vec<TobProcess> {
        let params = Params::builder(n).expiration(eta).build().unwrap();
        let config = TobConfig::new(params, seed);
        let mut procs: Vec<TobProcess> = (0..n as u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        for r in 0..=rounds {
            lockstep_round(&mut procs, Round::new(r));
        }
        procs
    }

    fn lockstep_round(procs: &mut [TobProcess], round: Round) {
        let batches: Vec<Vec<Envelope>> = procs.iter_mut().map(|p| p.step_send(round)).collect();
        for batch in &batches {
            for env in batch {
                for p in procs.iter_mut() {
                    p.on_receive(env.clone());
                }
            }
        }
    }

    #[test]
    fn synchronous_run_decides_and_agrees() {
        for eta in [0u64, 2, 4] {
            let procs = run_lockstep(4, eta, 12, 7);
            for p in &procs {
                assert!(
                    !p.decisions().is_empty(),
                    "η={eta}: process {:?} never decided",
                    p.id()
                );
            }
            // All decided tips pairwise compatible (checked on p0's tree,
            // which has absorbed every proposal).
            let tree = procs[0].tree();
            for a in &procs {
                for b in &procs {
                    assert!(
                        tree.compatible(a.decided_tip(), b.decided_tip()),
                        "η={eta}: decided logs diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn decided_log_grows_monotonically() {
        let params = Params::builder(4).expiration(2).build().unwrap();
        let config = TobConfig::new(params, 3);
        let mut procs: Vec<TobProcess> = (0..4u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        let mut tips: Vec<BlockId> = vec![BlockId::GENESIS; 4];
        for r in 0..=20u64 {
            lockstep_round(&mut procs, Round::new(r));
            for (i, p) in procs.iter().enumerate() {
                assert!(
                    p.tree().is_ancestor(tips[i], p.decided_tip()),
                    "round {r}: decided log of p{i} regressed"
                );
                tips[i] = p.decided_tip();
            }
        }
        // After 10 views the decided log extends beyond genesis.
        assert!(procs.iter().all(|p| p.decided_tip() != BlockId::GENESIS));
    }

    #[test]
    fn submitted_transaction_reaches_decided_log() {
        let params = Params::builder(4).expiration(2).build().unwrap();
        let config = TobConfig::new(params, 11);
        let mut procs: Vec<TobProcess> = (0..4u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        let tx = TxId::new(777);
        procs[2].submit_tx(tx);
        for r in 0..=16u64 {
            lockstep_round(&mut procs, Round::new(r));
        }
        for p in &procs {
            assert!(
                p.tree().log_contains_tx(p.decided_tip(), tx),
                "tx missing from {:?}'s decided log",
                p.id()
            );
        }
    }

    #[test]
    fn decisions_progress_once_per_view_under_synchrony() {
        let procs = run_lockstep(4, 2, 24, 5);
        // With honest unanimity, every view from the second on decides:
        // roughly (rounds/2 − 1) decisions.
        for p in &procs {
            assert!(
                p.decisions().len() >= 8,
                "expected ≥8 decisions, got {} for {:?}",
                p.decisions().len(),
                p.id()
            );
            // Views strictly increase.
            for w in p.decisions().windows(2) {
                assert!(w[0].view < w[1].view);
            }
        }
    }

    #[test]
    fn sleeping_process_catches_up_on_wake() {
        let params = Params::builder(4).expiration(4).build().unwrap();
        let config = TobConfig::new(params, 9);
        let mut procs: Vec<TobProcess> = (0..4u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        // p3 sleeps during rounds 3..=6: it neither sends nor receives.
        let mut queued: Vec<Envelope> = Vec::new();
        for r in 0..=12u64 {
            let round = Round::new(r);
            let asleep = (3..=6).contains(&r);
            let active: Vec<usize> = if asleep {
                vec![0, 1, 2]
            } else {
                vec![0, 1, 2, 3]
            };
            let mut batches: Vec<Envelope> = Vec::new();
            for &i in &active {
                batches.extend(procs[i].step_send(round));
            }
            if asleep {
                queued.extend(batches.iter().cloned());
                for &i in &active {
                    for env in &batches {
                        procs[i].on_receive(env.clone());
                    }
                }
            } else {
                // Wake-up: deliver everything queued while asleep first.
                if !queued.is_empty() {
                    for env in queued.drain(..) {
                        procs[3].on_receive(env);
                    }
                }
                for env in &batches {
                    for p in procs.iter_mut() {
                        p.on_receive(env.clone());
                    }
                }
            }
        }
        // p3 decided after waking, and its log agrees with the others.
        assert!(!procs[3].decisions().is_empty());
        let tree = procs[0].tree();
        assert!(tree.compatible(procs[3].decided_tip(), procs[0].decided_tip()));
    }

    #[test]
    fn invalid_signature_is_discarded() {
        let params = Params::builder(3).build().unwrap();
        let config = TobConfig::new(params, 1);
        let mut p = TobProcess::new(ProcessId::new(0), config.clone());
        // An envelope signed under a different seed fails verification.
        let alien = Keypair::derive(ProcessId::new(1), 999);
        let vote = Vote::new(ProcessId::new(1), Round::new(1), BlockId::GENESIS);
        let env = Envelope::sign(&alien, Payload::Vote(vote));
        p.on_receive(env);
        let w = p.votes.latest_in_window(Round::new(1), Round::new(1));
        assert_eq!(w.participation(), 0);
    }

    #[test]
    fn vanilla_and_extended_agree_under_full_synchrony() {
        // Under full participation and synchrony the extended protocol
        // must match the vanilla protocol's decisions (claim: it "matches
        // the latency and throughput of the original protocol when the
        // synchrony bound holds").
        let vanilla = run_lockstep(4, 0, 14, 21);
        let extended = run_lockstep(4, 4, 14, 21);
        for (v, e) in vanilla.iter().zip(extended.iter()) {
            assert_eq!(
                v.decisions().len(),
                e.decisions().len(),
                "decision counts diverge"
            );
            for (dv, de) in v.decisions().iter().zip(e.decisions().iter()) {
                assert_eq!(dv.round, de.round);
                assert_eq!(dv.tip, de.tip, "decided different logs at {:?}", dv.round);
            }
        }
    }

    #[test]
    fn mempool_dedupes_and_drains() {
        let params = Params::builder(1).build().unwrap();
        let config = TobConfig::new(params, 2);
        let mut p = TobProcess::new(ProcessId::new(0), config);
        p.submit_tx(TxId::new(1));
        p.submit_tx(TxId::new(1));
        assert_eq!(p.mempool.len(), 1);
    }
}
