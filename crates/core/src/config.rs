//! Shared protocol configuration.

use st_ga::Thresholds;
use st_messages::KeyDirectory;
use st_types::Params;
use std::sync::Arc;

/// Configuration shared by all processes of one protocol instance:
/// validated [`Params`], the derived grading [`Thresholds`], the system
/// seed, and the public-key directory.
///
/// Cloning is cheap (the directory is behind an [`Arc`]).
#[derive(Clone, Debug)]
pub struct TobConfig {
    params: Params,
    thresholds: Thresholds,
    seed: u64,
    directory: Arc<KeyDirectory>,
}

impl TobConfig {
    /// Builds the configuration for a system described by `params` under a
    /// deterministic `seed` (key derivation, VRFs and any randomness
    /// derive from it).
    pub fn new(params: Params, seed: u64) -> TobConfig {
        TobConfig {
            params,
            thresholds: Thresholds::new(params.failure_ratio()),
            seed,
            directory: Arc::new(KeyDirectory::derive(params.n(), seed)),
        }
    }

    /// The validated protocol parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The grading thresholds (`β`-derived).
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The system seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The public-key directory.
    pub fn directory(&self) -> &KeyDirectory {
        &self.directory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_derives_directory_of_n_keys() {
        let params = Params::builder(5).build().unwrap();
        let cfg = TobConfig::new(params, 42);
        assert_eq!(cfg.directory().len(), 5);
        assert_eq!(cfg.seed(), 42);
        assert!((cfg.thresholds().beta() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clone_shares_directory() {
        let cfg = TobConfig::new(Params::builder(3).build().unwrap(), 1);
        let cfg2 = cfg.clone();
        assert!(Arc::ptr_eq(&cfg.directory, &cfg2.directory));
    }
}
