//! The paper's core contribution: the Malkhi–Momose–Ren total-order
//! broadcast protocol (Algorithm 1) parameterised by a **message expiration
//! period** `η`.
//!
//! * `η = 0` — the vanilla MMR protocol of Section 3.1: every graded
//!   agreement tallies only votes cast in the immediately preceding round.
//!   Dynamically available, but loses safety the moment the network turns
//!   asynchronous (the split-vote attack of Section 1).
//! * `η > 0` — the asynchrony-resilient extension of Section 3.3: every
//!   graded agreement tallies the **latest unexpired** vote of each process
//!   over the window `[r − 1 − η, r − 1]`. Tolerates any asynchronous
//!   period of `π < η` rounds (Theorem 2) at the price of a bounded churn
//!   rate `γ` and a reduced failure ratio `β̃` (Section 2.3).
//!
//! The protocol proceeds in views of two rounds (view 0 is a single
//! bootstrap propose round). In the first round of view `v` each awake
//! process computes the outputs of `GA_{v−1,2}`, **decides** every grade-1
//! log, and votes in `GA_{v,1}` for the proposal with the largest valid
//! VRF that does not conflict with the longest output `L_{v−1}`. In the
//! second round it computes `GA_{v,1}`, votes its longest grade-1 output in
//! `GA_{v,2}`, and proposes a new block extending the longest any-grade
//! output `C_v` for view `v + 1`.
//!
//! [`TobProcess`] is a deterministic, I/O-free state machine: the driver
//! (the `st-sim` simulator, a test, or a real network shim) feeds received
//! envelopes via [`TobProcess::on_receive`] and asks for a round's
//! outgoing messages via [`TobProcess::step_send`]. This makes the exact
//! same protocol code testable under lock-step simulation, adversarial
//! delivery, and property-based exploration.
//!
//! That driving surface is itself a trait: [`Protocol`] (see the
//! [`protocol`] module) captures construction, tx submission, receive,
//! send, and the decision/ledger views, so simulators generic over it can
//! drive *any* implementor. [`TobProcess`] is the canonical one;
//! [`QuorumProcess`] is the classic fixed-quorum BFT baseline the paper
//! compares against, runnable under the same harness for head-to-head
//! experiments.
//!
//! # Example: three processes, one synchronous view cycle
//!
//! ```
//! use st_core::{TobConfig, TobProcess};
//! use st_types::{ProcessId, Round};
//!
//! let config = TobConfig::new(st_types::Params::builder(3).expiration(2).build()?, 7);
//! let mut procs: Vec<TobProcess> =
//!     (0..3).map(|i| TobProcess::new(ProcessId::new(i), config.clone())).collect();
//!
//! // Drive a few lock-step rounds: everyone sends, everyone receives all.
//! for r in 0..=6u64 {
//!     let round = Round::new(r);
//!     let batches: Vec<_> = procs.iter_mut().map(|p| p.step_send(round)).collect();
//!     for batch in &batches {
//!         for env in batch {
//!             for p in procs.iter_mut() {
//!                 p.on_receive(env.clone());
//!             }
//!         }
//!     }
//! }
//! // By round 5 every process has decided the view-1 common log.
//! assert!(procs.iter().all(|p| !p.decisions().is_empty()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod checkpoint;
mod config;
mod decision;
mod process;
pub mod protocol;
mod quorum;

pub use buffer::BlockBuffer;
pub use checkpoint::Checkpoint;
pub use config::TobConfig;
pub use decision::DecisionEvent;
pub use process::TobProcess;
pub use protocol::Protocol;
pub use quorum::QuorumProcess;
