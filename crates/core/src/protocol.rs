//! The pluggable protocol abstraction.
//!
//! The simulator's round loop (st-sim's `Simulation`) does not care
//! *which* consensus protocol it is driving: it constructs one state
//! machine per process, feeds delivered envelopes in, asks each awake
//! machine for a round's outgoing messages, and reads decisions and
//! decided-log views out for the monitors. [`Protocol`] captures exactly
//! that surface, so the whole simulation stack — builder, runner,
//! observers, sweeps — is generic over the protocol under test:
//!
//! * [`crate::TobProcess`] — the paper's sleepy protocol (Algorithm 1
//!   with message expiration), the default everywhere;
//! * [`crate::QuorumProcess`] — the classic fixed-quorum BFT baseline
//!   the introduction compares against, now an actual message-passing
//!   participant instead of a closed-form schedule walk.
//!
//! Decisions are deliberately *not* an associated type: every
//! implementor reports [`DecisionEvent`]s (round, view, decided tip into
//! a shared [`BlockTree`] vocabulary), which is what lets the safety and
//! resilience monitors — statements about decided logs, not about any
//! particular protocol — work unchanged for any implementor.

use crate::{DecisionEvent, TobConfig};
use st_blocktree::{Block, BlockTree};
use st_ga::GaOutput;
use st_messages::{Envelope, SharedEnvelope};
use st_types::{BlockId, ProcessId, Round, TxId};
use std::sync::Arc;

/// A per-process consensus state machine the simulator can drive.
///
/// Implementors are deterministic and I/O-free: the driver delivers
/// received messages via [`Protocol::on_receive_shared`] and asks for a
/// round's outgoing multicasts via [`Protocol::step_send`]. Rounds may
/// be skipped (the sleepy model's sleeping) but must be presented in
/// increasing order; queued messages delivered on wake-up arrive through
/// the ordinary receive path.
pub trait Protocol: Sized + 'static {
    /// The protocol's display name (reports, sweep comparisons, CLIs).
    fn protocol_name() -> &'static str;

    /// Creates the process `id` under the shared `config` (parameters,
    /// seed, key directory).
    fn new(id: ProcessId, config: TobConfig) -> Self;

    /// This process's id.
    fn id(&self) -> ProcessId;

    /// Queues a transaction for inclusion in future proposals.
    fn submit_tx(&mut self, tx: TxId);

    /// Handles a received shared envelope (the multicast fast path: the
    /// signature verdict is cached per envelope, so a fan-out verifies
    /// once per unique envelope, not once per receiver).
    ///
    /// # Delivery contract
    ///
    /// Real transports re-send on reconnect and interleave peers
    /// arbitrarily, so implementors must tolerate **duplicated** and
    /// **reordered** delivery within a round boundary: delivering the same
    /// envelope multiple times, or a round's envelopes in any order,
    /// before the next [`Protocol::step_send`] must leave the decided
    /// chain unchanged. ([`crate::TobProcess`] dedups votes in its vote
    /// store and proposals in its propose store; block insertion is
    /// idempotent by content-address.) The driver in turn guarantees
    /// envelopes are not delivered *across* the wrong round boundary —
    /// the lockstep simulator by construction, the socket runtime by
    /// exactly-once round-batch ingestion.
    fn on_receive_shared(&mut self, envelope: &SharedEnvelope);

    /// Handles a received owned envelope. The default wraps it into a
    /// fresh [`SharedEnvelope`] (re-verifying from scratch); multicast
    /// drivers should prefer [`Protocol::on_receive_shared`].
    fn on_receive(&mut self, envelope: Envelope) {
        self.on_receive_shared(&SharedEnvelope::new(envelope));
    }

    /// Executes the send phase of `round` and returns the messages this
    /// process multicasts. Call only for rounds the process is awake in.
    fn step_send(&mut self, round: Round) -> Vec<Envelope>;

    /// Every decision event not yet drained, in occurrence order.
    /// Conflicting decisions (possible only when model assumptions are
    /// violated) must be recorded faithfully so monitors can detect them.
    fn decisions(&self) -> &[DecisionEvent];

    /// Removes and returns every decision event recorded since the last
    /// drain. Drivers consume decisions through this so per-process event
    /// logs stay bounded on long horizons; [`Protocol::decisions`]
    /// exposes only what has not been drained yet.
    fn drain_decisions(&mut self) -> Vec<DecisionEvent>;

    /// Hasher-independent digest of the state a round tally reads (vote
    /// window + block tree). Two processes returning equal fingerprints
    /// must produce identical tallies for the same round; `None` (the
    /// default) opts the process out of tally sharing entirely, which is
    /// always sound.
    fn tally_fingerprint(&self) -> Option<u64> {
        None
    }

    /// Computes the round-`round` tally once for a cohort of receivers
    /// certified identical (equal [`Protocol::tally_fingerprint`] among
    /// other driver-side checks). Drivers call this on one
    /// representative, then hand the result to every member via
    /// [`Protocol::install_shared_tally`]. The default `None` means the
    /// protocol has no shareable tally.
    fn shared_round_tally(&mut self, round: Round) -> Option<GaOutput> {
        let _ = round;
        None
    }

    /// Installs a cohort-shared tally for `round`, to be consumed by this
    /// process's next [`Protocol::step_send`] for that round. The default
    /// discards it (correct for protocols without a shareable tally).
    fn install_shared_tally(&mut self, round: Round, tally: Arc<GaOutput>) {
        let _ = (round, tally);
    }

    /// The tip of the longest decided log (genesis before any decision).
    fn decided_tip(&self) -> BlockId;

    /// The process's view of the block tree (decided chain + known side
    /// branches) — the shared vocabulary monitors resolve decision tips
    /// against.
    fn tree(&self) -> &BlockTree;

    /// Switches to the pre-fast-path receive cost model (benchmarking
    /// baseline; see `SimConfig::naive_delivery` in st-sim). Behaviour
    /// must be identical either way; the default ignores the switch,
    /// which is correct for protocols without a tuned receive path.
    fn set_naive_receive(&mut self, naive: bool) {
        let _ = naive;
    }

    /// Installs externally obtained blocks — the checkpoint/wake-up
    /// bootstrap hook (see [`crate::Checkpoint`]). Orphans must buffer
    /// exactly like blocks arriving in proposals. The default ignores
    /// the blocks, which is only correct for protocols that never
    /// bootstrap from snapshots.
    fn install_blocks(&mut self, blocks: &[Block]) {
        let _ = blocks;
    }
}

/// The sleepy protocol (Algorithm 1 with message expiration) is the
/// canonical implementor — every trait method delegates to the inherent
/// method of the same name, so driving a `TobProcess` through the
/// generic runner is call-for-call the code path the non-generic runner
/// used (the determinism suite asserts byte-identical reports).
impl Protocol for crate::TobProcess {
    fn protocol_name() -> &'static str {
        "sleepy-tob"
    }

    fn new(id: ProcessId, config: TobConfig) -> Self {
        crate::TobProcess::new(id, config)
    }

    fn id(&self) -> ProcessId {
        crate::TobProcess::id(self)
    }

    fn submit_tx(&mut self, tx: TxId) {
        crate::TobProcess::submit_tx(self, tx);
    }

    fn on_receive_shared(&mut self, envelope: &SharedEnvelope) {
        crate::TobProcess::on_receive_shared(self, envelope);
    }

    fn on_receive(&mut self, envelope: Envelope) {
        crate::TobProcess::on_receive(self, envelope);
    }

    fn step_send(&mut self, round: Round) -> Vec<Envelope> {
        crate::TobProcess::step_send(self, round)
    }

    fn decisions(&self) -> &[DecisionEvent] {
        crate::TobProcess::decisions(self)
    }

    fn drain_decisions(&mut self) -> Vec<DecisionEvent> {
        crate::TobProcess::drain_decisions(self)
    }

    fn tally_fingerprint(&self) -> Option<u64> {
        crate::TobProcess::tally_fingerprint(self)
    }

    fn shared_round_tally(&mut self, round: Round) -> Option<GaOutput> {
        Some(crate::TobProcess::shared_round_tally(self, round))
    }

    fn install_shared_tally(&mut self, round: Round, tally: Arc<GaOutput>) {
        crate::TobProcess::install_shared_tally(self, round, tally);
    }

    fn decided_tip(&self) -> BlockId {
        crate::TobProcess::decided_tip(self)
    }

    fn tree(&self) -> &BlockTree {
        crate::TobProcess::tree(self)
    }

    fn set_naive_receive(&mut self, naive: bool) {
        crate::TobProcess::set_naive_receive(self, naive);
    }

    fn install_blocks(&mut self, blocks: &[Block]) {
        crate::TobProcess::install_blocks(self, blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TobProcess;
    use st_types::Params;

    /// A generic lock-step driver — the shape st-sim's runner has, written
    /// against the trait alone.
    fn lockstep<P: Protocol>(n: usize, rounds: u64, seed: u64) -> Vec<P> {
        let params = Params::builder(n).expiration(2).build().unwrap();
        let config = TobConfig::new(params, seed);
        let mut procs: Vec<P> = (0..n as u32)
            .map(|i| P::new(ProcessId::new(i), config.clone()))
            .collect();
        for r in 0..=rounds {
            let batches: Vec<Vec<Envelope>> = procs
                .iter_mut()
                .map(|p| p.step_send(Round::new(r)))
                .collect();
            for batch in &batches {
                for env in batch {
                    let shared = SharedEnvelope::new(env.clone());
                    for p in procs.iter_mut() {
                        p.on_receive_shared(&shared);
                    }
                }
            }
        }
        procs
    }

    #[test]
    fn trait_driver_runs_the_sleepy_protocol() {
        let procs = lockstep::<TobProcess>(4, 12, 7);
        for p in &procs {
            assert!(!Protocol::decisions(p).is_empty());
            assert_ne!(Protocol::decided_tip(p), BlockId::GENESIS);
        }
    }

    #[test]
    fn trait_and_inherent_paths_agree() {
        // Driving via the trait must be the same computation as driving
        // via the inherent methods: identical decision streams.
        let via_trait = lockstep::<TobProcess>(4, 12, 9);
        let params = Params::builder(4).expiration(2).build().unwrap();
        let config = TobConfig::new(params, 9);
        let mut direct: Vec<TobProcess> = (0..4u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        for r in 0..=12u64 {
            let batches: Vec<Vec<Envelope>> = direct
                .iter_mut()
                .map(|p| p.step_send(Round::new(r)))
                .collect();
            for batch in &batches {
                for env in batch {
                    for p in direct.iter_mut() {
                        p.on_receive(env.clone());
                    }
                }
            }
        }
        for (t, d) in via_trait.iter().zip(direct.iter()) {
            assert_eq!(Protocol::decisions(t), d.decisions());
            assert_eq!(Protocol::decided_tip(t), d.decided_tip());
        }
    }
}
