//! Property tests of the dissemination layer: on any connected sampled
//! topology, gossip reaches every awake node, survives origin sleep after
//! the first hop, and never exceeds the edge-count transmission bound.

use proptest::prelude::*;
use st_gossip::{GossipEngine, Topology};
use st_types::ProcessId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_coverage_on_any_topology(
        n in 4usize..80,
        degree in 2usize..8,
        seed in any::<u64>(),
        origin in any::<u32>(),
    ) {
        prop_assume!(degree < n);
        let topology = match Topology::random_regular(n, degree, seed) {
            Ok(t) => t,
            Err(_) => return Ok(()), // pathological sample: skip
        };
        let mut g = GossipEngine::new(topology);
        let msg = g.inject(ProcessId::new(origin % n as u32), 1);
        let hops = g.run_to_quiescence();
        prop_assert_eq!(g.coverage(msg), 1.0);
        prop_assert!(hops <= n, "gossip did not terminate promptly");
    }

    #[test]
    fn origin_sleep_after_first_hop_never_hurts(
        n in 6usize..60,
        degree in 2usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(degree < n);
        let topology = match Topology::random_regular(n, degree, seed) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        let mut g = GossipEngine::new(topology);
        let origin = ProcessId::new(0);
        let msg = g.inject(origin, 1);
        g.step();
        g.sleep(origin);
        g.run_to_quiescence();
        prop_assert!(g.coverage(msg) >= 1.0);
    }

    #[test]
    fn transmissions_bounded(
        n in 4usize..60,
        degree in 2usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(degree < n);
        let topology = match Topology::random_regular(n, degree, seed) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        let max_edges: usize = (0..n)
            .map(|i| topology.peers_of(ProcessId::new(i as u32)).len())
            .sum();
        let mut g = GossipEngine::new(topology);
        g.inject(ProcessId::new(0), 1);
        g.run_to_quiescence();
        // Each node pushes the message to each of its peers at most once.
        prop_assert!(g.transmissions() <= max_edges);
    }
}
