//! Hop-by-hop push gossip with relay retention and node sleep.

use crate::topology::Topology;
use st_types::fasthash::set_iter_sorted;
use st_types::{FastSet, ProcessId};

/// Identifier of a message injected into the gossip layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(u64);

impl MessageId {
    /// The raw value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Per-node state: what it has seen (and will relay), and whether it is
/// awake.
#[derive(Clone, Debug, Default)]
struct NodeState {
    /// `FastSet`, not `std` `HashSet`: retained-message replay iterates
    /// this set, and replay order must not depend on `RandomState`.
    seen: FastSet<MessageId>,
    /// Messages received in the previous hop, still to be pushed.
    frontier: Vec<MessageId>,
    asleep: bool,
}

/// A push-gossip engine over a fixed [`Topology`].
///
/// Semantics per hop ([`GossipEngine::step`]): every awake node pushes
/// every message in its frontier to all its peers; awake peers that have
/// not seen a message adopt it into their own frontier (to push next
/// hop). Asleep nodes neither push nor receive — but *relays keep
/// pushing*, which is exactly footnote 2's retention property: once a
/// message has left its origin, the origin's sleep does not stop
/// dissemination. A node that wakes is caught up by its peers: on
/// [`GossipEngine::wake`], every awake peer re-pushes its retained
/// messages toward the woken node (see `wake` for details).
#[derive(Clone, Debug)]
pub struct GossipEngine {
    topology: Topology,
    nodes: Vec<NodeState>,
    next_id: u64,
    /// Push transmissions performed (duplication metric).
    transmissions: usize,
}

impl GossipEngine {
    /// An engine over `topology`, all nodes awake.
    pub fn new(topology: Topology) -> GossipEngine {
        let n = topology.n();
        GossipEngine {
            topology,
            nodes: (0..n).map(|_| NodeState::default()).collect(),
            next_id: 0,
            transmissions: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Injects a fresh message at `origin` (it enters the origin's
    /// frontier; `payload_tag` only differentiates ids for callers).
    pub fn inject(&mut self, origin: ProcessId, payload_tag: u64) -> MessageId {
        let id = MessageId(self.next_id << 16 | (payload_tag & 0xffff));
        self.next_id += 1;
        let node = &mut self.nodes[origin.index()];
        node.seen.insert(id);
        node.frontier.push(id);
        id
    }

    /// Puts a node to sleep: it stops pushing and receiving.
    pub fn sleep(&mut self, p: ProcessId) {
        self.nodes[p.index()].asleep = true;
    }

    /// Wakes a node. Two things happen, both modelling footnote 2's
    /// retention property:
    ///
    /// * everything the node has seen re-enters its own frontier, so its
    ///   neighbourhood converges again on anything it alone holds;
    /// * every **awake peer re-pushes its retained messages toward the
    ///   woken node** — a node that slept through a dissemination receives
    ///   it from its relays on wake, without any other node having to
    ///   cycle through sleep/wake itself. Messages the woken node adopts
    ///   here enter its frontier and propagate onward on the next hop.
    pub fn wake(&mut self, p: ProcessId) {
        if !self.nodes[p.index()].asleep {
            return;
        }
        self.nodes[p.index()].asleep = false;
        // Canonical (sorted) replay order: set iteration order is an
        // implementation detail and must never leak into the hop
        // schedule.
        let replay: Vec<MessageId> = set_iter_sorted(&self.nodes[p.index()].seen)
            .copied()
            .collect();
        self.nodes[p.index()].frontier = replay;
        // Peer re-push: each awake peer sends its whole seen-cache to the
        // woken node (counted as transmissions — retention isn't free).
        let peers: Vec<usize> = self
            .topology
            .peers_of(p)
            .iter()
            .map(|q| q.index())
            .filter(|&q| !self.nodes[q].asleep)
            .collect();
        for q in peers {
            let pushed: Vec<MessageId> = set_iter_sorted(&self.nodes[q].seen).copied().collect();
            self.transmissions += pushed.len();
            let node = &mut self.nodes[p.index()];
            for msg in pushed {
                if node.seen.insert(msg) {
                    node.frontier.push(msg);
                }
            }
        }
    }

    /// Executes one gossip hop; returns the number of new (node, message)
    /// deliveries.
    pub fn step(&mut self) -> usize {
        // Collect pushes first (immutable pass), then apply.
        let mut pushes: Vec<(usize, MessageId)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.asleep || node.frontier.is_empty() {
                continue;
            }
            for &peer in self.topology.peers_of(ProcessId::new(i as u32)) {
                for &msg in &node.frontier {
                    pushes.push((peer.index(), msg));
                }
            }
        }
        self.transmissions += pushes.len();
        for node in &mut self.nodes {
            node.frontier.clear();
        }
        let mut delivered = 0;
        for (peer, msg) in pushes {
            let node = &mut self.nodes[peer];
            if node.asleep {
                continue; // asleep nodes receive nothing (queued at peers' seen-caches)
            }
            if node.seen.insert(msg) {
                node.frontier.push(msg);
                delivered += 1;
            }
        }
        delivered
    }

    /// Steps until no hop delivers anything new; returns the hop count.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut hops = 0;
        loop {
            let delivered = self.step();
            if delivered == 0 {
                return hops;
            }
            hops += 1;
        }
    }

    /// Fraction of **awake** nodes that have seen `msg`.
    pub fn coverage(&self, msg: MessageId) -> f64 {
        let awake: Vec<&NodeState> = self.nodes.iter().filter(|n| !n.asleep).collect();
        if awake.is_empty() {
            return 0.0;
        }
        awake.iter().filter(|n| n.seen.contains(&msg)).count() as f64 / awake.len() as f64
    }

    /// Whether `p` has seen `msg`.
    pub fn has_seen(&self, p: ProcessId, msg: MessageId) -> bool {
        self.nodes[p.index()].seen.contains(&msg)
    }

    /// Total push transmissions so far (the duplication cost of gossip).
    pub fn transmissions(&self) -> usize {
        self.transmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: usize, degree: usize) -> GossipEngine {
        GossipEngine::new(Topology::random_regular(n, degree, 11).unwrap())
    }

    #[test]
    fn full_coverage_in_logarithmic_hops() {
        let mut g = engine(100, 8);
        let msg = g.inject(ProcessId::new(0), 1);
        let hops = g.run_to_quiescence();
        assert_eq!(g.coverage(msg), 1.0);
        assert!(hops <= 10, "took {hops} hops");
    }

    #[test]
    fn origin_sleep_does_not_stop_dissemination() {
        let mut g = engine(60, 6);
        let msg = g.inject(ProcessId::new(0), 1);
        g.step(); // one hop: the origin's peers have it
        g.sleep(ProcessId::new(0));
        g.run_to_quiescence();
        assert!(g.coverage(msg) >= 1.0, "coverage {}", g.coverage(msg));
    }

    #[test]
    fn sleeping_receiver_catches_up_after_wake() {
        let mut g = engine(30, 4);
        g.sleep(ProcessId::new(7));
        let msg = g.inject(ProcessId::new(0), 1);
        g.run_to_quiescence();
        assert!(!g.has_seen(ProcessId::new(7), msg));
        // Wake: the woken node's peers re-push their retained messages
        // toward it (footnote-2 retention) — no other node has to be
        // slept and re-woken for the replay to happen.
        g.wake(ProcessId::new(7));
        assert!(g.has_seen(ProcessId::new(7), msg));
        // And everyone still converges.
        g.run_to_quiescence();
        assert_eq!(g.coverage(msg), 1.0);
    }

    #[test]
    fn wake_is_noop_for_awake_nodes() {
        let mut g = engine(20, 4);
        let msg = g.inject(ProcessId::new(0), 1);
        g.run_to_quiescence();
        let tx_before = g.transmissions();
        g.wake(ProcessId::new(3)); // already awake: no re-push storm
        assert_eq!(g.transmissions(), tx_before);
        assert_eq!(g.coverage(msg), 1.0);
    }

    #[test]
    fn transmissions_bounded_by_edges_times_messages() {
        let mut g = engine(40, 4);
        g.inject(ProcessId::new(0), 1);
        g.run_to_quiescence();
        // Each node pushes each message to each peer at most once per
        // adoption: ≤ n · degree total.
        assert!(
            g.transmissions() <= 40 * 6,
            "{} transmissions",
            g.transmissions()
        );
    }

    #[test]
    fn multiple_messages_disseminate_independently() {
        let mut g = engine(50, 6);
        let a = g.inject(ProcessId::new(0), 1);
        let b = g.inject(ProcessId::new(25), 2);
        g.run_to_quiescence();
        assert_eq!(g.coverage(a), 1.0);
        assert_eq!(g.coverage(b), 1.0);
        assert_ne!(a, b);
    }
}
