//! Peer graphs for the dissemination layer.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_types::ProcessId;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors from topology construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A graph needs at least two nodes to have edges.
    TooFewNodes(usize),
    /// The requested degree is not realisable (`degree ≥ n` or odd
    /// `n·degree`).
    BadDegree {
        /// Nodes requested.
        n: usize,
        /// Degree requested.
        degree: usize,
    },
    /// The sampler failed to produce a connected graph (pathological
    /// seed/degree combination).
    Disconnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewNodes(n) => write!(f, "topology needs ≥ 2 nodes, got {n}"),
            TopologyError::BadDegree { n, degree } => {
                write!(f, "degree {degree} unrealisable for {n} nodes")
            }
            TopologyError::Disconnected => write!(f, "sampled graph is disconnected"),
        }
    }
}

impl Error for TopologyError {}

/// An undirected peer graph over processes `0..n`.
#[derive(Clone, Debug)]
pub struct Topology {
    peers: Vec<Vec<ProcessId>>,
}

impl Topology {
    /// A connected random graph where every node has (close to) `degree`
    /// peers: a Hamiltonian ring (guaranteeing connectivity) plus random
    /// chords. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooFewNodes`] for `n < 2`;
    /// [`TopologyError::BadDegree`] when `degree < 2` or `degree ≥ n`.
    pub fn random_regular(n: usize, degree: usize, seed: u64) -> Result<Topology, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewNodes(n));
        }
        if degree < 2 || degree >= n {
            return Err(TopologyError::BadDegree { n, degree });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x90551b);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        };
        // Ring backbone.
        for i in 0..n {
            connect(&mut adj, i, (i + 1) % n);
        }
        // Random chords until everyone reaches the target degree (best
        // effort: a few nodes may end one short when n·degree is odd).
        let mut attempts = 0;
        while attempts < 20 * n * degree {
            attempts += 1;
            let a = rng.random_range(0..n);
            if adj[a].len() >= degree {
                continue;
            }
            let b = rng.random_range(0..n);
            if adj[b].len() >= degree {
                continue;
            }
            connect(&mut adj, a, b);
            if adj.iter().all(|p| p.len() >= degree) {
                break;
            }
        }
        let topology = Topology {
            peers: adj
                .into_iter()
                .map(|p| p.into_iter().map(|i| ProcessId::new(i as u32)).collect())
                .collect(),
        };
        if !topology.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        Ok(topology)
    }

    /// A full mesh (every pair connected) — the degenerate "gossip in one
    /// hop" comparison point.
    pub fn full_mesh(n: usize) -> Topology {
        Topology {
            peers: (0..n)
                .map(|i| {
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| ProcessId::new(j as u32))
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// The peers of `p`.
    pub fn peers_of(&self, p: ProcessId) -> &[ProcessId] {
        &self.peers[p.index()]
    }

    /// Whether the graph is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.peers.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = queue.pop_front() {
            for &peer in &self.peers[i] {
                if !seen[peer.index()] {
                    seen[peer.index()] = true;
                    count += 1;
                    queue.push_back(peer.index());
                }
            }
        }
        count == self.n()
    }

    /// Graph diameter (longest shortest path), by BFS from every node.
    /// `None` for disconnected graphs.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.n();
        let mut diameter = 0;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(i) = queue.pop_front() {
                for &peer in &self.peers[i] {
                    if dist[peer.index()] == usize::MAX {
                        dist[peer.index()] = dist[i] + 1;
                        queue.push_back(peer.index());
                    }
                }
            }
            let max = dist.iter().copied().max().unwrap_or(0);
            if max == usize::MAX {
                return None;
            }
            diameter = diameter.max(max);
        }
        Some(diameter)
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().map(Vec::len).sum::<usize>() as f64 / self.n() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_regular_is_connected_with_target_degree() {
        let t = Topology::random_regular(40, 6, 3).unwrap();
        assert!(t.is_connected());
        assert!(t.mean_degree() >= 5.0, "mean degree {}", t.mean_degree());
        for i in 0..40 {
            assert!(t.peers_of(ProcessId::new(i)).len() >= 2);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Topology::random_regular(20, 4, 9).unwrap();
        let b = Topology::random_regular(20, 4, 9).unwrap();
        for i in 0..20 {
            assert_eq!(a.peers_of(ProcessId::new(i)), b.peers_of(ProcessId::new(i)));
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(matches!(
            Topology::random_regular(1, 2, 0),
            Err(TopologyError::TooFewNodes(1))
        ));
        assert!(matches!(
            Topology::random_regular(10, 10, 0),
            Err(TopologyError::BadDegree { .. })
        ));
        assert!(matches!(
            Topology::random_regular(10, 1, 0),
            Err(TopologyError::BadDegree { .. })
        ));
    }

    #[test]
    fn full_mesh_diameter_is_one() {
        let t = Topology::full_mesh(8);
        assert_eq!(t.diameter(), Some(1));
        assert!((t.mean_degree() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ring_plus_chords_shrinks_diameter() {
        // A plain ring of 64 has diameter 32; degree-6 chords should cut
        // it well below 10.
        let t = Topology::random_regular(64, 6, 5).unwrap();
        let d = t.diameter().unwrap();
        assert!(d <= 10, "diameter {d}");
    }
}
