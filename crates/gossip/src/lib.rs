//! The peer-to-peer dissemination substrate underneath the round model.
//!
//! Section 2.1 of the paper assumes "a message-passing system with an
//! underlying peer-to-peer dissemination protocol (e.g., a gossip
//! protocol)", and footnote 2 adds the retention property the
//! asynchrony-resilience machinery needs: *messages entering the
//! dissemination layer reach all processes even if the original sender
//! goes to sleep*. The lock-step simulator (`st-sim`) abstracts all of
//! this into "every message sent in round r arrives by the end of round
//! r"; this crate builds the abstracted layer so the assumption can be
//! *checked* rather than assumed:
//!
//! * [`Topology`] — random regular-ish peer graphs with connectivity and
//!   diameter measurement;
//! * [`GossipEngine`] — hop-by-hop push gossip with per-node seen-caches,
//!   relay retention, and node sleep;
//! * dissemination experiments (`exp_gossip`) measuring hops-to-coverage
//!   against `log_fanout(n)` and verifying sender-sleep resilience —
//!   which together justify the round duration `Δ = 3δ`: one network
//!   delay per protocol phase is enough *if* gossip completes within δ,
//!   i.e. if δ is chosen as (gossip hops) × (per-hop delay).
//!
//! # Example
//!
//! ```
//! use st_gossip::{GossipEngine, Topology};
//! use st_types::ProcessId;
//!
//! let topology = Topology::random_regular(50, 6, 7)?;
//! let mut engine = GossipEngine::new(topology);
//! let msg = engine.inject(ProcessId::new(0), 42);
//! engine.step(); // one hop: the message reaches the origin's peers…
//! engine.sleep(ProcessId::new(0)); // …then the origin sleeps (footnote 2)
//! let hops = 1 + engine.run_to_quiescence();
//! assert!(engine.coverage(msg) >= 1.0); // every awake node has it anyway
//! assert!(hops <= 8);
//! # Ok::<(), st_gossip::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod topology;

pub use engine::{GossipEngine, MessageId};
pub use topology::{Topology, TopologyError};
