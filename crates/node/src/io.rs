//! Thread-per-peer socket I/O: the listener/reader side, the per-peer
//! writer threads with reconnect-and-backoff, and the peer liveness
//! board.
//!
//! This is the **only** file in the workspace outside st-bench allowed to
//! read the wall clock (`std::time::Instant`, scoped st-lint D2
//! exemption): socket timeouts, backoff, and liveness ages are inherently
//! wall-clock concerns. Nothing here feeds time back into protocol
//! decisions — the runtime's round barrier is driven purely by `Mark`
//! frames, so determinism of the decided chain never depends on timing.
//!
//! ## Connection model
//!
//! For each ordered pair `(i, j)` node `i` dials node `j`'s listener and
//! uses that stream exclusively for `i → j` traffic, opening with a
//! `Hello{from: i}`. Writers send the node's outbound history — one
//! `(round, bytes)` batch per awake round — strictly in order, and on
//! reconnect **reset to the start of history**: the protocol layer
//! deduplicates whole round-batches by their trailing mark, so re-sending
//! everything is the simplest correct recovery (and what makes
//! kill/restart recovery WAL-free).

use crate::frame::{self, NodeFrame};
use crate::plan::ClusterPlan;
use st_messages::Envelope;
use st_types::ProcessId;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One round's worth of envelopes from one peer, terminated by its mark.
pub type RoundBatch = (ProcessId, u64, Vec<Envelope>);

/// Writer poll interval while idle or withheld.
const IDLE: Duration = Duration::from_millis(1);
/// Reconnect backoff bounds.
const BACKOFF_MIN: Duration = Duration::from_millis(5);
const BACKOFF_MAX: Duration = Duration::from_millis(250);

/// Point-in-time view of one peer link, for diagnostics and the cluster
/// report.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct PeerStat {
    /// Whether the outbound stream is currently connected.
    pub connected: bool,
    /// Completed (re)connect attempts beyond the first.
    pub reconnects: u64,
    /// Batches fully written and flushed on the current connection.
    pub batches_sent: u64,
    /// Milliseconds since the last inbound frame from this peer
    /// (`u64::MAX` = never heard).
    pub heard_ms_ago: u64,
}

struct PeerState {
    connected: AtomicBool,
    reconnects: AtomicU64,
    batches_sent: AtomicU64,
    /// ms since board creation of the last inbound frame; u64::MAX never.
    heard_at_ms: AtomicU64,
}

/// Shared liveness board: writers and readers record link state, the
/// runtime snapshots it for the node's final report.
pub struct Liveness {
    peers: Vec<PeerState>,
    epoch: Instant,
}

impl Liveness {
    /// A board for `n` peers (indexed by process id).
    pub fn new(n: usize) -> Liveness {
        Liveness {
            peers: (0..n)
                .map(|_| PeerState {
                    connected: AtomicBool::new(false),
                    reconnects: AtomicU64::new(0),
                    batches_sent: AtomicU64::new(0),
                    heard_at_ms: AtomicU64::new(u64::MAX),
                })
                .collect(),
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Records an inbound frame from `p`.
    pub fn heard(&self, p: usize) {
        self.peers[p]
            .heard_at_ms
            .store(self.now_ms(), Ordering::Relaxed);
    }

    /// Snapshots every peer's link state.
    pub fn snapshot(&self) -> Vec<PeerStat> {
        let now = self.now_ms();
        self.peers
            .iter()
            .map(|p| PeerStat {
                connected: p.connected.load(Ordering::Relaxed),
                reconnects: p.reconnects.load(Ordering::Relaxed),
                batches_sent: p.batches_sent.load(Ordering::Relaxed),
                heard_ms_ago: match p.heard_at_ms.load(Ordering::Relaxed) {
                    u64::MAX => u64::MAX,
                    at => now.saturating_sub(at),
                },
            })
            .collect()
    }
}

/// The node's outbound history: one immutable `(round, bytes)` batch per
/// completed awake round, shared read-only by every writer thread. The
/// `round` atomic is the sender's current round, consulted by writers for
/// partition holdback.
pub struct Outbound {
    batches: Mutex<Vec<(u64, Arc<Vec<u8>>)>>,
    /// The sender's current round (for `ClusterPlan::withheld`).
    pub round: AtomicU64,
}

impl Outbound {
    /// An empty history at round 0.
    pub fn new() -> Outbound {
        Outbound {
            batches: Mutex::new(Vec::new()),
            round: AtomicU64::new(0),
        }
    }

    /// Appends the batch for `round` (its envelopes plus trailing mark).
    pub fn push(&self, round: u64, bytes: Vec<u8>) {
        self.batches.lock().unwrap().push((round, Arc::new(bytes)));
    }

    /// Number of batches in history.
    pub fn len(&self) -> usize {
        self.batches.lock().unwrap().len()
    }

    /// Whether no batch was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, i: usize) -> Option<(u64, Arc<Vec<u8>>)> {
        self.batches.lock().unwrap().get(i).cloned()
    }
}

impl Default for Outbound {
    fn default() -> Outbound {
        Outbound::new()
    }
}

/// Binds the node's listener, retrying briefly (a restarted node may race
/// lingering sockets from its previous life).
pub fn bind_listener(port: u16) -> std::io::Result<TcpListener> {
    let addr = format!("127.0.0.1:{port}");
    let mut last = None;
    for _ in 0..400 {
        match TcpListener::bind(&addr) {
            Ok(l) => return Ok(l),
            Err(e) => {
                last = Some(e);
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("bind failed")))
}

/// Accept loop: every inbound connection must open with `Hello{from}`;
/// each then gets a reader thread that groups `Env` frames into round
/// batches closed by their trailing `Mark` and forwards them to `inbox`.
/// Batches cut off by a disconnect (no trailing mark) are discarded — the
/// peer's writer re-sends the whole history on reconnect.
pub fn spawn_listener(
    listener: TcpListener,
    inbox: Sender<RoundBatch>,
    board: Arc<Liveness>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let inbox = inbox.clone();
            let board = board.clone();
            thread::spawn(move || read_peer(stream, inbox, board));
        }
    })
}

fn read_peer(mut stream: TcpStream, inbox: Sender<RoundBatch>, board: Arc<Liveness>) {
    let Some(first) = read_frame(&mut stream) else {
        return;
    };
    let Ok(NodeFrame::Hello { from }) = frame::decode_frame(&first) else {
        return; // not one of ours; drop the connection
    };
    let mut pending: Vec<Envelope> = Vec::new();
    while let Some(bytes) = read_frame(&mut stream) {
        board.heard(from.index());
        match frame::decode_frame(&bytes) {
            Ok(NodeFrame::Env(env)) => pending.push(env),
            Ok(NodeFrame::Mark { round }) => {
                let batch = std::mem::take(&mut pending);
                if inbox.send((from, round, batch)).is_err() {
                    return; // runtime finished; stop reading
                }
            }
            Ok(NodeFrame::Hello { .. }) | Err(_) => return, // protocol error
        }
    }
}

/// Reads one full frame (length prefix + that many bytes); `None` on EOF
/// or any transport error.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let n = u32::from_le_bytes(len) as usize;
    // A frame is at most a round's multicast batch; 16 MiB is far beyond
    // any honest frame and bounds a corrupt length prefix.
    if !(2..=16 << 20).contains(&n) {
        return None;
    }
    let mut frame = vec![0u8; 4 + n];
    frame[..4].copy_from_slice(&len);
    stream.read_exact(&mut frame[4..]).ok()?;
    Some(frame)
}

/// Spawns the writer thread for peer `j`: dials `j`'s listener with
/// exponential backoff, opens with `Hello`, then streams the outbound
/// history in order — restarting from the beginning on every reconnect —
/// while honouring partition holdback. `flushed[j]` publishes how many
/// batches are fully flushed on the live connection (the runtime's
/// best-effort "round data is on the wire" signal).
pub fn spawn_writer(
    me: ProcessId,
    j: usize,
    plan: Arc<ClusterPlan>,
    outbound: Arc<Outbound>,
    board: Arc<Liveness>,
    flushed: Arc<Vec<AtomicU64>>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let addr = format!("127.0.0.1:{}", plan.port_of(j));
        let hello = frame::encode_frame(&NodeFrame::Hello { from: me });
        let mut backoff = BACKOFF_MIN;
        let mut first_attempt = true;
        loop {
            let started = Instant::now();
            let Ok(mut stream) = TcpStream::connect(&addr) else {
                // Exponential backoff, reset once attempts stop failing
                // fast (the peer is down rather than briefly busy).
                thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            };
            let _ = stream.set_nodelay(true);
            if !first_attempt {
                board.peers[j].reconnects.fetch_add(1, Ordering::Relaxed);
            }
            first_attempt = false;
            backoff = if started.elapsed() > BACKOFF_MAX {
                BACKOFF_MIN
            } else {
                backoff
            };
            if stream.write_all(&hello).is_err() {
                continue;
            }
            board.peers[j].connected.store(true, Ordering::Relaxed);
            flushed[j].store(0, Ordering::Release);
            let mut cursor = 0usize;
            loop {
                let Some((round, bytes)) = outbound.get(cursor) else {
                    thread::sleep(IDLE);
                    continue;
                };
                let current = outbound.round.load(Ordering::Acquire);
                if plan.withheld(round, me.index(), j, current) {
                    thread::sleep(IDLE);
                    continue;
                }
                if stream
                    .write_all(&bytes)
                    .and_then(|_| stream.flush())
                    .is_err()
                {
                    break;
                }
                cursor += 1;
                board.peers[j]
                    .batches_sent
                    .store(cursor as u64, Ordering::Relaxed);
                flushed[j].store(cursor as u64, Ordering::Release);
            }
            board.peers[j].connected.store(false, Ordering::Relaxed);
            flushed[j].store(0, Ordering::Release);
        }
    })
}
