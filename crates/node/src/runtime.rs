//! The node's main loop: simulator rounds mapped onto wall-clock ticks,
//! with delivery equivalence enforced by a per-peer **mark barrier**.
//!
//! Before executing round `r` the node ingests, for every peer `q`,
//! exactly the round-batches the lockstep simulator would have delivered
//! by the end of round `r − 1` ([`ClusterPlan::required_mark`]): it
//! blocks until the required mark is consumed and never feeds a batch
//! beyond it. Batches are deduplicated wholesale by round (reconnecting
//! writers re-send their full history), so the protocol sees each
//! `(sender, round)` batch exactly once, at the correct round boundary.
//! Within a boundary the `Protocol` contract already tolerates duplicates
//! and reordering — see `Protocol::on_receive_shared`.
//!
//! Pacing: each awake round takes at least `tick_ms`, except when the
//! node is demonstrably behind the cluster (a peer's mark is ahead of
//! it) — then ticks are skipped, which is what makes kill/restart
//! recovery by plain re-execution fast.

use crate::frame::{self, NodeFrame};
use crate::io::{self, Liveness, Outbound, PeerStat, RoundBatch};
use crate::plan::ClusterPlan;
use serde::{Deserialize, Serialize};
use st_core::{DecisionEvent, Protocol, TobConfig, TobProcess};
use st_messages::SharedEnvelope;
use st_types::{Params, ProcessId, Round, TxId};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Barrier poll interval.
const POLL: Duration = Duration::from_millis(1);
/// Barrier poll cap before the node gives up and reports itself stuck
/// (the harness enforces its own global timeout well below this).
const BARRIER_POLL_CAP: u64 = 120_000;
/// Poll cap for the best-effort per-round flush confirmation.
const FLUSH_POLL_CAP: u64 = 500;
/// Poll cap for the end-of-run linger (keeps our history servable while
/// slower peers finish).
const LINGER_POLL_CAP: u64 = 15_000;

/// What a node writes to its `--out` file: the decided chain plus link
/// diagnostics. The harness byte-compares `decisions` (and the tip)
/// against the equivalent simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// This node's id.
    pub node: u32,
    /// Rounds executed (horizon + 1 on a clean run).
    pub rounds_executed: u64,
    /// Every decision event, in emission order.
    pub decisions: Vec<DecisionEvent>,
    /// Final decided tip (block id).
    pub decided_tip: u64,
    /// Per-peer link stats at exit.
    pub peers: Vec<PeerReport>,
}

/// Per-peer link diagnostics in the node report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerReport {
    /// Peer id.
    pub peer: u32,
    /// Link stats snapshot.
    pub stat: PeerStat,
    /// Highest mark seen from this peer.
    pub last_mark: Option<u64>,
}

/// Per-peer inbound state: round-keyed batches plus consumption cursor.
/// A `BTreeMap` keyed by round makes ingestion robust to the brief
/// reconnect window where an old and a new connection interleave — order
/// is recovered by key, duplicates collapse (batch content is
/// deterministic, so overwriting is the identity).
#[derive(Default)]
struct PeerInbox {
    batches: BTreeMap<u64, Vec<st_messages::Envelope>>,
    consumed: Option<u64>,
    max_mark: Option<u64>,
}

fn drain(inbox: &Receiver<RoundBatch>, peers: &mut [PeerInbox]) -> bool {
    loop {
        match inbox.try_recv() {
            Ok((from, round, batch)) => {
                let Some(p) = peers.get_mut(from.index()) else {
                    continue;
                };
                p.max_mark = p.max_mark.max(Some(round));
                if p.consumed.is_some_and(|c| round <= c) {
                    continue; // stale re-send of an already-consumed round
                }
                p.batches.insert(round, batch);
            }
            Err(TryRecvError::Empty) => return true,
            Err(TryRecvError::Disconnected) => return false,
        }
    }
}

/// Runs `P` as node `id` of `plan` to completion. Blocks for the whole
/// run; spawns the listener, reader, and writer threads internally.
pub fn run_node<P: Protocol>(plan: &ClusterPlan, id: ProcessId) -> Result<NodeOutcome, String> {
    plan.validate()?;
    let me = id.index();
    let n = plan.n;
    let params = Params::builder(n)
        .expiration(plan.eta)
        .build()
        .map_err(|e| format!("bad params: {e:?}"))?;
    let mut proc = P::new(id, TobConfig::new(params, plan.seed));

    let board = Arc::new(Liveness::new(n));
    let (tx, inbox) = std::sync::mpsc::channel::<RoundBatch>();
    let listener =
        io::bind_listener(plan.port_of(me)).map_err(|e| format!("bind node {me}: {e}"))?;
    io::spawn_listener(listener, tx, board.clone());
    let outbound = Arc::new(Outbound::new());
    let flushed: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let plan_arc = Arc::new(plan.clone());
    for j in 0..n {
        if j != me {
            io::spawn_writer(
                id,
                j,
                plan_arc.clone(),
                outbound.clone(),
                board.clone(),
                flushed.clone(),
            );
        }
    }

    let mut peers: Vec<PeerInbox> = (0..n).map(|_| PeerInbox::default()).collect();
    let mut decisions: Vec<DecisionEvent> = Vec::new();
    let mut rounds_executed = 0u64;
    let stdout = std::io::stdout();

    for r in 0..=plan.horizon {
        outbound.round.store(r, Ordering::Release);
        if !plan.is_awake(me, r) {
            // Logically asleep: no barrier, no send, no mark. Report the
            // round immediately so the harness sees progress.
            let mut out = stdout.lock();
            let _ = writeln!(out, "ROUND {r}");
            let _ = out.flush();
            rounds_executed += 1;
            continue;
        }

        // Mark barrier: consume exactly what the simulator would have
        // delivered by the end of round r − 1, peer by peer.
        for q in 0..n {
            if q == me {
                continue;
            }
            let Some(required) = plan.required_mark(me, q, r) else {
                continue;
            };
            let mut polls = 0u64;
            loop {
                if !drain(&inbox, &mut peers) {
                    return Err("listener channel closed".into());
                }
                let p = &mut peers[q];
                loop {
                    match p.batches.first_key_value() {
                        Some((&br, _)) if p.consumed.is_some_and(|c| br <= c) => {
                            p.batches.pop_first();
                        }
                        Some((&br, _)) if br <= required => {
                            let (br, batch) = p.batches.pop_first().unwrap();
                            for env in batch {
                                proc.on_receive_shared(&SharedEnvelope::new(env));
                            }
                            p.consumed = Some(br);
                        }
                        _ => break,
                    }
                }
                if p.consumed >= Some(required) {
                    break;
                }
                polls += 1;
                if polls > BARRIER_POLL_CAP {
                    return Err(format!(
                        "node {me} stuck at round {r}: waiting for mark {required} from peer {q} \
                         (have {:?})",
                        peers[q].consumed
                    ));
                }
                thread::sleep(POLL);
            }
        }

        // Workload: the simulator's tx counter, derived from the plan.
        if let Some(txid) = plan.tx_for_round(r) {
            proc.submit_tx(TxId::new(txid));
        }

        // Send phase + decision readout (the simulator drains decisions
        // right after the send phase; ingestion above corresponds to its
        // end-of-previous-round receive phase, so the drained set and
        // order coincide).
        let envs = proc.step_send(Round::new(r));
        decisions.extend(proc.drain_decisions());
        let mut bytes = Vec::new();
        for env in &envs {
            bytes.extend_from_slice(&frame::encode_frame(&NodeFrame::Env(env.clone())));
        }
        bytes.extend_from_slice(&frame::encode_frame(&NodeFrame::Mark { round: r }));
        outbound.push(r, bytes);

        // Best-effort: wait for connected writers to flush this round
        // before reporting it, so a kill right after the report rarely
        // loses the round's frames (and if it does, reconnect re-sends).
        let target = outbound.len() as u64;
        for _ in 0..FLUSH_POLL_CAP {
            let stats = board.snapshot();
            let lagging = (0..n).any(|j| {
                j != me && stats[j].connected && flushed[j].load(Ordering::Acquire) < target
            });
            if !lagging {
                break;
            }
            thread::sleep(POLL);
        }

        let mut out = stdout.lock();
        let _ = writeln!(out, "ROUND {r}");
        let _ = out.flush();
        drop(out);
        rounds_executed += 1;

        // Pacing: a round costs one tick unless we are provably behind
        // the cluster (replay after restart, or waking from sleep).
        let behind = peers.iter().any(|p| p.max_mark.is_some_and(|m| m > r + 1));
        if !behind && plan.tick_ms > 0 {
            thread::sleep(Duration::from_millis(plan.tick_ms));
        }
    }

    // Linger: keep our writer threads (and their full history) alive
    // until every peer has reported its own final awake round — a peer's
    // final mark implies it completed its run and no longer needs to pull
    // replay history from us. Bounded so a peer that died for good cannot
    // hold us hostage.
    for _ in 0..LINGER_POLL_CAP {
        drain(&inbox, &mut peers);
        let all_done = (0..n).all(|q| {
            q == me
                || match plan.final_awake_round(q) {
                    None => true,
                    Some(fin) => peers[q].max_mark >= Some(fin),
                }
        });
        if all_done {
            break;
        }
        thread::sleep(POLL);
    }

    let outcome = NodeOutcome {
        node: id.as_u32(),
        rounds_executed,
        decisions,
        decided_tip: proc.decided_tip().as_u64(),
        peers: (0..n)
            .filter(|&j| j != me)
            .map(|j| PeerReport {
                peer: j as u32,
                stat: board.snapshot()[j].clone(),
                last_mark: peers[j].max_mark,
            })
            .collect(),
    };
    Ok(outcome)
}

/// The `stob serve` entrypoint: loads the plan, runs a [`TobProcess`]
/// node (lingering at the end so peers can finish pulling history), then
/// writes the [`NodeOutcome`] JSON to `out_path`.
pub fn serve(plan_path: &str, id: u32, out_path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(plan_path)
        .map_err(|e| format!("cannot read plan {plan_path}: {e}"))?;
    let plan = ClusterPlan::from_json(&json)?;
    if id as usize >= plan.n {
        return Err(format!("node id {id} out of range (n = {})", plan.n));
    }
    let outcome = run_node::<TobProcess>(&plan, ProcessId::new(id))?;
    let rendered = serde_json::to_string(&outcome).map_err(|e| format!("render outcome: {e:?}"))?;
    std::fs::write(out_path, rendered).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(())
}
