//! The scripted cluster plan: one JSON document, shared verbatim by every
//! node process and the harness, that fixes the awake matrix, partition
//! windows, kill windows, transaction cadence, and pacing — everything
//! needed to (a) run the cluster and (b) build the byte-equivalent
//! `Schedule`/`Timeline` simulation to cross-check it.
//!
//! All delivery-equivalence arithmetic lives here (required marks,
//! sender-side holdback, the tx counter), so the runtime and the harness
//! cannot drift apart: both ask the same plan the same questions.

use serde::{Deserialize, Serialize};
use st_types::{ProcessId, Round};

/// A partition overlay: for rounds `start..=end`, only processes in the
/// same group exchange messages. Processes listed in no group form the
/// residual group (exactly the simulator's `Partition::group_map`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First partitioned round (must be ≥ 1).
    pub start: u64,
    /// Last partitioned round (inclusive).
    pub end: u64,
    /// Explicit groups; unlisted processes share the residual group 0.
    pub groups: Vec<Vec<u32>>,
}

/// A kill fault: the harness SIGKILLs `node` once it has completed round
/// `start − 1` and restarts it near the end of the window. The window
/// `start..=end` must be marked asleep for `node` in the awake matrix —
/// physically down and logically asleep coincide, which is what makes the
/// simulator cross-check meaningful.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KillWindow {
    /// The node to kill.
    pub node: u32,
    /// First down round (must be ≥ 1).
    pub start: u64,
    /// Last down round (inclusive).
    pub end: u64,
}

/// The full scripted run: topology, faults, pacing. Serialized to
/// `plan.json`; every `stob serve` process and the harness load the same
/// file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterPlan {
    /// Number of nodes.
    pub n: usize,
    /// System seed (key directory, VRFs) — must match the simulation.
    pub seed: u64,
    /// Message expiration period η.
    pub eta: u64,
    /// Last round executed (rounds `0..=horizon`).
    pub horizon: u64,
    /// Submit one tx to every awake node each `txs_every` rounds
    /// (0 = none); mirrors the simulator's workload injection.
    pub txs_every: u64,
    /// Minimum wall-clock duration of one round, in milliseconds.
    pub tick_ms: u64,
    /// Node `i` listens on `base_port + i`.
    pub base_port: u16,
    /// Round-major awake matrix: `awake[r][p]`. Length `horizon + 1`.
    pub awake: Vec<Vec<bool>>,
    /// Partition overlays (non-overlapping).
    pub partitions: Vec<PartitionWindow>,
    /// Kill faults (windows must be asleep in `awake`).
    pub kills: Vec<KillWindow>,
}

impl ClusterPlan {
    /// A fully-awake plan with no faults; callers carve sleep windows and
    /// faults out of it.
    pub fn full(n: usize, horizon: u64) -> ClusterPlan {
        ClusterPlan {
            n,
            seed: 7,
            eta: 4,
            horizon,
            txs_every: 0,
            tick_ms: 10,
            base_port: 39700,
            awake: vec![vec![true; n]; horizon as usize + 1],
            partitions: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// Marks `node` asleep for rounds `start..=end`.
    pub fn sleep(&mut self, node: u32, start: u64, end: u64) {
        for r in start..=end.min(self.horizon) {
            self.awake[r as usize][node as usize] = false;
        }
    }

    /// Checks internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("plan needs at least one node".into());
        }
        if self.awake.len() != self.horizon as usize + 1 {
            return Err(format!(
                "awake matrix has {} rows, want horizon+1 = {}",
                self.awake.len(),
                self.horizon + 1
            ));
        }
        if self.awake.iter().any(|row| row.len() != self.n) {
            return Err("ragged awake matrix row".into());
        }
        for w in &self.partitions {
            if w.start == 0 || w.end < w.start || w.end > self.horizon {
                return Err(format!("bad partition window [{}, {}]", w.start, w.end));
            }
            if w.groups.iter().flatten().any(|&p| p as usize >= self.n) {
                return Err("partition group member out of range".into());
            }
        }
        for k in &self.kills {
            if k.node as usize >= self.n {
                return Err("kill target out of range".into());
            }
            if k.start == 0 || k.end < k.start || k.end > self.horizon {
                return Err(format!("bad kill window [{}, {}]", k.start, k.end));
            }
            for r in k.start..=k.end {
                if self.awake[r as usize][k.node as usize] {
                    return Err(format!(
                        "node {} is awake at round {r} inside its kill window",
                        k.node
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether `p` is awake at round `r` (rounds past the horizon clamp
    /// to the last row, exactly like `Schedule::is_awake`).
    pub fn is_awake(&self, p: usize, r: u64) -> bool {
        self.awake[r.min(self.horizon) as usize][p]
    }

    /// The partition window covering round `r`, if any.
    fn partition_at(&self, r: u64) -> Option<&PartitionWindow> {
        self.partitions.iter().find(|w| w.start <= r && r <= w.end)
    }

    /// Whether `a` and `b` can exchange messages at round `r` (same
    /// partition group, with unlisted processes in the residual group).
    pub fn same_group(&self, a: usize, b: usize, r: u64) -> bool {
        match self.partition_at(r) {
            None => true,
            Some(w) => {
                let group_of = |p: usize| {
                    w.groups
                        .iter()
                        .position(|g| g.contains(&(p as u32)))
                        .map(|i| i + 1)
                        .unwrap_or(0)
                };
                group_of(a) == group_of(b)
            }
        }
    }

    /// The round mark node `me` must have consumed from peer `q` before
    /// executing round `r` — i.e. the latest send-round of `q` the
    /// simulator would have delivered to `me` by the end of round `r − 1`.
    ///
    /// A message sent by `q` at round `s` is sim-delivered at the first
    /// round `t ≥ s` with `me` awake at `t + 1` and `same_group(me, q, t)`.
    /// So with `t* = max { t ≤ r−1 : same_group(me,q,t) ∧ awake(me,t+1) }`,
    /// the required mark is the last awake round of `q` at or before `t*`.
    /// `None` means nothing is owed yet.
    pub fn required_mark(&self, me: usize, q: usize, r: u64) -> Option<u64> {
        let t_star = (0..r)
            .rev()
            .find(|&t| self.same_group(me, q, t) && self.is_awake(me, t + 1))?;
        (0..=t_star).rev().find(|&s| self.is_awake(q, s))
    }

    /// Sender-side partition enforcement: whether the batch node `me`
    /// produced at round `s` must still be withheld from peer `j`, given
    /// that `me` is currently executing `current_round`. True while the
    /// partition window covering `s` separates the pair and has not yet
    /// elapsed from the sender's point of view — the socket-layer twin of
    /// the simulator's queue-until-heal rule.
    pub fn withheld(&self, s: u64, me: usize, j: usize, current_round: u64) -> bool {
        match self.partition_at(s) {
            Some(w) => !self.same_group(me, j, s) && current_round <= w.end,
            None => false,
        }
    }

    /// The simulator's tx workload, replicated as a pure function of the
    /// plan: at round `r > 0` with `r % txs_every == 0` and at least one
    /// awake process, tx number `count(qualifying rounds ≤ r)` is
    /// submitted to every awake process. Returns that tx id when round
    /// `r` qualifies.
    pub fn tx_for_round(&self, r: u64) -> Option<u64> {
        let k = self.txs_every;
        let qualifies = |r: u64| {
            k > 0 && r > 0 && r.is_multiple_of(k) && (0..self.n).any(|p| self.is_awake(p, r))
        };
        if !qualifies(r) {
            return None;
        }
        Some((1..=r).filter(|&x| qualifies(x)).count() as u64)
    }

    /// The TCP port node `p` listens on.
    pub fn port_of(&self, p: usize) -> u16 {
        self.base_port.wrapping_add(p as u16)
    }

    /// The last awake round of `p` (its final `Mark`), if it is ever
    /// awake.
    pub fn final_awake_round(&self, p: usize) -> Option<u64> {
        (0..=self.horizon).rev().find(|&r| self.is_awake(p, r))
    }

    /// Serializes the plan to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a plan from JSON and validates it.
    pub fn from_json(json: &str) -> Result<ClusterPlan, String> {
        let plan: ClusterPlan =
            serde_json::from_str(json).map_err(|e| format!("plan parse error: {e:?}"))?;
        plan.validate()?;
        Ok(plan)
    }

    /// The awake matrix as the simulator's `Schedule::custom` input.
    pub fn schedule_matrix(&self) -> Vec<Vec<bool>> {
        self.awake.clone()
    }

    /// The partition windows as `(start, len, groups)` triples for
    /// `Timeline::partition`.
    pub fn timeline_partitions(&self) -> Vec<(Round, u64, Vec<Vec<ProcessId>>)> {
        self.partitions
            .iter()
            .map(|w| {
                let groups = w
                    .groups
                    .iter()
                    .map(|g| g.iter().map(|&p| ProcessId::new(p)).collect())
                    .collect();
                (Round::new(w.start), w.end - w.start + 1, groups)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ClusterPlan {
        let mut p = ClusterPlan::full(4, 20);
        p.partitions.push(PartitionWindow {
            start: 8,
            end: 10,
            groups: vec![vec![0, 1]],
        });
        p.sleep(3, 4, 6);
        p.kills.push(KillWindow {
            node: 3,
            start: 4,
            end: 6,
        });
        p
    }

    #[test]
    fn validates_and_round_trips() {
        let p = plan();
        p.validate().expect("plan is consistent");
        let back = ClusterPlan::from_json(&p.to_json()).expect("round trip");
        assert_eq!(back.awake, p.awake);
        assert_eq!(back.partitions.len(), 1);
        assert_eq!(back.kills.len(), 1);
    }

    #[test]
    fn rejects_awake_kill_window() {
        let mut p = ClusterPlan::full(3, 10);
        p.kills.push(KillWindow {
            node: 1,
            start: 3,
            end: 5,
        });
        assert!(p.validate().is_err(), "kill window must be asleep");
    }

    #[test]
    fn residual_group_semantics_match_group_map() {
        let p = plan();
        // 0 and 1 share the explicit group; 2 and 3 share the residual.
        assert!(p.same_group(0, 1, 9));
        assert!(p.same_group(2, 3, 9));
        assert!(!p.same_group(0, 2, 9));
        assert!(p.same_group(0, 2, 7), "outside the window all reachable");
    }

    #[test]
    fn required_mark_tracks_delivery_rounds() {
        let p = plan();
        // Round 0 owes nothing.
        assert_eq!(p.required_mark(0, 1, 0), None);
        // Fully synchronous prefix: round r owes the peer's round r−1.
        assert_eq!(p.required_mark(0, 1, 3), Some(2));
        // Node 3 sleeps rounds 4..=6: at round 6 its latest owed mark is
        // its last awake round, 3.
        assert_eq!(p.required_mark(0, 3, 6), Some(3));
        // Wake-up backlog: node 3 at its wake round 7 owes marks up to 6.
        assert_eq!(p.required_mark(3, 0, 7), Some(6));
        // Cross-cut pairs freeze at the pre-partition round for the whole
        // window [8,10]...
        assert_eq!(p.required_mark(0, 2, 9), Some(7));
        assert_eq!(p.required_mark(0, 2, 11), Some(7));
        // ...and catch up at the first post-heal round boundary.
        assert_eq!(p.required_mark(0, 2, 12), Some(11));
        // Same-group pairs never stall.
        assert_eq!(p.required_mark(0, 1, 9), Some(8));
    }

    #[test]
    fn required_mark_ignores_backlog_while_waking_inside_partition() {
        // A node that wakes *inside* a partition window must not ingest
        // pre-partition backlog from a cross-group peer until heal: the
        // simulator only delivers queued messages once sender and
        // receiver share a group again.
        let mut p = ClusterPlan::full(4, 20);
        p.partitions.push(PartitionWindow {
            start: 8,
            end: 10,
            groups: vec![vec![0, 1]],
        });
        p.sleep(2, 5, 8); // node 2 wakes at round 9, inside the window
        p.validate().unwrap();
        // At wake round 9, node 2 owes node 0 only what was delivered
        // while both were awake and same-group (through round 3) — not
        // the rounds 4..=8 backlog, which stays queued until heal...
        assert_eq!(p.required_mark(2, 0, 9), Some(3));
        // ...but owes node 3 (residual group, same side) the full backlog.
        assert_eq!(p.required_mark(2, 3, 9), Some(8));
        // After heal the cross-group backlog arrives.
        assert_eq!(p.required_mark(2, 0, 12), Some(11));
    }

    #[test]
    fn withheld_releases_when_sender_passes_the_window() {
        let p = plan();
        assert!(p.withheld(8, 0, 2, 9), "cross-group batch inside window");
        assert!(p.withheld(9, 0, 2, 10), "still inside");
        assert!(!p.withheld(8, 0, 1, 9), "same-group batch flows");
        assert!(!p.withheld(7, 0, 2, 9), "pre-window batch flows");
        assert!(!p.withheld(8, 0, 2, 11), "released once sender passes end");
    }

    #[test]
    fn tx_counter_is_a_pure_function_of_the_plan() {
        let mut p = ClusterPlan::full(3, 12);
        p.txs_every = 4;
        assert_eq!(p.tx_for_round(0), None);
        assert_eq!(p.tx_for_round(3), None);
        assert_eq!(p.tx_for_round(4), Some(1));
        assert_eq!(p.tx_for_round(8), Some(2));
        assert_eq!(p.tx_for_round(12), Some(3));
    }
}
