//! Multi-process cluster harness: spawns one OS process per node, injects
//! the plan's kill faults by killing and restarting real processes, and
//! collects every node's [`NodeOutcome`] for the simulator cross-check.
//!
//! Sleep and partition faults are enforced by the nodes themselves (the
//! awake matrix and the writer-side holdback both live in the shared
//! [`ClusterPlan`]); kill faults are the harness's job because only it can
//! destroy a process. Progress is observed through the `ROUND r` lines
//! each node prints after completing a round; a kill window fires once its
//! victim has completed `start − 1`, and the victim is restarted once
//! every other node has passed the window's end (with a stall fallback for
//! the case where survivors block on history lost with the victim —
//! restart-and-replay is what unblocks them).
//!
//! No wall clock is read here (st-lint D2 holds for this file): timeouts
//! and stall detection are poll counters over `thread::sleep`.

use crate::plan::ClusterPlan;
use crate::runtime::NodeOutcome;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Polls of global silence before a pending restart fires early (covers
/// history lost with the victim: survivors stall until it replays).
const STALL_POLLS: u64 = 400;

/// How to run a cluster.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// The scenario: schedule, faults, workload, ports.
    pub plan: ClusterPlan,
    /// Argv prefix for a node process (e.g. `["./stob", "serve"]`); the
    /// harness appends `--plan`, `--id`, and `--out` arguments.
    pub exec: Vec<String>,
    /// Directory for the plan file, per-node outcome files, and stderr
    /// logs. Created if absent.
    pub dir: PathBuf,
    /// Harness poll interval in milliseconds.
    pub poll_ms: u64,
    /// Give up (kill everything) after this many polls.
    pub timeout_polls: u64,
}

/// One node's lifecycle summary.
#[derive(Clone, Debug)]
pub struct NodeRun {
    /// Node id.
    pub node: u32,
    /// Times the harness killed and restarted this node.
    pub restarts: u64,
    /// Exit code of the final process run (`None` if killed by signal).
    pub exit_code: Option<i32>,
    /// The node's report, if its final run completed and wrote one.
    pub outcome: Option<NodeOutcome>,
}

/// What a cluster run produced.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Per-node lifecycle and report.
    pub nodes: Vec<NodeRun>,
    /// Whether the harness hit its global timeout and killed the cluster.
    pub timed_out: bool,
    /// Polls elapsed (multiply by `poll_ms` for wall-clock milliseconds).
    pub polls: u64,
}

/// Progress observed from one node's stdout, shared with reader threads.
struct Progress {
    /// Highest completed round + 1 (0 = nothing yet); monotonic across
    /// restarts, so kill/restart triggers see pre-kill progress.
    completed: AtomicU64,
    /// Bumped on every `ROUND` line, including replay after a restart —
    /// this is what stall detection watches.
    ticks: AtomicU64,
}

struct NodeProc {
    child: Child,
    exit_code: Option<i32>,
    done: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum KillState {
    Pending,
    Down,
    Done,
}

fn spawn_node(
    opts: &ClusterOptions,
    plan_path: &std::path::Path,
    i: usize,
    progress: &Arc<Progress>,
) -> Result<Child, String> {
    let out_path = opts.dir.join(format!("node_{i}.json"));
    let err_path = opts.dir.join(format!("node_{i}.stderr.log"));
    let err_file = std::fs::File::options()
        .create(true)
        .append(true)
        .open(&err_path)
        .map_err(|e| format!("open {}: {e}", err_path.display()))?;
    let mut cmd = Command::new(&opts.exec[0]);
    cmd.args(&opts.exec[1..])
        .arg("--plan")
        .arg(plan_path)
        .arg("--id")
        .arg(i.to_string())
        .arg("--out")
        .arg(&out_path)
        .stdout(Stdio::piped())
        .stderr(err_file)
        .stdin(Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn node {i} ({}): {e}", opts.exec[0]))?;
    let stdout = child.stdout.take().ok_or("no stdout handle")?;
    let progress = progress.clone();
    thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if let Some(r) = line
                .strip_prefix("ROUND ")
                .and_then(|s| s.parse::<u64>().ok())
            {
                progress.completed.fetch_max(r + 1, Ordering::Relaxed);
                progress.ticks.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    Ok(child)
}

/// Runs the cluster to completion: spawns all nodes, drives the kill
/// schedule, and collects each node's outcome file.
pub fn run_cluster(opts: &ClusterOptions) -> Result<ClusterOutcome, String> {
    opts.plan.validate()?;
    if opts.exec.is_empty() {
        return Err("exec must name a program".into());
    }
    std::fs::create_dir_all(&opts.dir).map_err(|e| format!("mkdir {}: {e}", opts.dir.display()))?;
    let plan_path = opts.dir.join("plan.json");
    std::fs::write(&plan_path, opts.plan.to_json()).map_err(|e| format!("write plan: {e}"))?;

    let n = opts.plan.n;
    let progress: Vec<Arc<Progress>> = (0..n)
        .map(|_| {
            Arc::new(Progress {
                completed: AtomicU64::new(0),
                ticks: AtomicU64::new(0),
            })
        })
        .collect();
    let mut procs: Vec<NodeProc> = Vec::with_capacity(n);
    for i in 0..n {
        procs.push(NodeProc {
            child: spawn_node(opts, &plan_path, i, &progress[i])?,
            exit_code: None,
            done: false,
        });
    }
    let mut restarts = vec![0u64; n];
    let mut kill_states: Vec<KillState> = vec![KillState::Pending; opts.plan.kills.len()];

    let mut polls = 0u64;
    let mut timed_out = false;
    let mut last_ticks = 0u64;
    let mut quiet_polls = 0u64;
    loop {
        // Stall detector: total ROUND lines across the cluster.
        let total_ticks: u64 = progress
            .iter()
            .map(|p| p.ticks.load(Ordering::Relaxed))
            .sum();
        if total_ticks == last_ticks {
            quiet_polls += 1;
        } else {
            quiet_polls = 0;
            last_ticks = total_ticks;
        }

        // Drive the kill schedule.
        for (w, win) in opts.plan.kills.iter().enumerate() {
            let k = win.node as usize;
            match kill_states[w] {
                KillState::Pending => {
                    if procs[k].done {
                        // Victim already finished; killing and replaying a
                        // deterministic node reproduces the same outcome,
                        // so the window degenerates to a no-op.
                        kill_states[w] = KillState::Done;
                    } else if progress[k].completed.load(Ordering::Relaxed) >= win.start {
                        let _ = procs[k].child.kill();
                        let _ = procs[k].child.wait();
                        kill_states[w] = KillState::Down;
                    }
                }
                KillState::Down => {
                    let others_past = (0..n)
                        .all(|i| i == k || progress[i].completed.load(Ordering::Relaxed) > win.end);
                    // Survivors can stall before passing the window if
                    // frames they still need died with the victim; replay
                    // after restart is what feeds them, so restart early.
                    if others_past || quiet_polls >= STALL_POLLS {
                        procs[k].child = spawn_node(opts, &plan_path, k, &progress[k])?;
                        procs[k].exit_code = None;
                        procs[k].done = false;
                        restarts[k] += 1;
                        quiet_polls = 0;
                        kill_states[w] = KillState::Done;
                    }
                }
                KillState::Done => {}
            }
        }

        // Reap finished children (skip nodes currently held down).
        for (i, p) in procs.iter_mut().enumerate() {
            let down = opts
                .plan
                .kills
                .iter()
                .zip(&kill_states)
                .any(|(win, st)| win.node as usize == i && *st == KillState::Down);
            if p.done || down {
                continue;
            }
            if let Ok(Some(status)) = p.child.try_wait() {
                p.exit_code = status.code();
                p.done = true;
            }
        }

        let all_done = procs.iter().enumerate().all(|(i, p)| {
            p.done
                && !opts
                    .plan
                    .kills
                    .iter()
                    .zip(&kill_states)
                    .any(|(win, st)| win.node as usize == i && *st != KillState::Done)
        });
        if all_done {
            break;
        }
        polls += 1;
        if polls >= opts.timeout_polls {
            timed_out = true;
            for p in &mut procs {
                if !p.done {
                    let _ = p.child.kill();
                    let _ = p.child.wait();
                }
            }
            break;
        }
        thread::sleep(Duration::from_millis(opts.poll_ms));
    }

    let nodes = (0..n)
        .map(|i| {
            let out_path = opts.dir.join(format!("node_{i}.json"));
            let outcome = std::fs::read_to_string(&out_path)
                .ok()
                .and_then(|s| serde_json::from_str::<NodeOutcome>(&s).ok());
            NodeRun {
                node: i as u32,
                restarts: restarts[i],
                exit_code: procs[i].exit_code,
                outcome,
            }
        })
        .collect();
    Ok(ClusterOutcome {
        nodes,
        timed_out,
        polls,
    })
}
