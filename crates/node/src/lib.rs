//! A deployable socket-based node runtime for the sleepy TOB protocol.
//!
//! Every line of protocol code in this workspace is a deterministic,
//! I/O-free state machine behind the [`st_core::Protocol`] seam; until
//! this crate it had only ever been driven by the lockstep simulator.
//! `st-node` is the second runtime: a standalone process (`stob serve`)
//! that runs any `Protocol` impl over real TCP sockets using
//! thread-per-peer `std::net` I/O — no async runtime, std only — plus a
//! local multi-process cluster harness (`stob cluster`) that spawns N
//! node processes, injects sleep / kill / partition faults at the socket
//! layer on a scripted timeline, and collects each node's decided chain.
//!
//! # Equivalence by construction
//!
//! The node maps simulator rounds onto wall-clock ticks and reproduces
//! the simulator's delivery semantics exactly, so a cluster run and a
//! [`Simulation`](../st_sim/index.html) run over the equivalent
//! `Schedule`/`Timeline` decide **byte-identical** chains:
//!
//! * **Round marks.** Each node ends every awake round `s` with a `Mark`
//!   control frame after that round's envelopes. Before executing round
//!   `r`, a node ingests, per peer, exactly the batches the simulator
//!   would have delivered by the end of round `r − 1` — no fewer (it
//!   blocks on the required mark) and no more (ingestion never passes
//!   it).
//! * **Socket-layer partitions.** A sender withholds a round-`s` batch
//!   from a cross-group peer while the partition window covering `s` is
//!   still active, releasing it when its own round passes the window —
//!   matching the simulator's queue-until-heal delivery.
//! * **Kill/restart.** The protocol is deterministic and peers re-send
//!   their full outbound history on reconnect, so a killed node recovers
//!   by plain re-execution from round 0 — no WAL — and regenerates its
//!   own past sends byte-identically.
//!
//! The cluster harness byte-compares every node's serialized decision log
//! against the simulator's, and `stob cluster` exits non-zero on any
//! divergence — the acceptance gate wired into CI.
//!
//! Layering: depends on `st-types`/`st-messages`/`st-core` only; nothing
//! below the bench/facade layer may depend on it (enforced by st-lint's
//! L1 rule). All of the crate is wallclock-free except [`io`], which has
//! a scoped st-lint D2 exemption for socket timeouts and backoff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod io;
pub mod plan;
pub mod runtime;

pub use cluster::{run_cluster, ClusterOptions, ClusterOutcome, NodeRun};
pub use frame::NodeFrame;
pub use plan::{ClusterPlan, KillWindow, PartitionWindow};
pub use runtime::{run_node, serve, NodeOutcome, PeerReport};
