//! Node-to-node control frames, sharing the outer wire layout of
//! [`st_messages::wire`] (`[len u32 LE][version u8][kind u8][body]`) with
//! a disjoint kind namespace:
//!
//! | kind   | name  | body                                   |
//! |--------|-------|----------------------------------------|
//! | `0x10` | Hello | `from: u32` — sent once per connection |
//! | `0x11` | Env   | a nested envelope frame (`0x04`)       |
//! | `0x12` | Mark  | `round: u64` — ends a round's batch    |
//!
//! A peer's stream is `Hello (Env* Mark)*`: every awake round produces
//! its envelopes followed by a trailing `Mark`, which is what the
//! receiver's round barrier waits on (see [`crate::runtime`]).

use st_messages::wire::{self, ByteReader, WireError};
use st_messages::Envelope;
use st_types::ProcessId;

/// Frame kind: connection preamble identifying the sender.
pub const KIND_HELLO: u8 = 0x10;
/// Frame kind: one protocol envelope, nested as a full envelope frame.
pub const KIND_ENV: u8 = 0x11;
/// Frame kind: end-of-round marker.
pub const KIND_MARK: u8 = 0x12;

/// A decoded control frame.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeFrame {
    /// Connection preamble: the peer's process id.
    Hello {
        /// The connecting node.
        from: ProcessId,
    },
    /// One protocol envelope of the current round's batch.
    Env(Envelope),
    /// End of the sender's round `round`.
    Mark {
        /// The completed round.
        round: u64,
    },
}

/// Encodes a control frame.
pub fn encode_frame(f: &NodeFrame) -> Vec<u8> {
    match f {
        NodeFrame::Hello { from } => wire::frame(KIND_HELLO, &from.as_u32().to_le_bytes()),
        NodeFrame::Env(env) => wire::frame(KIND_ENV, &wire::encode_envelope(env)),
        NodeFrame::Mark { round } => wire::frame(KIND_MARK, &round.to_le_bytes()),
    }
}

/// Decodes a control frame from one full frame's bytes (length prefix
/// included).
pub fn decode_frame(bytes: &[u8]) -> Result<NodeFrame, WireError> {
    let (kind, body) = wire::split_frame(bytes)?;
    match kind {
        KIND_HELLO => {
            let mut r = ByteReader::new(body);
            let from = ProcessId::new(r.u32()?);
            r.done()?;
            Ok(NodeFrame::Hello { from })
        }
        KIND_ENV => Ok(NodeFrame::Env(wire::decode_envelope(body)?)),
        KIND_MARK => {
            let mut r = ByteReader::new(body);
            let round = r.u64()?;
            r.done()?;
            Ok(NodeFrame::Mark { round })
        }
        other => Err(WireError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_crypto::Keypair;
    use st_messages::{Payload, Vote};
    use st_types::{BlockId, Round};

    #[test]
    fn control_frames_round_trip() {
        let kp = Keypair::derive(ProcessId::new(2), 7);
        let env = Envelope::sign(
            &kp,
            Payload::Vote(Vote::new(ProcessId::new(2), Round::new(5), BlockId::new(9))),
        );
        for f in [
            NodeFrame::Hello {
                from: ProcessId::new(3),
            },
            NodeFrame::Env(env),
            NodeFrame::Mark { round: 41 },
        ] {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes), Ok(f));
            // Re-encode is byte-identical, like every other frame type.
            assert_eq!(encode_frame(&decode_frame(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn protocol_kinds_are_rejected_at_the_control_layer() {
        let vote = Vote::new(ProcessId::new(0), Round::new(1), BlockId::new(2));
        let bytes = wire::encode_vote(&vote);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::BadKind(wire::KIND_VOTE))
        );
    }
}
