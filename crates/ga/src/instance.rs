//! A standalone extended-graded-agreement instance (Figure 3).
//!
//! The protocol crate drives graded agreement through its long-lived vote
//! store, but Lemma 1's properties are stated about a *one-shot* object:
//! an instance initialised with a set `M₀` of earlier votes, receiving
//! fresh round-`r` votes, and producing graded outputs. [`GaInstance`]
//! packages exactly that for direct testing (experiment G1) and for users
//! who want the primitive without the full TOB protocol.

use crate::{tally, GaOutput, Thresholds};
use st_blocktree::BlockTree;
use st_messages::{Vote, VoteStore};
use st_types::Round;

/// A one-shot extended graded-agreement instance for round `round`,
/// initialised with an `M₀` set of votes from rounds `< round` (Figure 3).
///
/// With an empty `M₀` this is exactly the vanilla GA of Figure 2.
///
/// # Example
///
/// ```
/// use st_blocktree::{Block, BlockTree};
/// use st_ga::{GaInstance, Thresholds};
/// use st_messages::Vote;
/// use st_types::{BlockId, Grade, ProcessId, Round, View};
///
/// let mut tree = BlockTree::new();
/// let b = tree.insert(Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(9), vec![]))?;
///
/// let mut ga = GaInstance::new(Round::new(5), Thresholds::mmr());
/// // M₀: an old (round-3) vote from p0.
/// ga.init_with(Vote::new(ProcessId::new(0), Round::new(3), b));
/// // Fresh round-5 votes from p1, p2.
/// ga.receive(Vote::new(ProcessId::new(1), Round::new(5), b));
/// ga.receive(Vote::new(ProcessId::new(2), Round::new(5), b));
///
/// let out = ga.output(&tree);
/// assert_eq!(out.participation(), 3); // M₀ vote still counts
/// assert_eq!(out.grade_of(b), Some(Grade::One));
/// # Ok::<(), st_blocktree::BlockTreeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GaInstance {
    round: Round,
    thresholds: Thresholds,
    store: VoteStore,
    /// Lowest round seen in `M₀` (bounds the tally window).
    window_lo: Round,
}

impl GaInstance {
    /// Creates an instance for `round` with no initial votes.
    pub fn new(round: Round, thresholds: Thresholds) -> GaInstance {
        GaInstance {
            round,
            thresholds,
            store: VoteStore::new(),
            window_lo: round,
        }
    }

    /// The round of this instance.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Adds a vote to the initial set `M₀`.
    ///
    /// Votes from rounds `≥` the instance round are rejected (they are not
    /// "messages from previous rounds") and ignored, returning `false`.
    pub fn init_with(&mut self, vote: Vote) -> bool {
        if vote.round() >= self.round {
            return false;
        }
        if vote.round() < self.window_lo {
            self.window_lo = vote.round();
        }
        self.store.insert(vote);
        true
    }

    /// Receives a vote for the instance round (the Figure 3 receive
    /// phase). Votes tagged with other rounds are ignored, returning
    /// `false` — a one-shot instance only accepts its own round's votes.
    pub fn receive(&mut self, vote: Vote) -> bool {
        if vote.round() != self.round {
            return false;
        }
        self.store.insert(vote);
        true
    }

    /// Computes the graded outputs over `M₀ ∪ {round votes}`, where a
    /// round-`r` vote supersedes the same sender's `M₀` vote and
    /// equivocating latest votes are discarded.
    pub fn output(&self, tree: &BlockTree) -> GaOutput {
        let votes = self.store.latest_in_window(self.window_lo, self.round);
        tally(tree, &votes, self.thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_blocktree::Block;
    use st_types::{BlockId, Grade, ProcessId, View};

    fn tree_with_fork() -> (BlockTree, BlockId, BlockId) {
        let mut tree = BlockTree::new();
        let a = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(0),
                vec![],
            ))
            .unwrap();
        let b = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(1),
                vec![],
            ))
            .unwrap();
        (tree, a, b)
    }

    #[test]
    fn fresh_vote_supersedes_m0_vote() {
        let (tree, a, b) = tree_with_fork();
        let mut ga = GaInstance::new(Round::new(4), Thresholds::mmr());
        // p0's old vote was for a…
        assert!(ga.init_with(Vote::new(ProcessId::new(0), Round::new(2), a)));
        // …but its fresh vote is for b: only b counts.
        assert!(ga.receive(Vote::new(ProcessId::new(0), Round::new(4), b)));
        let out = ga.output(&tree);
        assert_eq!(out.participation(), 1);
        assert_eq!(out.grade_of(b), Some(Grade::One));
        assert_eq!(out.grade_of(a), None);
    }

    #[test]
    fn m0_rejects_current_or_future_rounds() {
        let mut ga = GaInstance::new(Round::new(4), Thresholds::mmr());
        assert!(!ga.init_with(Vote::new(
            ProcessId::new(0),
            Round::new(4),
            BlockId::GENESIS
        )));
        assert!(!ga.init_with(Vote::new(
            ProcessId::new(0),
            Round::new(5),
            BlockId::GENESIS
        )));
    }

    #[test]
    fn receive_rejects_other_rounds() {
        let mut ga = GaInstance::new(Round::new(4), Thresholds::mmr());
        assert!(!ga.receive(Vote::new(
            ProcessId::new(0),
            Round::new(3),
            BlockId::GENESIS
        )));
        assert!(!ga.receive(Vote::new(
            ProcessId::new(0),
            Round::new(5),
            BlockId::GENESIS
        )));
        assert!(ga.receive(Vote::new(
            ProcessId::new(0),
            Round::new(4),
            BlockId::GENESIS
        )));
    }

    #[test]
    fn empty_m0_recovers_vanilla_ga() {
        let (tree, a, _) = tree_with_fork();
        let mut ga = GaInstance::new(Round::new(1), Thresholds::mmr());
        for i in 0..3 {
            ga.receive(Vote::new(ProcessId::new(i), Round::new(1), a));
        }
        let out = ga.output(&tree);
        assert_eq!(out.grade_of(a), Some(Grade::One));
    }

    #[test]
    fn equivocation_in_m0_discards_sender() {
        let (tree, a, b) = tree_with_fork();
        let mut ga = GaInstance::new(Round::new(4), Thresholds::mmr());
        ga.init_with(Vote::new(ProcessId::new(0), Round::new(2), a));
        ga.init_with(Vote::new(ProcessId::new(0), Round::new(2), b));
        ga.receive(Vote::new(ProcessId::new(1), Round::new(4), a));
        let out = ga.output(&tree);
        assert_eq!(out.participation(), 1); // p0 discarded
        assert_eq!(out.grade_of(a), Some(Grade::One));
    }
}
