//! Incremental subtree-support index.
//!
//! The stateless [`crate::tally`] recomputes every block's support from
//! scratch — simple, obviously correct, and what the protocol crate uses.
//! A deployment processing thousands of votes per round wants the
//! incremental version: when a sender's counted vote moves from tip `A`
//! to tip `B`, only the blocks on the symmetric difference of their
//! chains — the two paths down to `LCA(A, B)` — change support, and the
//! index updates in `O(depth(A) + depth(B) − 2·depth(LCA))` instead of
//! `O(m · h)`.
//!
//! Equivalence with the stateless tally is property-tested
//! (`proptest_support.rs`) and the speedup is measured by the `ga_tally`
//! Criterion bench.

use crate::{GaOutput, Thresholds};
use st_blocktree::BlockTree;
use st_types::fasthash::iter_sorted;
use st_types::FastMap;
use st_types::{BlockId, Grade, ProcessId};

/// Maintains, for every block, the number of counted votes whose tip
/// extends it (its *support*), under per-sender vote replacement.
///
/// ```
/// use st_blocktree::{Block, BlockTree};
/// use st_ga::{SupportIndex, Thresholds};
/// use st_types::{BlockId, Grade, ProcessId, View};
///
/// let mut tree = BlockTree::new();
/// let b = tree.insert(Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]))?;
///
/// let mut index = SupportIndex::new();
/// for i in 0..3 {
///     index.set_vote(&tree, ProcessId::new(i), b);
/// }
/// assert_eq!(index.support_of(b), 3);
/// let out = index.outputs(&tree, Thresholds::mmr(), index.participation());
/// assert_eq!(out.grade_of(b), Some(Grade::One));
/// # Ok::<(), st_blocktree::BlockTreeError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SupportIndex {
    support: FastMap<BlockId, usize>,
    current: FastMap<ProcessId, BlockId>,
}

impl SupportIndex {
    /// An empty index.
    pub fn new() -> SupportIndex {
        SupportIndex::default()
    }

    /// Number of senders currently counted.
    pub fn participation(&self) -> usize {
        self.current.len()
    }

    /// The support of `block` (0 if never supported).
    pub fn support_of(&self, block: BlockId) -> usize {
        self.support.get(&block).copied().unwrap_or(0)
    }

    /// The tip currently counted for `sender`.
    pub fn vote_of(&self, sender: ProcessId) -> Option<BlockId> {
        self.current.get(&sender).copied()
    }

    /// Counts (or moves) `sender`'s vote to `tip`. Unknown tips are
    /// rejected (returns `false`) — the caller decides whether such votes
    /// still count toward perceived participation, as the stateless tally
    /// does.
    pub fn set_vote(&mut self, tree: &BlockTree, sender: ProcessId, tip: BlockId) -> bool {
        if !tree.contains(tip) {
            return false;
        }
        match self.current.insert(sender, tip) {
            None => {
                // Fresh vote: increment the whole chain.
                for b in tree.chain(tip) {
                    *self.support.entry(b).or_insert(0) += 1;
                }
            }
            Some(old) if old == tip => { /* no movement */ }
            Some(old) => {
                // Moved vote: adjust only the symmetric difference.
                let lca = tree.lca(old, tip).expect("both tips known"); // stlint::allow(panic, reason = "old was accepted by a prior set_vote contains() check and tip by this one, so both are in the tree and share the genesis ancestor")
                let mut cur = old;
                while cur != lca {
                    let e = self.support.get_mut(&cur).expect("counted chain"); // stlint::allow(panic, reason = "every block on old's chain was incremented when the vote landed on old, so the entry exists until this decrement")
                    *e -= 1;
                    if *e == 0 {
                        self.support.remove(&cur);
                    }
                    cur = tree.parent(cur).expect("lca is an ancestor"); // stlint::allow(panic, reason = "the walk stops at lca(old, tip), which is a proper ancestor, before ever stepping past genesis")
                }
                let mut cur = tip;
                while cur != lca {
                    *self.support.entry(cur).or_insert(0) += 1;
                    cur = tree.parent(cur).expect("lca is an ancestor"); // stlint::allow(panic, reason = "the walk stops at lca(old, tip), which is a proper ancestor, before ever stepping past genesis")
                }
            }
        }
        true
    }

    /// Removes `sender`'s vote entirely (e.g. it expired or the sender
    /// was discovered equivocating). Returns whether a vote was removed.
    pub fn remove_vote(&mut self, tree: &BlockTree, sender: ProcessId) -> bool {
        let Some(old) = self.current.remove(&sender) else {
            return false;
        };
        for b in tree.chain(old) {
            let e = self.support.get_mut(&b).expect("counted chain"); // stlint::allow(panic, reason = "old's whole chain was incremented when the vote was recorded; entries only disappear when their count hits zero")
            *e -= 1;
            if *e == 0 {
                self.support.remove(&b);
            }
        }
        true
    }

    /// Produces graded outputs from the current index, with perceived
    /// participation `m` (callers may pass a larger `m` than
    /// [`SupportIndex::participation`] to account for votes on unknown
    /// tips, matching the stateless tally's behaviour).
    pub fn outputs(&self, tree: &BlockTree, thresholds: Thresholds, m: usize) -> GaOutput {
        if m == 0 {
            return GaOutput::empty();
        }
        let mut graded: Vec<(BlockId, Grade)> = Vec::new();
        for (&block, &s) in iter_sorted(&self.support) {
            if thresholds.meets_grade1(s, m) {
                graded.push((block, Grade::One));
            } else if thresholds.meets_grade0(s, m) {
                graded.push((block, Grade::Zero));
            }
        }
        GaOutput::new(graded, m, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_blocktree::Block;
    use st_types::View;

    fn chain_tree(len: usize) -> (BlockTree, Vec<BlockId>) {
        let mut tree = BlockTree::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..len {
            let b = Block::build(
                *ids.last().unwrap(),
                View::new(i as u64 + 1),
                ProcessId::new(0),
                vec![],
            );
            ids.push(tree.insert(b).unwrap());
        }
        (tree, ids)
    }

    #[test]
    fn fresh_votes_accumulate_up_the_chain() {
        let (tree, ids) = chain_tree(3);
        let mut idx = SupportIndex::new();
        assert!(idx.set_vote(&tree, ProcessId::new(0), ids[3]));
        assert!(idx.set_vote(&tree, ProcessId::new(1), ids[2]));
        assert_eq!(idx.support_of(ids[3]), 1);
        assert_eq!(idx.support_of(ids[2]), 2);
        assert_eq!(idx.support_of(ids[1]), 2);
        assert_eq!(idx.support_of(BlockId::GENESIS), 2);
        assert_eq!(idx.participation(), 2);
    }

    #[test]
    fn moving_a_vote_adjusts_only_the_difference() {
        let mut tree = BlockTree::new();
        let trunk = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        let trunk_id = tree.insert(trunk).unwrap();
        let left = tree
            .insert(Block::build(
                trunk_id,
                View::new(2),
                ProcessId::new(1),
                vec![],
            ))
            .unwrap();
        let right = tree
            .insert(Block::build(
                trunk_id,
                View::new(2),
                ProcessId::new(2),
                vec![],
            ))
            .unwrap();
        let mut idx = SupportIndex::new();
        idx.set_vote(&tree, ProcessId::new(0), left);
        assert_eq!(idx.support_of(left), 1);
        assert_eq!(idx.support_of(trunk_id), 1);
        // Move left → right: trunk and genesis support unchanged.
        idx.set_vote(&tree, ProcessId::new(0), right);
        assert_eq!(idx.support_of(left), 0);
        assert_eq!(idx.support_of(right), 1);
        assert_eq!(idx.support_of(trunk_id), 1);
        assert_eq!(idx.support_of(BlockId::GENESIS), 1);
    }

    #[test]
    fn removal_clears_contribution() {
        let (tree, ids) = chain_tree(2);
        let mut idx = SupportIndex::new();
        idx.set_vote(&tree, ProcessId::new(0), ids[2]);
        assert!(idx.remove_vote(&tree, ProcessId::new(0)));
        assert!(!idx.remove_vote(&tree, ProcessId::new(0)));
        assert_eq!(idx.support_of(ids[2]), 0);
        assert_eq!(idx.support_of(BlockId::GENESIS), 0);
        assert_eq!(idx.participation(), 0);
    }

    #[test]
    fn unknown_tip_rejected() {
        let (tree, _) = chain_tree(1);
        let mut idx = SupportIndex::new();
        assert!(!idx.set_vote(&tree, ProcessId::new(0), BlockId::new(0xDEAD)));
        assert_eq!(idx.participation(), 0);
    }

    #[test]
    fn outputs_match_thresholds() {
        let (tree, ids) = chain_tree(2);
        let mut idx = SupportIndex::new();
        for i in 0..5 {
            idx.set_vote(&tree, ProcessId::new(i), ids[2]);
        }
        idx.set_vote(&tree, ProcessId::new(5), ids[1]);
        let out = idx.outputs(&tree, Thresholds::mmr(), 6);
        assert_eq!(out.grade_of(ids[2]), Some(Grade::One)); // 5/6
        assert_eq!(out.grade_of(ids[1]), Some(Grade::One)); // 6/6
        assert_eq!(out.longest_grade1(), Some(ids[2]));
    }
}
