//! Graded agreement: the voting primitive under the MMR total-order
//! broadcast protocol.
//!
//! A graded-agreement (GA) instance has every awake process multicast a
//! vote for its input log; at the end of the round each process tallies the
//! votes it received and outputs logs with grades (Definition 4 and
//! Figure 2 of the paper):
//!
//! * grade **1** for any log supported by more than `2m/3` of the `m`
//!   processes it heard from;
//! * grade **0** for any log supported by more than `m/3` (but at most
//!   `2m/3`).
//!
//! A vote for log `Λ′` counts as a vote for every prefix `Λ ⪯ Λ′`; votes
//! are counted **per sender**, and equivocating senders are ignored.
//!
//! The **extended** GA (Figure 3) additionally starts from an initial set
//! `M₀` of votes from earlier rounds; a sender's round-`r` vote supersedes
//! its `M₀` vote. Concretely both variants reduce to the same tally over
//! "the latest vote of each sender within a round window" — vanilla GA uses
//! the single-round window `[r, r]`, the extended GA the window
//! `[r − η, r]`. The window logic lives in
//! [`st_messages::VoteStore::latest_in_window`]; this crate implements the
//! grading itself.
//!
//! [`GaInstance`] packages the Figure-3 object (explicit `M₀` + current
//! round votes) for direct property testing of Lemma 1; the protocol crate
//! (`st-core`) instead calls [`tally`] on its long-lived vote store.
//!
//! # Example
//!
//! ```
//! use st_blocktree::{Block, BlockTree};
//! use st_ga::{tally, Thresholds};
//! use st_messages::{Vote, VoteStore};
//! use st_types::{BlockId, Grade, ProcessId, Round, View};
//!
//! let mut tree = BlockTree::new();
//! let b1 = tree.insert(Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]))?;
//!
//! let mut store = VoteStore::new();
//! for i in 0..3 {
//!     store.insert(Vote::new(ProcessId::new(i), Round::new(1), b1));
//! }
//! let votes = store.latest_in_window(Round::new(1), Round::new(1));
//! let out = tally(&tree, &votes, Thresholds::mmr());
//! assert_eq!(out.grade_of(b1), Some(Grade::One)); // unanimous
//! # Ok::<(), st_blocktree::BlockTreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instance;
mod output;
mod support;
mod thresholds;

pub use instance::GaInstance;
pub use output::GaOutput;
pub use support::SupportIndex;
pub use thresholds::Thresholds;

use st_blocktree::BlockTree;
use st_messages::LatestVotes;
use st_types::fasthash::iter_sorted;
use st_types::FastMap;
use st_types::{BlockId, Grade};

/// Tallies a set of latest votes over the block tree and grades every
/// supported log (Figure 2 / Figure 3 receive phase).
///
/// `votes` must already be deduplicated to one vote per sender with
/// equivocators removed — that is exactly what
/// [`st_messages::VoteStore::latest_in_window`] returns. Votes whose tip is
/// not in `tree` are skipped (the process cannot interpret them; in a real
/// deployment it would sync the missing blocks first), but they still count
/// toward the perceived participation `m` — an adversary cannot *lower*
/// thresholds by voting for unavailable blocks.
pub fn tally(tree: &BlockTree, votes: &LatestVotes, thresholds: Thresholds) -> GaOutput {
    let m = votes.participation();
    if m == 0 {
        return GaOutput::empty();
    }

    // Count voters per distinct tip (votes are one-per-sender already).
    let mut tip_support: FastMap<BlockId, usize> = FastMap::default();
    for (_, _, tip) in votes.iter() {
        if tree.contains(tip) {
            *tip_support.entry(tip).or_insert(0) += 1;
        }
    }

    // Support of a block = number of senders whose voted tip extends it.
    // Accumulate tip counts up every ancestor chain. Chains share suffixes,
    // so cache accumulated blocks to stay near-linear in distinct blocks.
    let mut support: FastMap<BlockId, usize> = FastMap::default();
    for (&tip, &count) in &tip_support {
        for block in tree.chain(tip) {
            *support.entry(block).or_insert(0) += count;
        }
    }

    let mut outputs: Vec<(BlockId, Grade)> = Vec::new();
    for (&block, &s) in iter_sorted(&support) {
        if thresholds.meets_grade1(s, m) {
            outputs.push((block, Grade::One));
        } else if thresholds.meets_grade0(s, m) {
            outputs.push((block, Grade::Zero));
        }
    }

    GaOutput::new(outputs, m, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_blocktree::Block;
    use st_messages::{Vote, VoteStore};
    use st_types::{ProcessId, Round, View};

    /// Builds a tree with a fork: genesis -> a1 -> a2, genesis -> b1.
    fn forked_tree() -> (BlockTree, BlockId, BlockId, BlockId) {
        let mut tree = BlockTree::new();
        let a1 = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(0),
                vec![],
            ))
            .unwrap();
        let a2 = tree
            .insert(Block::build(a1, View::new(2), ProcessId::new(0), vec![]))
            .unwrap();
        let b1 = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(1),
                vec![],
            ))
            .unwrap();
        (tree, a1, a2, b1)
    }

    fn window_of(store: &VoteStore, r: u64) -> LatestVotes {
        store.latest_in_window(Round::new(r), Round::new(r))
    }

    #[test]
    fn empty_votes_empty_output() {
        let (tree, ..) = forked_tree();
        let store = VoteStore::new();
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert!(out.is_empty());
        assert_eq!(out.participation(), 0);
    }

    #[test]
    fn unanimous_vote_grades_whole_chain_one() {
        let (tree, a1, a2, _) = forked_tree();
        let mut store = VoteStore::new();
        for i in 0..6 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a2));
        }
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.grade_of(a2), Some(Grade::One));
        assert_eq!(out.grade_of(a1), Some(Grade::One));
        assert_eq!(out.grade_of(BlockId::GENESIS), Some(Grade::One));
        assert_eq!(out.longest_grade1(), Some(a2));
    }

    #[test]
    fn two_thirds_boundary_is_strict() {
        let (tree, a1, _, b1) = forked_tree();
        let mut store = VoteStore::new();
        // 6 voters: exactly 4 = 2m/3 for a1 — NOT more than 2m/3.
        for i in 0..4 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a1));
        }
        for i in 4..6 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), b1));
        }
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.grade_of(a1), Some(Grade::Zero)); // 4/6 > 1/3, ≤ 2/3
        assert_eq!(out.grade_of(b1), None); // 2 of 6 is not > m/3
    }

    #[test]
    fn one_third_boundary_is_strict() {
        let (tree, a1, _, b1) = forked_tree();
        let mut store = VoteStore::new();
        // m = 6: grade-0 needs support > 2. Exactly 2 votes must NOT grade.
        for i in 0..2 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), b1));
        }
        for i in 2..6 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a1));
        }
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.grade_of(b1), None);
        assert_eq!(out.grade_of(a1), Some(Grade::Zero));
    }

    #[test]
    fn five_of_six_is_grade_one() {
        let (tree, a1, _, b1) = forked_tree();
        let mut store = VoteStore::new();
        for i in 0..5 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a1));
        }
        store.insert(Vote::new(ProcessId::new(5), Round::new(1), b1));
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.grade_of(a1), Some(Grade::One));
        // Genesis is supported by everyone (both tips extend it).
        assert_eq!(out.grade_of(BlockId::GENESIS), Some(Grade::One));
    }

    #[test]
    fn votes_for_extension_count_for_prefix() {
        let (tree, a1, a2, b1) = forked_tree();
        let mut store = VoteStore::new();
        // 3 vote the tip a2, 2 vote the mid-chain a1: a1's support is 5.
        for i in 0..3 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a2));
        }
        for i in 3..5 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a1));
        }
        store.insert(Vote::new(ProcessId::new(5), Round::new(1), b1));
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.grade_of(a1), Some(Grade::One)); // 5/6 > 2/3
        assert_eq!(out.grade_of(a2), Some(Grade::Zero)); // 3/6 > 1/3, ≤ 2/3
    }

    #[test]
    fn unknown_tip_counts_toward_m_but_supports_nothing() {
        let (tree, a1, _, _) = forked_tree();
        let mut store = VoteStore::new();
        // 4 honest votes for a1, 2 votes for a fabricated block: m = 6, so
        // a1 needs > 4 for grade 1 — it has exactly 4 → grade 0 only.
        for i in 0..4 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), a1));
        }
        for i in 4..6 {
            store.insert(Vote::new(
                ProcessId::new(i),
                Round::new(1),
                BlockId::new(0xdead),
            ));
        }
        let out = tally(&tree, &window_of(&store, 1), Thresholds::mmr());
        assert_eq!(out.participation(), 6);
        assert_eq!(out.grade_of(a1), Some(Grade::Zero));
    }

    #[test]
    fn extended_window_uses_latest_votes_across_rounds() {
        let (tree, a1, a2, b1) = forked_tree();
        let mut store = VoteStore::new();
        // Round 1: everyone voted b1. Round 3: only 2 of 6 voted (for a2).
        for i in 0..6 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(1), b1));
        }
        for i in 0..2 {
            store.insert(Vote::new(ProcessId::new(i), Round::new(3), a2));
        }
        // Vanilla window [3,3]: only the 2 new votes, a2 unanimous.
        let out = tally(&tree, &window_of(&store, 3), Thresholds::mmr());
        assert_eq!(out.grade_of(a2), Some(Grade::One));
        assert_eq!(out.participation(), 2);
        // Extended window [1,3]: 2 latest for a2, 4 stale-latest for b1;
        // b1 has 4/6 = grade 0, a2 only 2/6 → below grade 0.
        let ext = tally(
            &tree,
            &store.latest_in_window(Round::new(1), Round::new(3)),
            Thresholds::mmr(),
        );
        assert_eq!(ext.participation(), 6);
        assert_eq!(ext.grade_of(b1), Some(Grade::Zero));
        assert_eq!(ext.grade_of(a2), None);
        assert_eq!(ext.grade_of(a1), None);
        // Genesis is supported by all 6 votes.
        assert_eq!(ext.grade_of(BlockId::GENESIS), Some(Grade::One));
    }
}
