//! Graded-agreement outputs.

use st_blocktree::BlockTree;
use st_types::{BlockId, Grade};

/// The output of a graded-agreement tally: a set of logs (identified by
/// tip), each with a grade, plus the perceived participation `m`.
///
/// Heights are captured at construction so selection queries ("the longest
/// log such that…", Algorithm 1 lines 5, 9, 10) do not need the tree again.
/// Ties in height break by block id, which is deterministic and identical
/// across processes holding the same tree.
#[derive(Clone, Debug, PartialEq)]
pub struct GaOutput {
    /// `(block, grade, height)` triples, sorted by block id for
    /// reproducible iteration.
    outputs: Vec<(BlockId, Grade, u64)>,
    participation: usize,
}

impl GaOutput {
    /// An output with no graded logs (e.g. no votes received).
    pub fn empty() -> GaOutput {
        GaOutput {
            outputs: Vec::new(),
            participation: 0,
        }
    }

    /// Builds an output set; heights are read from `tree`.
    pub(crate) fn new(
        outputs: Vec<(BlockId, Grade)>,
        participation: usize,
        tree: &BlockTree,
    ) -> GaOutput {
        let mut enriched: Vec<(BlockId, Grade, u64)> = outputs
            .into_iter()
            .map(|(b, g)| (b, g, tree.height(b).unwrap_or(0)))
            .collect();
        enriched.sort_by_key(|&(b, _, _)| b.as_u64());
        GaOutput {
            outputs: enriched,
            participation,
        }
    }

    /// The perceived participation `m` of the tally.
    pub fn participation(&self) -> usize {
        self.participation
    }

    /// Whether nothing was output.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The grade of a specific log, if it was output. Binary search over
    /// the id-sorted outputs — grade lookups are rare (tests, monitors),
    /// so the hot path no longer materialises a per-tally lookup map.
    pub fn grade_of(&self, block: BlockId) -> Option<Grade> {
        self.outputs
            .binary_search_by_key(&block.as_u64(), |&(b, _, _)| b.as_u64())
            .ok()
            .map(|i| self.outputs[i].1)
    }

    /// Iterates `(block, grade)` pairs, sorted by block id.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Grade)> + '_ {
        self.outputs.iter().map(|&(b, g, _)| (b, g))
    }

    /// All logs output with grade 1 (the decision-grade set).
    pub fn grade1_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.outputs
            .iter()
            .filter(|&&(_, g, _)| g == Grade::One)
            .map(|&(b, _, _)| b)
    }

    /// The longest log output with grade 1 (Algorithm 1 line 9: the input
    /// to `GA_{v,2}`), or `None` if no grade-1 output exists.
    pub fn longest_grade1(&self) -> Option<BlockId> {
        self.outputs
            .iter()
            .filter(|&&(_, g, _)| g == Grade::One)
            .max_by_key(|&&(b, _, h)| (h, b.as_u64()))
            .map(|&(b, _, _)| b)
    }

    /// The longest log output with **any** grade (Algorithm 1 lines 5 and
    /// 10: `L_{v−1}` and `C_v`), or `None` if nothing was output.
    pub fn longest_any_grade(&self) -> Option<BlockId> {
        self.outputs
            .iter()
            .max_by_key(|&&(b, _, h)| (h, b.as_u64()))
            .map(|&(b, _, _)| b)
    }

    /// The number of graded logs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// The maximal conflicting logs among the outputs, i.e. the graded
    /// tips (blocks with no graded descendant). Bounded divergence
    /// (Definition 4) asserts there are at most two *conflicting* outputs;
    /// monitors use this to verify it.
    pub fn maximal_outputs(&self, tree: &BlockTree) -> Vec<BlockId> {
        let blocks: Vec<BlockId> = self.outputs.iter().map(|&(b, _, _)| b).collect();
        blocks
            .iter()
            .copied()
            .filter(|&b| {
                !blocks
                    .iter()
                    .any(|&other| other != b && tree.is_ancestor(b, other))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_blocktree::Block;
    use st_types::{ProcessId, View};

    fn chain_tree(len: usize) -> (BlockTree, Vec<BlockId>) {
        let mut tree = BlockTree::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..len {
            let b = Block::build(
                *ids.last().unwrap(),
                View::new(i as u64 + 1),
                ProcessId::new(0),
                vec![],
            );
            ids.push(tree.insert(b).unwrap());
        }
        (tree, ids)
    }

    #[test]
    fn empty_output() {
        let out = GaOutput::empty();
        assert!(out.is_empty());
        assert_eq!(out.longest_grade1(), None);
        assert_eq!(out.longest_any_grade(), None);
        assert_eq!(out.participation(), 0);
    }

    #[test]
    fn longest_selection_prefers_height() {
        let (tree, ids) = chain_tree(3);
        let out = GaOutput::new(
            vec![
                (ids[1], Grade::One),
                (ids[2], Grade::One),
                (ids[3], Grade::Zero),
            ],
            6,
            &tree,
        );
        assert_eq!(out.longest_grade1(), Some(ids[2]));
        assert_eq!(out.longest_any_grade(), Some(ids[3]));
        assert_eq!(out.grade1_blocks().count(), 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn maximal_outputs_on_chain_is_tip() {
        let (tree, ids) = chain_tree(3);
        let out = GaOutput::new(
            vec![
                (ids[1], Grade::One),
                (ids[2], Grade::Zero),
                (ids[3], Grade::Zero),
            ],
            6,
            &tree,
        );
        assert_eq!(out.maximal_outputs(&tree), vec![ids[3]]);
    }

    #[test]
    fn maximal_outputs_on_fork() {
        let mut tree = BlockTree::new();
        let a = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(0),
                vec![],
            ))
            .unwrap();
        let b = tree
            .insert(Block::build(
                BlockId::GENESIS,
                View::new(1),
                ProcessId::new(1),
                vec![],
            ))
            .unwrap();
        let out = GaOutput::new(
            vec![
                (a, Grade::Zero),
                (b, Grade::Zero),
                (BlockId::GENESIS, Grade::One),
            ],
            9,
            &tree,
        );
        let mut maximal = out.maximal_outputs(&tree);
        maximal.sort_by_key(|x| x.as_u64());
        let mut expected = vec![a, b];
        expected.sort_by_key(|x| x.as_u64());
        assert_eq!(maximal, expected);
    }
}
