//! Quorum thresholds for grading.

use serde::{Deserialize, Serialize};

/// The quorum thresholds of a graded-agreement instance, parameterised by
/// the failure ratio `β`: grade 1 requires support `> (1 − β)·m`, grade 0
/// requires support `> β·m`.
///
/// The MMR protocol uses `β = 1/3` (grade 1 ⇔ `> 2m/3`, grade 0 ⇔
/// `> m/3`); other deterministically-safe sleepy protocols use other
/// ratios, so the tally is kept generic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    beta: f64,
}

impl Thresholds {
    /// Thresholds for a given failure ratio `β ∈ (0, 1/2]`.
    ///
    /// # Panics
    ///
    /// Panics if `β` is outside `(0, 1/2]` — parameter validation belongs
    /// to [`st_types::Params`]; this type is constructed from an already
    /// validated `β`.
    pub fn new(beta: f64) -> Thresholds {
        assert!(
            beta > 0.0 && beta <= 0.5 && beta.is_finite(),
            "β must lie in (0, 1/2], got {beta}"
        );
        Thresholds { beta }
    }

    /// The MMR thresholds (`β = 1/3`).
    pub fn mmr() -> Thresholds {
        Thresholds { beta: 1.0 / 3.0 }
    }

    /// The failure ratio `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Whether `support` of `m` exceeds the grade-1 quorum `(1 − β)·m`.
    pub fn meets_grade1(&self, support: usize, m: usize) -> bool {
        (support as f64) > (1.0 - self.beta) * (m as f64)
    }

    /// Whether `support` of `m` exceeds the grade-0 quorum `β·m`.
    pub fn meets_grade0(&self, support: usize, m: usize) -> bool {
        (support as f64) > self.beta * (m as f64)
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::mmr()
    }
}

impl From<st_types::Params> for Thresholds {
    fn from(p: st_types::Params) -> Thresholds {
        Thresholds::new(p.failure_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmr_thresholds_are_thirds() {
        let t = Thresholds::mmr();
        // m = 9: grade 1 needs > 6, grade 0 needs > 3.
        assert!(!t.meets_grade1(6, 9));
        assert!(t.meets_grade1(7, 9));
        assert!(!t.meets_grade0(3, 9));
        assert!(t.meets_grade0(4, 9));
    }

    #[test]
    fn grade1_implies_grade0() {
        let t = Thresholds::mmr();
        for m in 1..60 {
            for s in 0..=m {
                if t.meets_grade1(s, m) {
                    assert!(t.meets_grade0(s, m), "s={s} m={m}");
                }
            }
        }
    }

    #[test]
    fn conflicting_grade1_impossible() {
        // Two disjoint supports both > 2m/3 would sum to > 4m/3 > m.
        let t = Thresholds::mmr();
        for m in 1..60 {
            for s1 in 0..=m {
                for s2 in 0..=(m - s1) {
                    assert!(
                        !(t.meets_grade1(s1, m) && t.meets_grade1(s2, m)),
                        "disjoint supports {s1},{s2} of {m} both grade-1"
                    );
                }
            }
        }
    }

    #[test]
    fn at_most_two_conflicting_grade0() {
        // Three disjoint supports all > m/3 would sum to > m.
        let t = Thresholds::mmr();
        for m in 1..40 {
            for s1 in 0..=m {
                for s2 in 0..=(m - s1) {
                    let s3 = m - s1 - s2;
                    assert!(
                        !(t.meets_grade0(s1, m) && t.meets_grade0(s2, m) && t.meets_grade0(s3, m)),
                        "three disjoint supports {s1},{s2},{s3} of {m} all graded"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "β must lie")]
    fn invalid_beta_panics() {
        let _ = Thresholds::new(0.7);
    }

    #[test]
    fn from_params() {
        let p = st_types::Params::builder(10)
            .failure_ratio(0.25)
            .build()
            .unwrap();
        let t = Thresholds::from(p);
        assert!((t.beta() - 0.25).abs() < 1e-12);
    }
}
