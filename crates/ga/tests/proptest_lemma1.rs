//! Property-based validation of Lemma 1: the (extended) graded agreement
//! satisfies graded consistency, integrity, validity, uniqueness and
//! bounded divergence whenever `|H_r| > 2/3 · |O_r ∪ P₀|`, even against a
//! Byzantine adversary that equivocates and delivers selectively.
//!
//! Each proptest case builds a random block tree, a random honest/Byzantine
//! split satisfying the assumption, random honest inputs, and a random
//! per-recipient Byzantine vote pattern, then checks all five properties
//! over every honest receiver's output.

use proptest::prelude::*;
use st_blocktree::{Block, BlockTree};
use st_ga::{tally, GaOutput, Thresholds};
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, Grade, ProcessId, Round, TxId, View};

const ROUND: Round = Round::new(1);

/// A randomly grown block tree plus the list of all tips (every block).
fn grow_tree(choices: &[u8]) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    for (i, &c) in choices.iter().enumerate() {
        let parent = ids[c as usize % ids.len()];
        let block = Block::build(
            parent,
            View::new(i as u64 + 1),
            ProcessId::new(c as u32),
            vec![TxId::new(i as u64)],
        );
        ids.push(tree.insert(block).unwrap());
    }
    (tree, ids)
}

struct Execution {
    tree: BlockTree,
    honest_inputs: Vec<(ProcessId, BlockId)>,
    /// Output of each honest receiver.
    outputs: Vec<GaOutput>,
}

/// Runs one GA round: `n_honest` honest voters (all votes delivered to all
/// receivers) and `n_byz` Byzantine voters that send receiver-specific
/// votes chosen by `byz_choice[receiver][byz]`. Receivers are the honest
/// processes.
fn run_ga(
    tree_choices: &[u8],
    n_honest: usize,
    n_byz: usize,
    honest_choice: &[u8],
    byz_choice: &[Vec<u8>],
) -> Execution {
    let (tree, ids) = grow_tree(tree_choices);
    let honest_inputs: Vec<(ProcessId, BlockId)> = (0..n_honest)
        .map(|i| {
            (
                ProcessId::new(i as u32),
                ids[honest_choice[i % honest_choice.len()] as usize % ids.len()],
            )
        })
        .collect();

    let mut outputs = Vec::new();
    for recv in 0..n_honest {
        let mut store = VoteStore::new();
        for &(p, tip) in &honest_inputs {
            store.insert(Vote::new(p, ROUND, tip));
        }
        for b in 0..n_byz {
            let pid = ProcessId::new((n_honest + b) as u32);
            let pick = byz_choice[recv][b] as usize;
            // Byzantine options: vote some block, equivocate, or stay
            // silent toward this receiver.
            match pick % (ids.len() + 2) {
                x if x < ids.len() => {
                    store.insert(Vote::new(pid, ROUND, ids[x]));
                }
                x if x == ids.len() => {
                    // Equivocate: two conflicting-ish votes; the store
                    // discards the sender.
                    store.insert(Vote::new(pid, ROUND, ids[0]));
                    store.insert(Vote::new(pid, ROUND, *ids.last().unwrap()));
                }
                _ => { /* silent toward this receiver */ }
            }
        }
        let votes = store.latest_in_window(ROUND, ROUND);
        outputs.push(tally(&tree, &votes, Thresholds::mmr()));
    }
    Execution {
        tree,
        honest_inputs,
        outputs,
    }
}

fn check_lemma1(ex: &Execution) -> Result<(), TestCaseError> {
    let tree = &ex.tree;

    // Validity: every honest receiver outputs the longest common prefix of
    // honest inputs with grade 1.
    let lcp = tree
        .longest_common_prefix(ex.honest_inputs.iter().map(|&(_, t)| t))
        .expect("honest inputs are known blocks");
    for (i, out) in ex.outputs.iter().enumerate() {
        prop_assert_eq!(
            out.grade_of(lcp),
            Some(Grade::One),
            "validity: receiver {} does not grade-1 the honest LCP {:?}",
            i,
            lcp
        );
    }

    for (i, out) in ex.outputs.iter().enumerate() {
        for (block, grade) in out.iter() {
            // Integrity: some honest process input an extension of the
            // output log.
            prop_assert!(
                ex.honest_inputs
                    .iter()
                    .any(|&(_, t)| tree.is_ancestor(block, t)),
                "integrity: receiver {} output {:?} ({:?}) unsupported by honest inputs",
                i,
                block,
                grade
            );
            if grade == Grade::One {
                // Graded consistency: everyone outputs it with some grade.
                for (j, other) in ex.outputs.iter().enumerate() {
                    prop_assert!(
                        other.grade_of(block).is_some(),
                        "graded consistency: {} grade-1 {:?} but {} outputs nothing for it",
                        i,
                        block,
                        j
                    );
                }
                // Uniqueness: no other receiver grade-1's a conflicting log.
                for (j, other) in ex.outputs.iter().enumerate() {
                    for other_block in other.grade1_blocks() {
                        prop_assert!(
                            !tree.conflicting(block, other_block),
                            "uniqueness: {} grade-1 {:?} conflicts with {}'s grade-1 {:?}",
                            i,
                            block,
                            j,
                            other_block
                        );
                    }
                }
            }
        }
        // Bounded divergence: at most two maximal conflicting outputs.
        let maximal = out.maximal_outputs(tree);
        prop_assert!(
            maximal.len() <= 2,
            "bounded divergence: receiver {} has {} maximal outputs {:?}",
            i,
            maximal.len(),
            maximal
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// n_byz < n_honest / 2 guarantees |H_r| > 2/3 |O_r| even when all
    /// Byzantine processes vote (perceived participation counts them).
    #[test]
    fn lemma1_holds_under_assumption(
        tree_choices in prop::collection::vec(any::<u8>(), 1..12),
        honest_choice in prop::collection::vec(any::<u8>(), 1..10),
        n_honest in 5usize..12,
        byz_seed in prop::collection::vec(prop::collection::vec(any::<u8>(), 5), 12),
    ) {
        let n_byz = (n_honest - 1) / 2; // strictly less than half the honest count
        prop_assume!(n_honest > 2 * n_byz);
        let byz_choice: Vec<Vec<u8>> = (0..n_honest)
            .map(|r| (0..n_byz).map(|b| byz_seed[r % byz_seed.len()][b % 5]).collect())
            .collect();
        let ex = run_ga(&tree_choices, n_honest, n_byz, &honest_choice, &byz_choice);
        check_lemma1(&ex)?;
    }

    /// With *no* Byzantine processes every property must hold trivially,
    /// and unanimity must produce grade-1 on the common input.
    #[test]
    fn lemma1_holds_without_adversary(
        tree_choices in prop::collection::vec(any::<u8>(), 1..12),
        honest_choice in prop::collection::vec(any::<u8>(), 1..10),
        n_honest in 3usize..10,
    ) {
        let byz_choice: Vec<Vec<u8>> = (0..n_honest).map(|_| Vec::new()).collect();
        let ex = run_ga(&tree_choices, n_honest, 0, &honest_choice, &byz_choice);
        check_lemma1(&ex)?;
    }
}

/// Clique validity (the new Lemma 1 property): a set `H′` of processes
/// whose members all voted extensions of Λ — some fresh, some via `M₀` —
/// makes every member output Λ with grade 1, provided
/// `|H′| > 2/3·|O_r ∪ P₀|`. This is a deterministic scenario test: the
/// asynchrony-resilience proof (Lemma 2) leans on exactly this shape.
#[test]
fn clique_validity_deterministic_scenario() {
    let mut tree = BlockTree::new();
    let lambda = tree
        .insert(Block::build(
            BlockId::GENESIS,
            View::new(1),
            ProcessId::new(0),
            vec![],
        ))
        .unwrap();
    let ext = tree
        .insert(Block::build(
            lambda,
            View::new(2),
            ProcessId::new(1),
            vec![],
        ))
        .unwrap();
    let rival = tree
        .insert(Block::build(
            BlockId::GENESIS,
            View::new(1),
            ProcessId::new(9),
            vec![],
        ))
        .unwrap();

    // H′ = {p0..p6}: p0..p3 voted fresh (round 5) extensions of Λ; p4..p6
    // are asleep but their round-3 votes (in M₀) are for extensions of Λ.
    // The adversary contributes 3 votes for a rival chain. |H′| = 7,
    // |O_r ∪ P₀| = 10, 7 > 2/3·10. Every member of H′ must output Λ at
    // grade 1.
    let mut store = VoteStore::new();
    for i in 0..4u32 {
        store.insert(Vote::new(ProcessId::new(i), Round::new(5), ext));
    }
    for i in 4..7u32 {
        store.insert(Vote::new(ProcessId::new(i), Round::new(3), lambda));
    }
    for i in 7..10u32 {
        store.insert(Vote::new(ProcessId::new(i), Round::new(5), rival));
    }
    let votes = store.latest_in_window(Round::new(1), Round::new(5));
    assert_eq!(votes.participation(), 10);
    let out = tally(&tree, &votes, Thresholds::mmr());
    assert_eq!(
        out.grade_of(lambda),
        Some(Grade::One),
        "clique validity violated"
    );
    // The rival, with 3 of 10 votes, must not reach grade 1 (3 ≤ 2·10/3)
    // and in fact not even appear: 3 of 10 is not > 10/3? 3 < 3.33 → no.
    assert_eq!(out.grade_of(rival), None);
}
