//! Equivalence property test: the incremental [`SupportIndex`] must agree
//! with the stateless [`tally`] after any sequence of vote placements,
//! movements and removals.

use proptest::prelude::*;
use st_blocktree::{Block, BlockTree};
use st_ga::{tally, SupportIndex, Thresholds};
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, ProcessId, Round, TxId, View};

fn grow_tree(choices: &[u8]) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    for (i, &c) in choices.iter().enumerate() {
        let parent = ids[c as usize % ids.len()];
        let b = Block::build(
            parent,
            View::new(i as u64 + 1),
            ProcessId::new(c as u32),
            vec![TxId::new(i as u64)],
        );
        ids.push(tree.insert(b).unwrap());
    }
    (tree, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Drive both representations with the same final vote assignment
    /// (the index via arbitrary placement/movement/removal history, the
    /// tally via a fresh store) and compare every block's grade.
    #[test]
    fn incremental_index_matches_stateless_tally(
        tree_choices in prop::collection::vec(any::<u8>(), 1..20),
        ops in prop::collection::vec((0u32..8, any::<u8>(), any::<bool>()), 1..60),
    ) {
        let (tree, ids) = grow_tree(&tree_choices);
        let mut index = SupportIndex::new();

        // Apply the op sequence to the index; track the surviving vote of
        // each sender to build the reference store afterwards.
        let mut final_votes: std::collections::HashMap<u32, BlockId> = Default::default();
        for &(sender, pick, remove) in &ops {
            let p = ProcessId::new(sender);
            if remove {
                index.remove_vote(&tree, p);
                final_votes.remove(&sender);
            } else {
                let tip = ids[pick as usize % ids.len()];
                assert!(index.set_vote(&tree, p, tip));
                final_votes.insert(sender, tip);
            }
        }

        // Reference: one round-1 vote per surviving sender.
        let mut store = VoteStore::new();
        for (&sender, &tip) in &final_votes {
            store.insert(Vote::new(ProcessId::new(sender), Round::new(1), tip));
        }
        let votes = store.latest_in_window(Round::new(1), Round::new(1));
        let reference = tally(&tree, &votes, Thresholds::mmr());
        let m = votes.participation();
        let incremental = index.outputs(&tree, Thresholds::mmr(), m);

        prop_assert_eq!(index.participation(), m);
        // Same grade for every block of the tree.
        for &b in &ids {
            prop_assert_eq!(
                incremental.grade_of(b),
                reference.grade_of(b),
                "block {:?}: support {}",
                b,
                index.support_of(b)
            );
        }
        prop_assert_eq!(incremental.longest_grade1(), reference.longest_grade1());
        prop_assert_eq!(incremental.longest_any_grade(), reference.longest_any_grade());
    }

    /// Support counts themselves (not just grades) match a brute-force
    /// ancestor count.
    #[test]
    fn support_counts_match_bruteforce(
        tree_choices in prop::collection::vec(any::<u8>(), 1..16),
        votes in prop::collection::vec((0u32..6, any::<u8>()), 1..30),
    ) {
        let (tree, ids) = grow_tree(&tree_choices);
        let mut index = SupportIndex::new();
        let mut latest: std::collections::HashMap<u32, BlockId> = Default::default();
        for &(sender, pick) in &votes {
            let tip = ids[pick as usize % ids.len()];
            index.set_vote(&tree, ProcessId::new(sender), tip);
            latest.insert(sender, tip);
        }
        for &b in &ids {
            let expected = latest
                .values()
                .filter(|&&tip| tree.is_ancestor(b, tip))
                .count();
            prop_assert_eq!(index.support_of(b), expected, "block {:?}", b);
        }
    }
}
