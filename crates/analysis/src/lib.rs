//! Closed-form formulas, model-condition checkers and experiment
//! statistics.
//!
//! Three jobs:
//!
//! 1. **Formulas** ([`formulas`]): the adjusted failure ratio
//!    `β̃ = (β − γ)/(γ(β − 2) + 1)` of Section 2.3 and its Figure-1
//!    specialisation `β̃_{2/3} = (1 − 3γ)/(3 − 5γ)`, plus the η-sleepiness
//!    threshold.
//! 2. **Condition checkers** ([`conditions`]): given a concrete
//!    [`st_sim::Schedule`] and (optionally) an asynchronous window, verify
//!    the paper's Equations 1–5 round by round. Experiments use these to
//!    certify that a run's assumptions actually held (or deliberately did
//!    not, for ablations).
//! 3. **Statistics** ([`stats`]): small helpers (mean/percentile/series
//!    formatting, CSV writing) shared by the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod formulas;
pub mod stats;

pub use conditions::{check_conditions, ConditionReport};
pub use formulas::{beta_tilde, beta_tilde_two_thirds, eta_sleepiness_holds};
pub use stats::{mean, percentile, Table};
