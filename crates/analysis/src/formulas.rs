//! The paper's closed-form trade-offs.

/// The adjusted failure ratio `β̃ = (β − γ) / (γ(β − 2) + 1)`
/// (Section 2.3, Equation 2's required bound).
///
/// With churn rate `γ` per `η` rounds, a protocol whose original failure
/// ratio is `β` must lower its per-round failure tolerance to `β̃` once it
/// counts latest unexpired messages — asleep processes' stale votes hand
/// the adversary extra leverage that this discount pays for.
///
/// * `γ = 0` ⇒ `β̃ = β` (static participation costs nothing);
/// * `γ → β` ⇒ `β̃ → 0` (at churn `β` the system can stall with no
///   adversary at all);
/// * strictly decreasing in `γ` on `[0, β]`.
///
/// ```
/// use st_analysis::beta_tilde;
/// assert!((beta_tilde(1.0 / 3.0, 0.0) - 1.0 / 3.0).abs() < 1e-12);
/// assert!(beta_tilde(1.0 / 3.0, 0.2) < 1.0 / 3.0);
/// ```
pub fn beta_tilde(beta: f64, gamma: f64) -> f64 {
    (beta - gamma) / (gamma * (beta - 2.0) + 1.0)
}

/// Figure 1's specialisation for the MMR decision threshold `1 − β = 2/3`:
/// `β̃_{2/3} = (1 − 3γ) / (3 − 5γ)`.
///
/// Identical to [`beta_tilde`] at `β = 1/3`; kept as a named function
/// because Figure 1 plots exactly this curve.
pub fn beta_tilde_two_thirds(gamma: f64) -> f64 {
    (1.0 - 3.0 * gamma) / (3.0 - 5.0 * gamma)
}

/// The η-sleepiness condition of D'Amato–Zanolini (Equation 3):
/// `|H_r| > (1 − β) · |O_{r−η,r}|`.
///
/// The single all-encompassing assumption equivalent (in their framework)
/// to the explicit churn and failure bounds; Section 3.3 uses it to
/// justify the extended graded agreement's `|H_r| > 2/3·|O_r ∪ P₀|`
/// requirement.
pub fn eta_sleepiness_holds(honest_awake: usize, online_window_union: usize, beta: f64) -> bool {
    (honest_awake as f64) > (1.0 - beta) * (online_window_union as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialisation_matches_general_form() {
        for i in 0..=30 {
            let gamma = i as f64 / 100.0;
            assert!(
                (beta_tilde(1.0 / 3.0, gamma) - beta_tilde_two_thirds(gamma)).abs() < 1e-12,
                "γ = {gamma}"
            );
        }
    }

    #[test]
    fn figure_1_anchor_points() {
        // Figure 1: intercept 1/3 at γ = 0; zero at γ = 1/3.
        assert!((beta_tilde_two_thirds(0.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!(beta_tilde_two_thirds(1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_on_domain() {
        let mut prev = f64::INFINITY;
        for i in 0..=33 {
            let v = beta_tilde_two_thirds(i as f64 / 100.0);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn beta_half_instantiation() {
        // For β = 1/2 protocols (e.g. Gafni–Losa, D'Amato–Zanolini):
        // β̃ = (1/2 − γ)/(1 − 3γ/2).
        for i in 0..=45 {
            let gamma = i as f64 / 100.0;
            let expected = (0.5 - gamma) / (1.0 - 1.5 * gamma);
            assert!((beta_tilde(0.5, gamma) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn eta_sleepiness_threshold_is_strict() {
        // |H_r| must strictly exceed (1 − β)|O|: 8 of 12 at β = 1/3 fails
        // (8 = 2·12/3 exactly), 9 passes.
        assert!(!eta_sleepiness_holds(8, 12, 1.0 / 3.0));
        assert!(eta_sleepiness_holds(9, 12, 1.0 / 3.0));
    }
}
