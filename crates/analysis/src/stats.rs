//! Small statistics and table-formatting helpers for the experiment
//! binaries.

use std::fmt::Display;
use std::fs;
use std::io;
use std::path::Path;

/// Arithmetic mean; `None` for empty input.
///
/// ```
/// use st_analysis::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// The `p`-th percentile (0–100, nearest-rank); `None` for empty input.
///
/// ```
/// use st_analysis::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&xs, 50.0), Some(3.0));
/// assert_eq!(percentile(&xs, 100.0), Some(5.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Sample standard deviation; `None` with fewer than two samples.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
    Some(var.sqrt())
}

/// A simple column-aligned table that prints paper-style rows to stdout
/// and serialises to CSV for post-processing.
///
/// ```
/// use st_analysis::Table;
/// let mut t = Table::new(vec!["γ", "β̃ analytic", "β̃ measured"]);
/// t.row(vec!["0.00".into(), "0.333".into(), "0.331".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("β̃ analytic"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned textual table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Serialises to CSV (headers + rows, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV into `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[1.0]), None);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138).abs() < 0.01);
    }

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row_display(vec![2, 3]);
        let r = t.render();
        assert!(r.contains("long-header"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,long-header"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["c"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
