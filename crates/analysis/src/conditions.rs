//! Round-by-round verification of the paper's model conditions
//! (Equations 1–5) against a concrete schedule.
//!
//! The theorems hold *conditionally*: Theorem 1 under Equations 1–2 (plus
//! η-sleepiness), Theorem 2 additionally under Equations 4–5 during the
//! asynchronous window. Experiments use this checker both to certify that
//! a run's assumptions held and, in ablations, to confirm that a failing
//! run indeed violated them.

use crate::formulas::beta_tilde;
use st_sim::{AsyncWindow, Schedule};
use st_types::Round;

/// Which of the paper's conditions held over a schedule.
#[derive(Clone, Debug, Default)]
pub struct ConditionReport {
    /// Rounds violating Equation 1 (churn bound):
    /// `|H_{r−η,r−1} \ H_r| ≤ γ·|H_{r−η,r−1}|`.
    pub churn_violations: Vec<Round>,
    /// Rounds violating Equation 2 (failure ratio): `|B_r| < β̃·|O_r|`.
    pub failure_ratio_violations: Vec<Round>,
    /// Rounds violating Equation 3 (η-sleepiness):
    /// `|H_r| > (1 − β)·|O_{r−η,r}|`.
    pub eta_sleepiness_violations: Vec<Round>,
    /// Rounds in `[ra+1, ra+π+1]` violating Equation 4:
    /// `|H_ra \ B_r| > (1 − β)·|O_{r−η,r}|`.
    pub eq4_violations: Vec<Round>,
    /// Whether Equation 5 (`H_ra ⊆ H_{ra+1}`) held.
    pub eq5_holds: bool,
}

impl ConditionReport {
    /// Whether every checked condition held.
    pub fn all_hold(&self) -> bool {
        self.churn_violations.is_empty()
            && self.failure_ratio_violations.is_empty()
            && self.eta_sleepiness_violations.is_empty()
            && self.eq4_violations.is_empty()
            && self.eq5_holds
    }

    /// Whether the synchronous-operation conditions (Equations 1–3) held.
    pub fn synchronous_conditions_hold(&self) -> bool {
        self.churn_violations.is_empty()
            && self.failure_ratio_violations.is_empty()
            && self.eta_sleepiness_violations.is_empty()
    }
}

/// Checks Equations 1–5 for every round `1..=horizon` of `schedule`, with
/// protocol parameters `beta` (original failure ratio), `gamma` (churn
/// bound) and `eta` (expiration), and optionally an asynchronous window
/// for Equations 4–5.
pub fn check_conditions(
    schedule: &Schedule,
    beta: f64,
    gamma: f64,
    eta: u64,
    window: Option<AsyncWindow>,
) -> ConditionReport {
    let bt = beta_tilde(beta, gamma);
    let mut report = ConditionReport {
        eq5_holds: true,
        ..Default::default()
    };

    for r_num in 1..=schedule.horizon() {
        let r = Round::new(r_num);
        let window_lo = r.saturating_sub(eta);

        // Equation 1: churn. H_{r−η,r−1} \ H_r bounded by γ·|H_{r−η,r−1}|.
        let prev_union = schedule.honest_awake_union(window_lo, Round::new(r_num - 1));
        if !prev_union.is_empty() {
            let h_r = schedule.honest_awake(r);
            let dropped = prev_union.iter().filter(|p| !h_r.contains(p)).count();
            if (dropped as f64) > gamma * (prev_union.len() as f64) {
                report.churn_violations.push(r);
            }
        }

        // Equation 2: |B_r| < β̃·|O_r| — the comparison must treat a
        // non-finite β̃ as a violation, hence the negated form.
        let b_r = schedule.byzantine(r).len();
        let o_r = schedule.online(r).len();
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !((b_r as f64) < bt * (o_r as f64)) && (b_r > 0 || o_r == 0) {
            report.failure_ratio_violations.push(r);
        }

        // Equation 3: η-sleepiness |H_r| > (1 − β)·|O_{r−η,r}|.
        let h_r = schedule.honest_awake(r).len();
        let o_union = schedule.online_union(window_lo, r).len();
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !((h_r as f64) > (1.0 - beta) * (o_union as f64)) {
            report.eta_sleepiness_violations.push(r);
        }
    }

    if let Some(w) = window {
        let ra = w.ra();
        let h_ra = schedule.honest_awake(ra);
        // Equation 5: H_ra ⊆ H_{ra+1}.
        let h_next = schedule.honest_awake(w.start());
        report.eq5_holds = h_ra.iter().all(|p| h_next.contains(p));
        // Equation 4 for r ∈ [ra+1, ra+π+1].
        for r_num in w.start().as_u64()..=(w.end().as_u64() + 1) {
            let r = Round::new(r_num);
            let survivors = h_ra
                .iter()
                .filter(|&&p| !schedule.is_byzantine(p, r))
                .count();
            let o_union = schedule.online_union(r.saturating_sub(eta), r).len();
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !((survivors as f64) > (1.0 - beta) * (o_union as f64)) {
                report.eq4_violations.push(r);
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_sim::Schedule;

    const BETA: f64 = 1.0 / 3.0;

    #[test]
    fn full_participation_satisfies_everything() {
        let s = Schedule::full(9, 20);
        let w = AsyncWindow::new(Round::new(8), 2);
        let report = check_conditions(&s, BETA, 0.1, 4, Some(w));
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn mass_sleep_violates_churn_bound() {
        // 60% dropping at once blows any small γ.
        let s = Schedule::mass_sleep(10, 20, 0.6, 8, 12);
        let report = check_conditions(&s, BETA, 0.05, 4, None);
        assert!(!report.churn_violations.is_empty());
        // The drop round itself is flagged.
        assert!(report.churn_violations.contains(&Round::new(8)));
    }

    #[test]
    fn mass_sleep_with_eta_zero_passes_churn() {
        // η = 0 ⇒ H_{r−η,r−1} is over an empty window of *past* rounds?
        // No: with η = 0 the window [r, r−1] is empty, so Equation 1 is
        // vacuous — fully dynamic participation is allowed (Section 2.3).
        let s = Schedule::mass_sleep(10, 20, 0.6, 8, 12);
        let report = check_conditions(&s, BETA, 0.0, 0, None);
        assert!(report.churn_violations.is_empty());
    }

    #[test]
    fn too_many_byzantine_flagged() {
        // 4 of 10 Byzantine exceeds β̃ = β = 1/3 (γ = 0).
        let s = Schedule::full(10, 10).with_static_byzantine(4);
        let report = check_conditions(&s, BETA, 0.0, 0, None);
        assert!(!report.failure_ratio_violations.is_empty());
        // 3 of 10 is fine (3 < 10/3).
        let s_ok = Schedule::full(10, 10).with_static_byzantine(3);
        let report_ok = check_conditions(&s_ok, BETA, 0.0, 0, None);
        assert!(report_ok.failure_ratio_violations.is_empty());
    }

    #[test]
    fn tighter_gamma_needs_fewer_byzantine() {
        // With γ = 0.2, β̃_{2/3} = (1−0.6)/(3−1) ≈ 0.2: 3 of 10 now
        // violates Equation 2.
        let s = Schedule::full(10, 10).with_static_byzantine(3);
        let report = check_conditions(&s, BETA, 0.2, 4, None);
        assert!(!report.failure_ratio_violations.is_empty());
    }

    #[test]
    fn eta_sleepiness_violated_by_deep_drop() {
        // Dropping to 3 awake of 10 online-union breaks |H_r| > 2/3|O|.
        let s = Schedule::mass_sleep(10, 20, 0.7, 8, 12);
        let report = check_conditions(&s, BETA, 0.0, 2, None);
        assert!(!report.eta_sleepiness_violations.is_empty());
    }

    #[test]
    fn eq5_detects_sleeper_at_window_edge() {
        // p9 awake at ra = 5 but asleep at ra+1 = 6: Equation 5 fails.
        let mut awake = vec![vec![true; 10]; 21];
        awake[6][9] = false;
        let s = Schedule::custom(awake);
        let w = AsyncWindow::new(Round::new(6), 2);
        let report = check_conditions(&s, BETA, 0.0, 4, Some(w));
        assert!(!report.eq5_holds);
    }

    #[test]
    fn eq4_detects_corruption_of_h_ra() {
        // Corrupt 4 of 9 of H_ra during the window: survivors 5 of 9
        // online fails 5 > 6.
        let s = Schedule::full(9, 20)
            .with_corrupted(st_types::ProcessId::new(0), Round::new(9))
            .with_corrupted(st_types::ProcessId::new(1), Round::new(9))
            .with_corrupted(st_types::ProcessId::new(2), Round::new(9))
            .with_corrupted(st_types::ProcessId::new(3), Round::new(9));
        let w = AsyncWindow::new(Round::new(9), 2);
        let report = check_conditions(&s, BETA, 0.0, 2, Some(w));
        assert!(!report.eq4_violations.is_empty());
    }
}
