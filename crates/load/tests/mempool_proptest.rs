//! Property-based tests: admission never exceeds capacity, accounting
//! always balances, and the fairness cap never starves a client that is
//! under its fair share.

use proptest::prelude::*;
use st_load::Mempool;

/// Decoded mempool operation. Raw `(kind, client, round)` tuples from
/// the strategy decode as: kind 0–3 → offer (offers dominate the mix),
/// 4 → drain, 5 → hold-over.
enum Op {
    Offer { client: usize, round: u64 },
    Drain { max: usize },
    HoldOver,
}

fn decode(kind: u8, client: usize, round: u64) -> Op {
    match kind % 6 {
        4 => Op::Drain { max: client % 8 },
        5 => Op::HoldOver,
        _ => Op::Offer { client, round },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of offers, drains, and hold-overs the
    /// queue never exceeds capacity, the high-water mark is honest, and
    /// every offered transaction is accounted for exactly once.
    #[test]
    fn occupancy_and_accounting_invariants(
        capacity in 0usize..32,
        clients in 1usize..6,
        ops in prop::collection::vec((0u8..6, 0usize..6, 0u64..64), 1..120),
    ) {
        let mut mp = Mempool::new(capacity, clients);
        for (kind, client, round) in ops {
            match decode(kind, client, round) {
                Op::Offer { client, round } => {
                    mp.offer(client, round);
                }
                Op::Drain { max } => {
                    let batch = mp.drain(max);
                    prop_assert!(batch.len() <= max);
                }
                Op::HoldOver => mp.hold_over(),
            }
            prop_assert!(mp.len() <= mp.capacity());
            let s = mp.stats();
            prop_assert!(s.high_water <= mp.capacity());
            prop_assert_eq!(
                s.offered,
                s.admitted + s.dropped_capacity + s.dropped_fairness + s.dropped_asleep
            );
            prop_assert_eq!(s.admitted - s.drained, mp.len() as u64);
        }
    }

    /// With `capacity ≥ clients`, a client holding fewer than its fair
    /// share of queued transactions is never rejected — however hard
    /// the other clients flood. (Fair share is `⌊capacity/clients⌋`,
    /// so the shares always fit inside capacity together.)
    #[test]
    fn fair_share_client_is_never_starved(
        clients in 1usize..6,
        extra in 0usize..16,
        flood in prop::collection::vec((0usize..6, 0u64..32), 0..200),
        quiet_offers in 1u64..8,
    ) {
        let capacity = clients + extra;
        let mut mp = Mempool::new(capacity, clients);
        let quiet = clients - 1;
        // Everyone else floods as much as they like.
        for (client, round) in flood {
            if client % clients != quiet {
                mp.offer(client % clients, round);
            }
        }
        // The quiet client now claims its fair share, one tx at a time.
        let mut held = 0u64;
        for i in 0..quiet_offers {
            if held < mp.fairness_cap() {
                prop_assert!(
                    mp.offer(quiet, 40 + i),
                    "quiet client rejected below fair share ({} of {})",
                    held,
                    mp.fairness_cap()
                );
                held += 1;
            }
        }
    }
}
