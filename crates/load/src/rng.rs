//! SplitMix64 — the crate's only randomness source.
//!
//! Chosen because it is tiny, statistically solid for workload shaping,
//! and — unlike a shared thread-local or a hasher-derived stream — a
//! pure function of an explicit seed, which is what the workspace's
//! determinism discipline requires of anything that feeds a committed
//! report.

/// One application of the SplitMix64 output function: a well-mixed
/// 64-bit value from a 64-bit input. Stateless form of [`SplitMix64`],
/// for callers that key randomness by `(seed, round)` instead of
/// walking a stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sequential SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform-ish in `0..bound` (`0` when `bound == 0`).
    /// Modulo bias is irrelevant at workload-shaping granularity.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Distinct seeds diverge immediately.
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
        // The stateless form matches the reference constants.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..100 {
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(r.next_below(0), 0);
    }
}
