//! Exact latency percentiles over submit→decide round counts.
//!
//! Round latencies are small integers and experiment populations are at
//! most tens of thousands of samples, so there is no reason to accept
//! bucketing error or sampling noise: the histogram keeps every value
//! and computes **exact nearest-rank percentiles** from a single sort.

/// An exact histogram of round latencies. `record` is O(1); `stats`
/// sorts once.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    values: Vec<u64>,
}

/// Summary statistics of a [`Histogram`]. Percentiles are `None` when
/// no samples were recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact nearest-rank 50th percentile.
    pub p50: Option<u64>,
    /// Exact nearest-rank 90th percentile.
    pub p90: Option<u64>,
    /// Exact nearest-rank 99th percentile.
    pub p99: Option<u64>,
    /// Arithmetic mean.
    pub mean: Option<f64>,
    /// Largest sample.
    pub max: Option<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// The exact nearest-rank percentile: the smallest recorded value
    /// such that at least `p` percent of samples are ≤ it
    /// (`rank = ⌈p/100 · n⌉`, 1-indexed). `None` on an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, n) - 1])
    }

    /// All summary statistics, from one sort.
    pub fn stats(&self) -> LatencyStats {
        if self.values.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let at = |p: f64| {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            Some(sorted[rank.clamp(1, n) - 1])
        };
        let sum: u64 = sorted.iter().sum();
        LatencyStats {
            count: n as u64,
            p50: at(50.0),
            p90: at(90.0),
            p99: at(99.0),
            mean: Some(sum as f64 / n as f64),
            max: sorted.last().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ranks_on_one_to_hundred() {
        let mut h = Histogram::new();
        // Insertion order must not matter.
        for v in (1..=100).rev() {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(90.0), Some(90));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(h.percentile(1.0), Some(1));
        let s = h.stats();
        assert_eq!(
            (s.p50, s.p90, s.p99, s.max),
            (Some(50), Some(90), Some(99), Some(100))
        );
        assert_eq!(s.mean, Some(50.5));
    }

    #[test]
    fn nearest_rank_rounds_up() {
        // n = 4: p50 → rank ⌈2⌉ = 2, p90 → rank ⌈3.6⌉ = 4.
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(20));
        assert_eq!(h.percentile(90.0), Some(40));
        // p0 clamps to the first rank rather than underflowing.
        assert_eq!(h.percentile(0.0), Some(10));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.stats(), LatencyStats::default());
    }

    #[test]
    fn singleton_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(7);
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7), "p{p}");
        }
        let s = h.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, Some(7.0));
        assert_eq!(s.max, Some(7));
    }

    #[test]
    fn duplicates_and_skew() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000); // one straggler
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(99.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(1000));
        assert_eq!(h.stats().max, Some(1000));
    }
}
