//! The open-loop workload layer: deterministic traffic generators, a
//! bounded admission mempool, and exact latency percentiles.
//!
//! The simulator's historic `txs_every` knob injects one transaction
//! every `k` rounds — enough to measure *inclusion*, useless for asking
//! what an operator cares about: **throughput-latency curves under
//! offered load**. This crate supplies the three missing pieces:
//!
//! * [`Workload`] — an *open-loop* generator: per-round, per-client
//!   transaction arrival counts that do not depend on how fast the
//!   system drains them (arrivals keep coming whether or not consensus
//!   keeps up, which is what makes saturation knees visible).
//!   Implementations: [`ConstantRate`] (cumulative-rational rate, so
//!   `1/k` per round reproduces the legacy `txs_every` trace exactly),
//!   [`FlashCrowd`] (burst windows layered on a base rate, optionally
//!   jittered by [`SplitMix64`]), and [`Diurnal`] (a cosine day/night
//!   wave whose [`Workload::load_fraction`] doubles as a participation
//!   trace — "users sleeping at night" literally drives the sleepy
//!   model when the simulator derives its `Schedule` from it).
//! * [`Mempool`] — bounded admission between the generator and
//!   `submit_tx`: a capacity cap, a per-client fairness cap, FIFO
//!   batched draining, and full drop/hold-over accounting
//!   ([`MempoolStats`]).
//! * [`Histogram`] — submit→decide round latencies with **exact**
//!   nearest-rank percentiles (sorted values, no sampling, no buckets).
//!
//! # Determinism contract
//!
//! Everything here is a pure function of its inputs: no wall clock, no
//! global state, no platform-dependent iteration order, and the only
//! randomness is the explicitly seeded [`SplitMix64`]. Two runs with
//! the same configuration produce byte-identical traces — the property
//! the simulator's equivalence suites and the `stsan` hasher sanitizer
//! assert across the whole stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod mempool;
mod rng;
mod workload;

pub use latency::{Histogram, LatencyStats};
pub use mempool::{Mempool, MempoolStats, PendingTx};
pub use rng::{splitmix64, SplitMix64};
pub use workload::{ConstantRate, Diurnal, FlashCrowd, Workload};
