//! Open-loop traffic generators.
//!
//! A [`Workload`] answers one question per round: *how many new
//! transactions does each client hand the system?* The answer is a pure
//! function of `(round, client)` — open-loop, so arrivals never slow
//! down because the system is congested. Rate-to-count conversion is
//! done with **cumulative integer arithmetic** (`⌊r·num/den⌋` deltas)
//! rather than per-round floating-point rounding, so fractional rates
//! distribute exactly: `1/k` per round yields one arrival at every
//! round divisible by `k` — bit-for-bit the trace of the simulator's
//! legacy `txs_every(k)` knob, which is what makes the shim
//! byte-equivalence guard possible.

use crate::rng::SplitMix64;

/// An open-loop workload: per-round, per-client transaction arrivals.
pub trait Workload {
    /// Short generator name (lands in reports and bench tables).
    fn name(&self) -> &str;

    /// Number of distinct traffic-generating clients.
    fn clients(&self) -> usize;

    /// Transactions client `client` injects at round `round`. Must be a
    /// pure function of its arguments.
    fn arrivals(&self, round: u64, client: usize) -> u64;

    /// The offered-load profile as a fraction of peak, in `[0, 1]`.
    /// Workloads with a participation story (diurnal traces) override
    /// this; the simulator derives a sleepy-model `Schedule` from it so
    /// workload and participation stay coupled by construction.
    fn load_fraction(&self, round: u64) -> f64 {
        let _ = round;
        1.0
    }
}

/// Global arrival index split: of the first `total` transactions ever
/// generated, how many belong to client `c` under round-robin
/// assignment (transaction `i` → client `(i − 1) mod clients`)?
fn round_robin_share(total: u64, clients: u64, c: u64) -> u64 {
    if total > c {
        (total - c).div_ceil(clients)
    } else {
        0
    }
}

/// A constant offered rate of `num/den` transactions per round,
/// spread round-robin across the configured clients.
#[derive(Clone, Debug)]
pub struct ConstantRate {
    num: u64,
    den: u64,
    clients: usize,
}

impl ConstantRate {
    /// `rate` transactions per round.
    pub fn per_round(rate: u64) -> ConstantRate {
        ConstantRate::rational(rate, 1)
    }

    /// One transaction every `k` rounds — the exact arrival trace of the
    /// legacy `txs_every(k)` knob (an arrival at each round `r > 0` with
    /// `r % k == 0`, none elsewhere).
    pub fn every(k: u64) -> ConstantRate {
        ConstantRate::rational(1, k.max(1))
    }

    /// `num/den` transactions per round, as an exact rational rate.
    pub fn rational(num: u64, den: u64) -> ConstantRate {
        ConstantRate {
            num,
            den: den.max(1),
            clients: 1,
        }
    }

    /// Spreads the same total rate across `clients` clients
    /// (round-robin by global arrival index).
    #[must_use]
    pub fn clients(mut self, clients: usize) -> ConstantRate {
        self.clients = clients.max(1);
        self
    }

    /// Total arrivals in rounds `1..=round` (cumulative floor — the
    /// integer form that distributes fractional rates exactly).
    fn cumulative(&self, round: u64) -> u64 {
        ((round as u128 * self.num as u128) / self.den as u128) as u64
    }
}

impl Workload for ConstantRate {
    fn name(&self) -> &str {
        "constant-rate"
    }

    fn clients(&self) -> usize {
        self.clients
    }

    fn arrivals(&self, round: u64, client: usize) -> u64 {
        if round == 0 || client >= self.clients {
            return 0;
        }
        let (cl, c) = (self.clients as u64, client as u64);
        round_robin_share(self.cumulative(round), cl, c)
            - round_robin_share(self.cumulative(round - 1), cl, c)
    }
}

/// One burst window of a [`FlashCrowd`].
#[derive(Clone, Copy, Debug)]
struct Burst {
    start: u64,
    len: u64,
    rate: u64,
}

/// A base rate with flash-crowd burst windows layered on top: during
/// `[start, start + len)` every round offers `rate` extra transactions
/// (optionally jittered, deterministically from a seed).
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    base: ConstantRate,
    bursts: Vec<Burst>,
    jitter_seed: Option<u64>,
}

impl FlashCrowd {
    /// A flash-crowd workload over a base rate of `base_rate`
    /// transactions per round.
    pub fn new(base_rate: u64) -> FlashCrowd {
        FlashCrowd {
            base: ConstantRate::per_round(base_rate),
            bursts: Vec::new(),
            jitter_seed: None,
        }
    }

    /// Spreads the load across `clients` clients.
    #[must_use]
    pub fn clients(mut self, clients: usize) -> FlashCrowd {
        self.base = self.base.clients(clients);
        self
    }

    /// Adds a burst window: `rate` extra transactions per round for
    /// `len` rounds starting at `start`.
    #[must_use]
    pub fn burst(mut self, start: u64, len: u64, rate: u64) -> FlashCrowd {
        self.bursts.push(Burst { start, len, rate });
        self
    }

    /// Perturbs each burst round's extra arrivals by up to ±25 %,
    /// deterministically keyed on `(seed, round)` via [`SplitMix64`] —
    /// ragged crowd edges without giving up reproducibility.
    #[must_use]
    pub fn jitter(mut self, seed: u64) -> FlashCrowd {
        self.jitter_seed = Some(seed);
        self
    }

    /// Total extra arrivals the burst windows inject at `round`.
    fn burst_total(&self, round: u64) -> u64 {
        let mut total = 0u64;
        for b in &self.bursts {
            if round >= b.start && round < b.start + b.len {
                let mut rate = b.rate;
                if let Some(seed) = self.jitter_seed {
                    let span = (b.rate / 2).max(1); // ±25 % of rate
                    let draw = SplitMix64::new(seed ^ round.wrapping_mul(0x9e37_79b9))
                        .next_below(span + 1);
                    rate = b.rate - b.rate / 4 + draw;
                }
                total += rate;
            }
        }
        total
    }
}

impl Workload for FlashCrowd {
    fn name(&self) -> &str {
        "flash-crowd"
    }

    fn clients(&self) -> usize {
        self.base.clients
    }

    fn arrivals(&self, round: u64, client: usize) -> u64 {
        if round == 0 || client >= self.base.clients {
            return 0;
        }
        // Burst extras are split per round (first clients carry the
        // remainder) — a per-round split, unlike the base's cumulative
        // one, because bursts are local events, not long-run rates.
        let (cl, c) = (self.base.clients as u64, client as u64);
        self.base.arrivals(round, client) + round_robin_share(self.burst_total(round), cl, c)
    }
}

/// A diurnal (day/night) wave: offered load follows the same cosine the
/// simulator's oscillating participation schedule uses, peaking at
/// `peak_rate` transactions per round and bottoming out at
/// `peak_rate · min_frac`. [`Workload::load_fraction`] exposes the wave
/// so a `Schedule` can be derived from the *same* trace — users asleep
/// at night are users not submitting transactions.
#[derive(Clone, Debug)]
pub struct Diurnal {
    peak_rate: u64,
    min_frac: f64,
    period: u64,
    clients: usize,
}

impl Diurnal {
    /// A wave peaking at `peak_rate` tx/round, dipping to
    /// `peak_rate · min_frac`, with the given period in rounds.
    pub fn new(peak_rate: u64, min_frac: f64, period: u64) -> Diurnal {
        Diurnal {
            peak_rate,
            min_frac: min_frac.clamp(0.0, 1.0),
            period: period.max(2),
            clients: 1,
        }
    }

    /// Spreads the load across `clients` clients.
    #[must_use]
    pub fn clients(mut self, clients: usize) -> Diurnal {
        self.clients = clients.max(1);
        self
    }

    /// The wave's period in rounds.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The cosine wave value at `round` — the same formula as the
    /// simulator's oscillating schedule, so a participation trace
    /// derived from this workload matches `Schedule::oscillating`
    /// awake-set for awake-set.
    fn frac(&self, round: u64) -> f64 {
        let phase = (round % self.period) as f64 / self.period as f64 * std::f64::consts::TAU;
        self.min_frac + (1.0 - self.min_frac) * (0.5 + 0.5 * phase.cos())
    }
}

impl Workload for Diurnal {
    fn name(&self) -> &str {
        "diurnal"
    }

    fn clients(&self) -> usize {
        self.clients
    }

    fn arrivals(&self, round: u64, client: usize) -> u64 {
        if round == 0 || client >= self.clients {
            return 0;
        }
        let total = (self.peak_rate as f64 * self.frac(round)).round() as u64;
        round_robin_share(total, self.clients as u64, client as u64)
    }

    fn load_fraction(&self, round: u64) -> f64 {
        self.frac(round).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(w: &impl Workload, round: u64) -> u64 {
        (0..w.clients()).map(|c| w.arrivals(round, c)).sum()
    }

    #[test]
    fn every_k_reproduces_the_legacy_trace() {
        let w = ConstantRate::every(4);
        assert_eq!(w.name(), "constant-rate");
        for r in 0..=40 {
            let expected = u64::from(r > 0 && r % 4 == 0);
            assert_eq!(w.arrivals(r, 0), expected, "round {r}");
        }
    }

    #[test]
    fn per_round_rate_is_exact() {
        let w = ConstantRate::per_round(3);
        assert_eq!(w.arrivals(0, 0), 0, "round 0 never offers load");
        for r in 1..=20 {
            assert_eq!(w.arrivals(r, 0), 3);
        }
    }

    #[test]
    fn rational_rate_distributes_without_drift() {
        // 2/3 per round: cumulative floor means totals never drift from
        // ⌊2r/3⌋ and per-round arrivals are always 0 or 1.
        let w = ConstantRate::rational(2, 3);
        let mut cum = 0;
        for r in 1..=30 {
            let a = w.arrivals(r, 0);
            assert!(a <= 1);
            cum += a;
            assert_eq!(cum, 2 * r / 3);
        }
    }

    #[test]
    fn client_split_conserves_the_total() {
        let w = ConstantRate::per_round(5).clients(3);
        // The inherent builder method shadows the trait getter on the
        // concrete type, so name the trait explicitly.
        assert_eq!(Workload::clients(&w), 3);
        let mut per_client = vec![0u64; 3];
        for r in 1..=12 {
            assert_eq!(total(&w, r), 5, "round {r}");
            for (c, acc) in per_client.iter_mut().enumerate() {
                *acc += w.arrivals(r, c);
            }
        }
        // Round-robin keeps clients within one tx of each other.
        let (min, max) = (per_client.iter().min(), per_client.iter().max());
        assert!(max.unwrap() - min.unwrap() <= 1, "{per_client:?}");
        // Out-of-range clients contribute nothing.
        assert_eq!(w.arrivals(5, 3), 0);
    }

    #[test]
    fn flash_crowd_bursts_on_schedule() {
        let w = FlashCrowd::new(1).burst(10, 3, 6);
        assert_eq!(w.name(), "flash-crowd");
        assert_eq!(total(&w, 9), 1);
        for r in 10..13 {
            assert_eq!(total(&w, r), 7, "round {r}");
        }
        assert_eq!(total(&w, 13), 1);
        // Multi-client split conserves the burst.
        let w = FlashCrowd::new(1).clients(2).burst(10, 3, 6);
        assert_eq!(total(&w, 11), 7);
    }

    #[test]
    fn flash_crowd_jitter_is_deterministic_and_bounded() {
        let a = FlashCrowd::new(0).burst(5, 10, 8).jitter(99);
        let b = FlashCrowd::new(0).burst(5, 10, 8).jitter(99);
        for r in 5..15 {
            let x = total(&a, r);
            assert_eq!(x, total(&b, r), "round {r}");
            // rate − rate/4 ≤ jittered ≤ rate − rate/4 + rate/2
            assert!((6..=10).contains(&x), "round {r}: {x}");
        }
        // A different seed produces a different ragged edge somewhere.
        let c = FlashCrowd::new(0).burst(5, 10, 8).jitter(100);
        assert!((5..15).any(|r| total(&a, r) != total(&c, r)));
    }

    #[test]
    fn diurnal_wave_peaks_and_troughs() {
        let w = Diurnal::new(10, 0.2, 8);
        assert_eq!(w.name(), "diurnal");
        assert_eq!(w.period(), 8);
        // Phase 0 is the peak, half-period the trough.
        assert_eq!(total(&w, 8), 10);
        assert_eq!(total(&w, 12), 2);
        assert!((w.load_fraction(8) - 1.0).abs() < 1e-9);
        assert!((w.load_fraction(12) - 0.2).abs() < 1e-9);
        // The wave is periodic and bounded.
        for r in 1..=32 {
            let t = total(&w, r);
            assert!((2..=10).contains(&t), "round {r}: {t}");
            assert_eq!(t, total(&w, r + 8));
        }
        // Client split conserves the wave.
        let w3 = Diurnal::new(10, 0.2, 8).clients(3);
        for r in 1..=16 {
            assert_eq!(total(&w3, r), total(&w, r));
        }
    }

    #[test]
    fn default_load_fraction_is_flat() {
        let w = ConstantRate::per_round(2);
        assert!((w.load_fraction(0) - 1.0).abs() < 1e-12);
        assert!((w.load_fraction(17) - 1.0).abs() < 1e-12);
    }
}
