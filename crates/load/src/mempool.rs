//! Bounded admission mempool between a [`Workload`](crate::Workload)
//! and the protocol's `submit_tx`.
//!
//! Open-loop generators keep offering load whether or not consensus
//! keeps up, so *something* has to give when the system saturates. The
//! mempool is where it gives, visibly: a hard capacity cap, a per-client
//! fairness cap (one flash-crowd client cannot evict everyone else's
//! traffic), FIFO batched draining (the service rate), and exact
//! accounting of every offered transaction's fate ([`MempoolStats`]).

/// A transaction waiting in the mempool: which client offered it, and
/// at which round it arrived (the timestamp latency is measured from).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingTx {
    /// Index of the offering client.
    pub client: usize,
    /// Round the transaction arrived at the mempool.
    pub arrived: u64,
}

/// Where every offered transaction went. All counters are cumulative
/// over the mempool's lifetime; `offered` is the sum of `admitted` and
/// the three drop counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions the workload offered.
    pub offered: u64,
    /// Transactions admitted to the queue.
    pub admitted: u64,
    /// Drops because the queue was at capacity.
    pub dropped_capacity: u64,
    /// Drops because the client was at its fairness cap.
    pub dropped_fairness: u64,
    /// Drops because no honest process was awake to receive the
    /// transaction (legacy `txs_every` semantics only).
    pub dropped_asleep: u64,
    /// Transactions drained into `submit_tx`.
    pub drained: u64,
    /// Queue-rounds spent held over because no proposer was awake
    /// (each waiting tx counts once per skipped round).
    pub held_over: u64,
    /// Maximum queue occupancy ever observed.
    pub high_water: usize,
}

/// A bounded FIFO mempool with per-client fairness admission.
#[derive(Clone, Debug)]
pub struct Mempool {
    queue: Vec<PendingTx>,
    per_client: Vec<u64>,
    capacity: usize,
    fairness_cap: u64,
    stats: MempoolStats,
}

impl Mempool {
    /// A mempool holding at most `capacity` transactions, shared by
    /// `clients` clients. The default fairness cap is an equal share,
    /// `max(1, capacity / clients)`: with `capacity ≥ clients` no
    /// client with less than its share queued is ever rejected.
    pub fn new(capacity: usize, clients: usize) -> Mempool {
        let clients = clients.max(1);
        let fairness_cap = ((capacity / clients) as u64).max(1);
        Mempool::with_fairness_cap(capacity, clients, fairness_cap)
    }

    /// A mempool with an explicit per-client fairness cap.
    pub fn with_fairness_cap(capacity: usize, clients: usize, fairness_cap: u64) -> Mempool {
        Mempool {
            queue: Vec::new(),
            per_client: vec![0; clients.max(1)],
            capacity,
            fairness_cap: fairness_cap.max(1),
            stats: MempoolStats::default(),
        }
    }

    /// Offers one transaction from `client` at round `round`. Returns
    /// whether it was admitted; rejections are counted by cause.
    pub fn offer(&mut self, client: usize, round: u64) -> bool {
        self.stats.offered += 1;
        if self.queue.len() >= self.capacity {
            self.stats.dropped_capacity += 1;
            return false;
        }
        let client = client.min(self.per_client.len() - 1);
        if self.per_client[client] >= self.fairness_cap {
            self.stats.dropped_fairness += 1;
            return false;
        }
        self.per_client[client] += 1;
        self.queue.push(PendingTx {
            client,
            arrived: round,
        });
        self.stats.admitted += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
        true
    }

    /// Counts an arrival that was dropped before admission because no
    /// honest process was awake — the legacy `txs_every` behaviour,
    /// where a transaction offered to an empty room simply never
    /// existed. Only the legacy shim calls this.
    pub fn note_asleep_drop(&mut self) {
        self.stats.offered += 1;
        self.stats.dropped_asleep += 1;
    }

    /// Drains up to `max` transactions in FIFO order — the per-round
    /// service batch handed to `submit_tx`.
    pub fn drain(&mut self, max: usize) -> Vec<PendingTx> {
        let take = max.min(self.queue.len());
        let batch: Vec<PendingTx> = self.queue.drain(..take).collect();
        for tx in &batch {
            self.per_client[tx.client] -= 1;
        }
        self.stats.drained += batch.len() as u64;
        batch
    }

    /// Records a round in which nothing could be drained because no
    /// proposer was awake; every queued transaction waits one more
    /// round.
    pub fn hold_over(&mut self) {
        self.stats.held_over += self.queue.len() as u64;
    }

    /// Current queue occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The capacity cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-client fairness cap.
    pub fn fairness_cap(&self) -> u64 {
        self.fairness_cap
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_fifo_and_drains_in_order() {
        let mut mp = Mempool::new(8, 2);
        assert!(mp.offer(0, 1));
        assert!(mp.offer(1, 1));
        assert!(mp.offer(0, 2));
        assert_eq!(mp.len(), 3);
        let batch = mp.drain(2);
        assert_eq!(
            batch,
            vec![
                PendingTx {
                    client: 0,
                    arrived: 1
                },
                PendingTx {
                    client: 1,
                    arrived: 1
                },
            ]
        );
        assert_eq!(mp.len(), 1);
        assert!(!mp.is_empty());
        let s = mp.stats();
        assert_eq!((s.offered, s.admitted, s.drained), (3, 3, 2));
    }

    #[test]
    fn capacity_cap_drops_and_counts() {
        let mut mp = Mempool::with_fairness_cap(2, 1, u64::MAX);
        assert!(mp.offer(0, 1));
        assert!(mp.offer(0, 1));
        assert!(!mp.offer(0, 1));
        assert_eq!(mp.stats().dropped_capacity, 1);
        assert_eq!(mp.len(), mp.capacity());
        // Draining frees space again.
        mp.drain(1);
        assert!(mp.offer(0, 2));
    }

    #[test]
    fn fairness_cap_shields_the_quiet_client() {
        // capacity 4, 2 clients → fair share 2 each.
        let mut mp = Mempool::new(4, 2);
        assert_eq!(mp.fairness_cap(), 2);
        assert!(mp.offer(0, 1));
        assert!(mp.offer(0, 1));
        assert!(!mp.offer(0, 1), "client 0 is at its share");
        // Client 1 still gets its full share despite client 0's flood.
        assert!(mp.offer(1, 1));
        assert!(mp.offer(1, 1));
        let s = mp.stats();
        assert_eq!(s.dropped_fairness, 1);
        assert_eq!(s.admitted, 4);
        // Draining client 0's txs releases its fairness budget.
        mp.drain(2);
        assert!(mp.offer(0, 2));
    }

    #[test]
    fn hold_over_and_asleep_accounting() {
        let mut mp = Mempool::new(8, 1);
        mp.offer(0, 1);
        mp.offer(0, 1);
        mp.hold_over();
        mp.hold_over();
        assert_eq!(mp.stats().held_over, 4);
        mp.note_asleep_drop();
        let s = mp.stats();
        assert_eq!(s.dropped_asleep, 1);
        assert_eq!(s.offered, 3);
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn degenerate_shapes_stay_sane() {
        // Zero clients is treated as one; zero capacity drops all.
        let mut mp = Mempool::new(0, 0);
        assert_eq!(mp.fairness_cap(), 1);
        assert!(!mp.offer(0, 1));
        assert_eq!(mp.stats().dropped_capacity, 1);
        assert!(mp.drain(5).is_empty());
        // Out-of-range client indices clamp instead of panicking.
        let mut mp = Mempool::new(4, 2);
        assert!(mp.offer(17, 1));
        assert_eq!(mp.drain(1)[0].client, 1);
    }
}
