//! Property-based tests: the binary-lifting ancestry structure must agree
//! with naive parent-walking on randomly grown trees.

use proptest::prelude::*;
use st_blocktree::{Block, BlockTree};
use st_types::{BlockId, ProcessId, TxId, View};

/// Grows a random tree: each step attaches a new block to a uniformly
/// chosen existing block. Returns the tree and all ids (genesis first).
fn grow_tree(choices: &[u8]) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    for (i, &c) in choices.iter().enumerate() {
        let parent = ids[c as usize % ids.len()];
        let block = Block::build(
            parent,
            View::new(i as u64 + 1),
            ProcessId::new(c as u32),
            vec![TxId::new(i as u64)],
        );
        let id = tree.insert(block).unwrap();
        ids.push(id);
    }
    (tree, ids)
}

/// Naive ancestor check by walking parent pointers.
fn naive_is_ancestor(tree: &BlockTree, a: BlockId, b: BlockId) -> bool {
    let mut cur = Some(b);
    while let Some(c) = cur {
        if c == a {
            return true;
        }
        cur = tree.parent(c);
    }
    false
}

/// Naive LCA via ancestor sets.
fn naive_lca(tree: &BlockTree, a: BlockId, b: BlockId) -> BlockId {
    let ancestors_a: Vec<BlockId> = tree.chain(a).collect();
    let mut cur = Some(b);
    while let Some(c) = cur {
        if ancestors_a.contains(&c) {
            return c;
        }
        cur = tree.parent(c);
    }
    BlockId::GENESIS
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn is_ancestor_matches_naive(choices in prop::collection::vec(any::<u8>(), 1..60)) {
        let (tree, ids) = grow_tree(&choices);
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(
                    tree.is_ancestor(a, b),
                    naive_is_ancestor(&tree, a, b),
                    "a={:?} b={:?}", a, b
                );
            }
        }
    }

    #[test]
    fn lca_matches_naive(choices in prop::collection::vec(any::<u8>(), 1..60)) {
        let (tree, ids) = grow_tree(&choices);
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(
                    tree.lca(a, b),
                    Some(naive_lca(&tree, a, b)),
                    "a={:?} b={:?}", a, b
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric_and_reflexive(choices in prop::collection::vec(any::<u8>(), 1..40)) {
        let (tree, ids) = grow_tree(&choices);
        for &a in &ids {
            prop_assert!(tree.compatible(a, a));
            for &b in &ids {
                prop_assert_eq!(tree.compatible(a, b), tree.compatible(b, a));
                prop_assert_eq!(tree.conflicting(a, b), !tree.compatible(a, b));
            }
        }
    }

    #[test]
    fn height_equals_chain_length(choices in prop::collection::vec(any::<u8>(), 1..60)) {
        let (tree, ids) = grow_tree(&choices);
        for &a in &ids {
            let h = tree.height(a).unwrap();
            prop_assert_eq!(h + 1, tree.chain(a).count() as u64);
        }
    }

    #[test]
    fn lcp_is_prefix_of_all_inputs(choices in prop::collection::vec(any::<u8>(), 1..40)) {
        let (tree, ids) = grow_tree(&choices);
        let lcp = tree.longest_common_prefix(ids.iter().copied()).unwrap();
        for &a in &ids {
            prop_assert!(tree.is_ancestor(lcp, a));
        }
        // And it is the deepest such: no child of lcp is an ancestor of all.
        for &c in &ids {
            if tree.parent(c) == Some(lcp) {
                prop_assert!(ids.iter().any(|&a| !tree.is_ancestor(c, a)));
            }
        }
    }

    #[test]
    fn absorb_is_union(
        left in prop::collection::vec(any::<u8>(), 1..30),
        right in prop::collection::vec(any::<u8>(), 1..30),
    ) {
        let (mut a, ids_a) = grow_tree(&left);
        let (b, ids_b) = grow_tree(&right);
        a.absorb(&b);
        for &id in ids_a.iter().chain(ids_b.iter()) {
            prop_assert!(a.contains(id));
        }
    }
}
