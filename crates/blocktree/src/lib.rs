//! Block tree: the log substrate of the total-order broadcast protocol.
//!
//! The paper represents the protocol's subject matter as *logs* — finite
//! sequences of blocks, each block referencing a parent (Definition 1).
//! Because every block names its parent, the set of all logs forms a tree
//! rooted at the genesis block `b₀`, and a log is identified by its tip
//! block. Two logs are *compatible* when one is a prefix of the other,
//! i.e. when one tip is an ancestor-or-equal of the other.
//!
//! The crate provides:
//!
//! * [`Block`] — a block with parent reference, producing view/process and
//!   transaction payload, content-addressed by a deterministic hash;
//! * [`BlockTree`] — an append-only store with O(log h) ancestor queries
//!   (binary lifting), LCA, chain iteration, and longest-common-prefix of a
//!   set of tips (needed by graded-agreement validity);
//! * [`BlockTreeError`] — structural validation errors.
//!
//! The *vote-counting* semantics ("a vote for Λ′ counts as a vote for every
//! prefix Λ", Figure 2) is built on these primitives by the `st-ga` crate.
//!
//! # Example
//!
//! ```
//! use st_blocktree::{Block, BlockTree};
//! use st_types::{BlockId, ProcessId, View};
//!
//! let mut tree = BlockTree::new();
//! let b1 = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
//! let id1 = tree.insert(b1)?;
//! let b2 = Block::build(id1, View::new(2), ProcessId::new(1), vec![]);
//! let id2 = tree.insert(b2)?;
//!
//! assert!(tree.is_ancestor(BlockId::GENESIS, id2));
//! assert!(tree.compatible(id1, id2));
//! assert_eq!(tree.height(id2), Some(2));
//! # Ok::<(), st_blocktree::BlockTreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod tree;

pub use block::Block;
pub use error::BlockTreeError;
pub use tree::{BlockTree, ChainIter};
