//! Blocks: batches of transactions with a parent reference.

use serde::{Deserialize, Serialize};
use st_crypto::Hasher64;
use st_types::{BlockId, ProcessId, TxId, View};
use std::fmt;

/// A block: a batch of transactions plus a reference to a parent block
/// (Definition 1 of the paper). Content-addressed: the [`BlockId`] is a
/// deterministic hash of `(parent, view, producer, payload)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    id: BlockId,
    parent: BlockId,
    view: View,
    producer: ProcessId,
    payload: Vec<TxId>,
}

impl Block {
    /// Builds a block extending `parent`, produced by `producer` for
    /// `view`, carrying `payload`. The id is computed from the contents.
    ///
    /// ```
    /// use st_blocktree::Block;
    /// use st_types::{BlockId, ProcessId, TxId, View};
    /// let b = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![TxId::new(9)]);
    /// assert_eq!(b.parent(), BlockId::GENESIS);
    /// assert_eq!(b.payload(), &[TxId::new(9)]);
    /// ```
    pub fn build(parent: BlockId, view: View, producer: ProcessId, payload: Vec<TxId>) -> Block {
        let mut h = Hasher64::with_domain("st/block")
            .chain_u64(parent.as_u64())
            .chain_u64(view.as_u64())
            .chain_u64(producer.as_u32() as u64);
        for tx in &payload {
            h.update_u64(tx.as_u64());
        }
        let mut id = h.finish();
        // Reserve hash value 0 for genesis: remap the (astronomically
        // unlikely) collision.
        if id == BlockId::GENESIS.as_u64() {
            id = 1;
        }
        Block {
            id: BlockId::new(id),
            parent,
            view,
            producer,
            payload,
        }
    }

    /// The genesis block `b₀`: height 0, empty payload, id
    /// [`BlockId::GENESIS`]. Its parent field self-references genesis; use
    /// [`crate::BlockTree::parent`] (which returns `None` for genesis)
    /// rather than reading the field directly.
    pub fn genesis() -> Block {
        Block {
            id: BlockId::GENESIS,
            parent: BlockId::GENESIS,
            view: View::ZERO,
            producer: ProcessId::new(0),
            payload: Vec::new(),
        }
    }

    /// The content-address of this block.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The parent block this block extends.
    pub fn parent(&self) -> BlockId {
        self.parent
    }

    /// The view in which this block was proposed.
    pub fn view(&self) -> View {
        self.view
    }

    /// The process that produced this block.
    pub fn producer(&self) -> ProcessId {
        self.producer
    }

    /// The transactions batched in this block.
    pub fn payload(&self) -> &[TxId] {
        &self.payload
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({} <- {}, {}, by {}, {} txs)",
            self.id,
            self.parent,
            self.view,
            self.producer,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_addressing_is_deterministic() {
        let a = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        let b = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_contents_distinct_ids() {
        let base = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        let other_view = Block::build(BlockId::GENESIS, View::new(2), ProcessId::new(0), vec![]);
        let other_producer =
            Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(1), vec![]);
        let other_payload = Block::build(
            BlockId::GENESIS,
            View::new(1),
            ProcessId::new(0),
            vec![TxId::new(1)],
        );
        let other_parent = Block::build(base.id(), View::new(1), ProcessId::new(0), vec![]);
        let ids = [
            base.id(),
            other_view.id(),
            other_producer.id(),
            other_payload.id(),
            other_parent.id(),
        ];
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn never_collides_with_genesis_id() {
        for v in 0..2000u64 {
            let b = Block::build(BlockId::GENESIS, View::new(v), ProcessId::new(0), vec![]);
            assert!(!b.id().is_genesis());
        }
    }
}
