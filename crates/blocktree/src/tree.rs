//! Append-only block tree with fast ancestry queries.

use crate::{Block, BlockTreeError};
use st_types::fasthash::mix64;
use st_types::FastMap;
use st_types::{BlockId, TxId};
use std::sync::Arc;

/// Per-block bookkeeping inside the tree. Nodes live in a contiguous
/// arena and refer to each other by arena index — ancestry walks are
/// array reads, not hash lookups. The block itself is held behind an
/// [`Arc`]: in a simulation the same proposal is inserted into every
/// receiver's tree, and sharing one allocation across all of them is the
/// difference between ~24 bytes and ~150 bytes per node at `n = 4096`.
#[derive(Clone, Debug)]
struct Node {
    block: Arc<Block>,
    height: u64,
    /// Arena index of the parent (genesis points at itself).
    parent: u32,
    /// Skew-binary jump pointer (Myers): a single ancestor index chosen at
    /// insert so that repeated jumps reach any target height in
    /// `O(log h)` — the O(1)-space replacement for a binary-lifting table.
    /// The jump target's height is a pure function of this node's height,
    /// which is what makes the equal-height LCA walk sound.
    jump: u32,
}

/// An append-only tree of blocks rooted at genesis.
///
/// Logs are identified by their tip [`BlockId`]; prefix relations between
/// logs translate to ancestry between tips. Ancestor queries follow
/// skew-binary jump pointers and cost `O(log h)` with **O(1)** extra space
/// per node.
///
/// Internally the tree is an arena: one `Vec` of nodes plus a single
/// id → index map. Every traversal (jumps, chain iteration, LCA) pays the
/// hash lookup **once** at entry and then walks plain indices — the
/// difference between ~1 µs and ~100 ns per insert once trees reach
/// simulation scale.
#[derive(Clone, Debug)]
pub struct BlockTree {
    nodes: Vec<Node>,
    index: FastMap<BlockId, u32>,
    /// XOR of [`mix64`] over every member block id — a hasher-independent
    /// content fingerprint, maintained incrementally on insert.
    fingerprint: u64,
}

impl BlockTree {
    /// Creates a tree containing only the genesis block `b₀` (an empty
    /// payload block at height 0, producer `p0`, view 0).
    pub fn new() -> BlockTree {
        let mut index = FastMap::default();
        index.insert(BlockId::GENESIS, 0u32);
        BlockTree {
            nodes: vec![Node {
                block: Arc::new(Block::genesis()),
                height: 0,
                parent: 0,
                jump: 0,
            }],
            index,
            fingerprint: mix64(BlockId::GENESIS.as_u64()),
        }
    }

    #[inline]
    fn idx(&self, id: BlockId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Number of blocks in the tree (including genesis).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only genesis.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: BlockId) -> bool {
        self.index.contains_key(&id)
    }

    /// Inserts a block.
    ///
    /// # Errors
    ///
    /// * [`BlockTreeError::UnknownParent`] if the parent is absent;
    /// * [`BlockTreeError::DuplicateBlock`] if the id is already present.
    pub fn insert(&mut self, block: impl Into<Arc<Block>>) -> Result<BlockId, BlockTreeError> {
        let block = block.into();
        let id = block.id();
        if self.contains(id) {
            return Err(BlockTreeError::DuplicateBlock(id));
        }
        self.insert_or_get(block)
    }

    /// Inserts a block, treating re-insertion of an identical block as a
    /// no-op success. This is the variant protocol code uses when the same
    /// proposal arrives from several peers. Accepts an already-shared
    /// `Arc<Block>` so simulation-scale fan-out stores one allocation per
    /// distinct block across all receivers.
    ///
    /// # Errors
    ///
    /// [`BlockTreeError::UnknownParent`] if the parent is absent.
    pub fn insert_or_get(
        &mut self,
        block: impl Into<Arc<Block>>,
    ) -> Result<BlockId, BlockTreeError> {
        let block = block.into();
        let id = block.id();
        if self.contains(id) {
            return Ok(id);
        }
        let Some(parent_idx) = self.idx(block.parent()) else {
            return Err(BlockTreeError::UnknownParent {
                block: id,
                parent: block.parent(),
            });
        };
        // Skew-binary jump pointer (Myers): with p = parent, j = jump(p),
        // jj = jump(j), the new node jumps to jj when the two hops below
        // it span equal distances, else to its parent. Jump heights are a
        // function of node height alone, which `ancestor_idx_at` and
        // `lca` rely on.
        let height = self.nodes[parent_idx as usize].height + 1;
        let j = self.nodes[parent_idx as usize].jump;
        let jj = self.nodes[j as usize].jump;
        let (hp, hj, hjj) = (
            self.nodes[parent_idx as usize].height,
            self.nodes[j as usize].height,
            self.nodes[jj as usize].height,
        );
        let jump = if hp - hj == hj - hjj { jj } else { parent_idx };
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            block,
            height,
            parent: parent_idx,
            jump,
        });
        self.index.insert(id, idx);
        self.fingerprint ^= mix64(id.as_u64());
        Ok(id)
    }

    /// A hasher-independent digest of the member block-id set (XOR of a
    /// fixed 64-bit mix over every id). Two trees holding the same blocks
    /// have equal fingerprints regardless of insertion order or FxHash
    /// seed — the tree half of the simulator's tally-cohort cache key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The block stored under `id`.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.idx(id).map(|i| self.nodes[i as usize].block.as_ref())
    }

    /// Height of a block (genesis is 0). This is also the length of the
    /// log whose tip is `id`.
    pub fn height(&self, id: BlockId) -> Option<u64> {
        self.idx(id).map(|i| self.nodes[i as usize].height)
    }

    /// Parent of a block; genesis returns `None`.
    pub fn parent(&self, id: BlockId) -> Option<BlockId> {
        if id.is_genesis() {
            return None;
        }
        self.idx(id).map(|i| {
            self.nodes[self.nodes[i as usize].parent as usize]
                .block
                .id()
        })
    }

    /// Arena-internal: the ancestor index of `idx` at `target_height`
    /// (which must not exceed the node's height). Follows the jump
    /// pointer whenever it does not overshoot the target, else steps to
    /// the parent — `O(log h)` by the skew-binary spacing of the jumps.
    fn ancestor_idx_at(&self, mut idx: u32, target_height: u64) -> u32 {
        while self.nodes[idx as usize].height > target_height {
            let j = self.nodes[idx as usize].jump;
            idx = if self.nodes[j as usize].height >= target_height {
                j
            } else {
                self.nodes[idx as usize].parent
            };
        }
        idx
    }

    /// The ancestor of `id` at exactly `target_height`, or `None` if `id`
    /// is unknown or shallower than the target.
    pub fn ancestor_at_height(&self, id: BlockId, target_height: u64) -> Option<BlockId> {
        let idx = self.idx(id)?;
        if self.nodes[idx as usize].height < target_height {
            return None;
        }
        let a = self.ancestor_idx_at(idx, target_height);
        Some(self.nodes[a as usize].block.id())
    }

    /// Whether `a` is an ancestor of `b` **or equal to it** — i.e. whether
    /// the log with tip `a` is a prefix of the log with tip `b`
    /// (`Λ_a ⪯ Λ_b` in the paper's notation).
    ///
    /// Returns `false` if either block is unknown.
    pub fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        let (Some(ia), Some(ib)) = (self.idx(a), self.idx(b)) else {
            return false;
        };
        let ha = self.nodes[ia as usize].height;
        if ha > self.nodes[ib as usize].height {
            return false;
        }
        self.ancestor_idx_at(ib, ha) == ia
    }

    /// Whether the logs with tips `a` and `b` are compatible (one is a
    /// prefix of the other, Definition 1).
    pub fn compatible(&self, a: BlockId, b: BlockId) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// Whether the logs with tips `a` and `b` conflict (neither is a
    /// prefix of the other).
    pub fn conflicting(&self, a: BlockId, b: BlockId) -> bool {
        self.contains(a) && self.contains(b) && !self.compatible(a, b)
    }

    /// Lowest common ancestor of two blocks; `None` if either is unknown.
    /// All blocks share genesis, so known blocks always have an LCA.
    pub fn lca(&self, a: BlockId, b: BlockId) -> Option<BlockId> {
        let ia = self.idx(a)?;
        let ib = self.idx(b)?;
        let ha = self.nodes[ia as usize].height;
        let hb = self.nodes[ib as usize].height;
        let (mut x, mut y) = if ha <= hb {
            (ia, self.ancestor_idx_at(ib, ha))
        } else {
            (self.ancestor_idx_at(ia, hb), ib)
        };
        // x and y stay at equal heights, so their jump targets also sit at
        // equal heights h'. If the targets differ, the LCA's height is
        // strictly below h' (equal-height ancestors at or below the LCA
        // coincide), so jumping both cannot skip past it; if they are
        // equal, the LCA may sit anywhere at or above h', so step parents
        // one level instead.
        while x != y {
            let jx = self.nodes[x as usize].jump;
            let jy = self.nodes[y as usize].jump;
            if jx != jy {
                x = jx;
                y = jy;
            } else {
                x = self.nodes[x as usize].parent;
                y = self.nodes[y as usize].parent;
            }
        }
        Some(self.nodes[x as usize].block.id())
    }

    /// The longest common prefix (deepest common ancestor) of a non-empty
    /// set of tips. Unknown tips are ignored; returns `None` if no tip is
    /// known.
    ///
    /// Used by graded-agreement validity: "processes output with grade 1
    /// the longest common prefix among well-behaved processes' input logs".
    pub fn longest_common_prefix<I>(&self, tips: I) -> Option<BlockId>
    where
        I: IntoIterator<Item = BlockId>,
    {
        let mut acc: Option<BlockId> = None;
        for tip in tips {
            if !self.contains(tip) {
                continue;
            }
            acc = Some(match acc {
                None => tip,
                Some(cur) => self.lca(cur, tip)?,
            });
        }
        acc
    }

    /// Iterates the chain from `tip` down to genesis (inclusive), yielding
    /// tips first. Unknown tips yield an empty iterator.
    pub fn chain(&self, tip: BlockId) -> ChainIter<'_> {
        ChainIter {
            tree: self,
            cur: self.idx(tip),
        }
    }

    /// The log with tip `tip` as a block-id sequence from genesis to tip.
    pub fn log_of(&self, tip: BlockId) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.chain(tip).collect();
        v.reverse();
        v
    }

    /// Whether transaction `tx` appears in the log with tip `tip`.
    pub fn log_contains_tx(&self, tip: BlockId, tx: TxId) -> bool {
        let Some(mut idx) = self.idx(tip) else {
            return false;
        };
        loop {
            let node = &self.nodes[idx as usize];
            if node.block.payload().contains(&tx) {
                return true;
            }
            if node.height == 0 {
                return false;
            }
            idx = node.parent;
        }
    }

    /// All transactions in the log with tip `tip`, genesis-first order.
    pub fn log_transactions(&self, tip: BlockId) -> Vec<TxId> {
        let Some(mut idx) = self.idx(tip) else {
            return Vec::new();
        };
        let mut rev: Vec<u32> = Vec::new();
        loop {
            rev.push(idx);
            let node = &self.nodes[idx as usize];
            if node.height == 0 {
                break;
            }
            idx = node.parent;
        }
        let mut txs = Vec::new();
        for &i in rev.iter().rev() {
            txs.extend_from_slice(self.nodes[i as usize].block.payload());
        }
        txs
    }

    /// Merges every block of `other` that this tree is missing (used by
    /// the simulator to ship proposals between processes).
    pub fn absorb(&mut self, other: &BlockTree) {
        // Insert in height order so parents always precede children.
        let mut missing: Vec<&Node> = other
            .nodes
            .iter()
            .filter(|n| !self.contains(n.block.id()))
            .collect();
        missing.sort_by_key(|n| n.height);
        for node in missing {
            // Parent must exist: other is a valid tree and we insert in
            // height order.
            self.insert_or_get(node.block.clone())
                .expect("absorb preserves parent-before-child order"); // stlint::allow(panic, reason = "missing nodes are inserted in ascending height order out of a valid tree, so each parent is present by the time its child arrives")
        }
    }

    /// All block ids currently in the tree (unordered).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.index.keys().copied()
    }
}

impl Default for BlockTree {
    fn default() -> Self {
        BlockTree::new()
    }
}

/// Iterator over a chain from tip to genesis. Produced by
/// [`BlockTree::chain`]. Walks arena indices: one hash lookup at
/// construction, array reads per step.
#[derive(Clone, Debug)]
pub struct ChainIter<'a> {
    tree: &'a BlockTree,
    cur: Option<u32>,
}

impl Iterator for ChainIter<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        let cur = self.cur?;
        let node = &self.tree.nodes[cur as usize];
        self.cur = if node.height == 0 {
            None
        } else {
            Some(node.parent)
        };
        Some(node.block.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, BlockTreeError};
    use st_types::{ProcessId, View};

    /// Builds a linear chain of `len` blocks on top of `base`, returning
    /// the tips in order.
    fn extend_chain(
        tree: &mut BlockTree,
        base: BlockId,
        len: usize,
        producer: u32,
    ) -> Vec<BlockId> {
        let mut tips = Vec::new();
        let mut parent = base;
        for i in 0..len {
            let b = Block::build(
                parent,
                View::new(i as u64 + 1),
                ProcessId::new(producer),
                vec![TxId::new((producer as u64) << 32 | i as u64)],
            );
            parent = tree.insert(b).unwrap();
            tips.push(parent);
        }
        tips
    }

    #[test]
    fn new_tree_has_genesis() {
        let tree = BlockTree::new();
        assert!(tree.contains(BlockId::GENESIS));
        assert_eq!(tree.height(BlockId::GENESIS), Some(0));
        assert_eq!(tree.parent(BlockId::GENESIS), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn insert_rejects_unknown_parent() {
        let mut tree = BlockTree::new();
        let orphan = Block::build(BlockId::new(999), View::new(1), ProcessId::new(0), vec![]);
        assert!(matches!(
            tree.insert(orphan),
            Err(BlockTreeError::UnknownParent { .. })
        ));
    }

    #[test]
    fn insert_rejects_duplicates_but_insert_or_get_is_idempotent() {
        let mut tree = BlockTree::new();
        let b = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        let id = tree.insert(b.clone()).unwrap();
        assert!(matches!(
            tree.insert(b.clone()),
            Err(BlockTreeError::DuplicateBlock(_))
        ));
        assert_eq!(tree.insert_or_get(b).unwrap(), id);
    }

    #[test]
    fn ancestry_on_linear_chain() {
        let mut tree = BlockTree::new();
        let tips = extend_chain(&mut tree, BlockId::GENESIS, 20, 0);
        for (i, &a) in tips.iter().enumerate() {
            assert!(tree.is_ancestor(BlockId::GENESIS, a));
            assert!(tree.is_ancestor(a, a), "self-prefix");
            for &b in &tips[i + 1..] {
                assert!(tree.is_ancestor(a, b));
                assert!(!tree.is_ancestor(b, a));
                assert!(tree.compatible(a, b));
            }
        }
    }

    #[test]
    fn forks_conflict() {
        let mut tree = BlockTree::new();
        let left = extend_chain(&mut tree, BlockId::GENESIS, 5, 0);
        let right = extend_chain(&mut tree, BlockId::GENESIS, 5, 1);
        for &l in &left {
            for &r in &right {
                assert!(tree.conflicting(l, r), "{l} vs {r} should conflict");
                assert!(!tree.compatible(l, r));
            }
        }
    }

    #[test]
    fn fork_below_tip_conflicts_above_fork_point() {
        let mut tree = BlockTree::new();
        let trunk = extend_chain(&mut tree, BlockId::GENESIS, 5, 0);
        let branch = extend_chain(&mut tree, trunk[2], 4, 1);
        // branch extends trunk[2], so it is compatible with trunk[0..=2]…
        for &t in &trunk[..3] {
            assert!(tree.compatible(t, *branch.last().unwrap()));
        }
        // …and conflicts with trunk[3..].
        for &t in &trunk[3..] {
            assert!(tree.conflicting(t, *branch.last().unwrap()));
        }
    }

    #[test]
    fn ancestor_at_height_jumps_correctly() {
        let mut tree = BlockTree::new();
        let tips = extend_chain(&mut tree, BlockId::GENESIS, 100, 0);
        let deep = *tips.last().unwrap();
        assert_eq!(tree.ancestor_at_height(deep, 0), Some(BlockId::GENESIS));
        for h in 1..=100u64 {
            assert_eq!(tree.ancestor_at_height(deep, h), Some(tips[h as usize - 1]));
        }
        assert_eq!(tree.ancestor_at_height(deep, 101), None);
    }

    #[test]
    fn lca_on_fork() {
        let mut tree = BlockTree::new();
        let trunk = extend_chain(&mut tree, BlockId::GENESIS, 4, 0);
        let fork_point = trunk[1];
        let left = extend_chain(&mut tree, fork_point, 7, 1);
        let right = extend_chain(&mut tree, fork_point, 3, 2);
        assert_eq!(
            tree.lca(*left.last().unwrap(), *right.last().unwrap()),
            Some(fork_point)
        );
        assert_eq!(
            tree.lca(*left.last().unwrap(), *trunk.last().unwrap()),
            Some(fork_point)
        );
        // LCA with an ancestor is the ancestor itself.
        assert_eq!(
            tree.lca(fork_point, *left.last().unwrap()),
            Some(fork_point)
        );
        // LCA of disjoint branches from genesis is genesis.
        let solo = extend_chain(&mut tree, BlockId::GENESIS, 2, 3);
        assert_eq!(
            tree.lca(*solo.last().unwrap(), *left.last().unwrap()),
            Some(BlockId::GENESIS)
        );
    }

    #[test]
    fn lca_of_same_node_is_itself() {
        let mut tree = BlockTree::new();
        let tips = extend_chain(&mut tree, BlockId::GENESIS, 5, 0);
        for &t in &tips {
            assert_eq!(tree.lca(t, t), Some(t));
        }
    }

    #[test]
    fn longest_common_prefix_of_tips() {
        let mut tree = BlockTree::new();
        let trunk = extend_chain(&mut tree, BlockId::GENESIS, 3, 0);
        let a = extend_chain(&mut tree, trunk[2], 2, 1);
        let b = extend_chain(&mut tree, trunk[2], 2, 2);
        let lcp = tree
            .longest_common_prefix([*a.last().unwrap(), *b.last().unwrap(), trunk[2]])
            .unwrap();
        assert_eq!(lcp, trunk[2]);
        // Unknown tips are skipped.
        let lcp2 = tree
            .longest_common_prefix([*a.last().unwrap(), BlockId::new(12345)])
            .unwrap();
        assert_eq!(lcp2, *a.last().unwrap());
        // All-unknown yields None.
        assert_eq!(tree.longest_common_prefix([BlockId::new(777)]), None);
    }

    #[test]
    fn chain_iterates_tip_to_genesis() {
        let mut tree = BlockTree::new();
        let tips = extend_chain(&mut tree, BlockId::GENESIS, 3, 0);
        let chain: Vec<_> = tree.chain(*tips.last().unwrap()).collect();
        assert_eq!(chain, vec![tips[2], tips[1], tips[0], BlockId::GENESIS]);
        let log = tree.log_of(*tips.last().unwrap());
        assert_eq!(log, vec![BlockId::GENESIS, tips[0], tips[1], tips[2]]);
    }

    #[test]
    fn tx_lookup_in_log() {
        let mut tree = BlockTree::new();
        let tips = extend_chain(&mut tree, BlockId::GENESIS, 3, 7);
        let tip = *tips.last().unwrap();
        let tx0 = TxId::new((7u64) << 32);
        assert!(tree.log_contains_tx(tip, tx0));
        assert!(!tree.log_contains_tx(tip, TxId::new(424242)));
        assert_eq!(tree.log_transactions(tip).len(), 3);
    }

    #[test]
    fn absorb_merges_missing_blocks() {
        let mut a = BlockTree::new();
        let mut b = BlockTree::new();
        let tips_a = extend_chain(&mut a, BlockId::GENESIS, 4, 0);
        let tips_b = extend_chain(&mut b, BlockId::GENESIS, 4, 1);
        a.absorb(&b);
        assert!(a.contains(*tips_b.last().unwrap()));
        assert!(a.contains(*tips_a.last().unwrap()));
        assert_eq!(a.len(), 9); // genesis + 4 + 4
                                // Absorb is idempotent.
        a.absorb(&b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn unknown_queries_return_none_or_false() {
        let tree = BlockTree::new();
        let ghost = BlockId::new(42);
        assert_eq!(tree.height(ghost), None);
        assert_eq!(tree.parent(ghost), None);
        assert!(!tree.is_ancestor(ghost, BlockId::GENESIS));
        assert!(!tree.is_ancestor(BlockId::GENESIS, ghost));
        assert!(!tree.compatible(ghost, BlockId::GENESIS));
        assert!(!tree.conflicting(ghost, BlockId::GENESIS));
        assert_eq!(tree.chain(ghost).count(), 0);
    }
}
