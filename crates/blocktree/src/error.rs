//! Block tree structural errors.

use st_types::BlockId;
use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::BlockTree`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BlockTreeError {
    /// The block references a parent that is not in the tree. In a real
    /// deployment this triggers block-sync; in the lock-step simulation it
    /// indicates a protocol bug or an adversarial fabricated chain that
    /// honest processes correctly refuse to adopt.
    UnknownParent {
        /// The block being inserted.
        block: BlockId,
        /// Its missing parent.
        parent: BlockId,
    },
    /// The queried block is not in the tree.
    UnknownBlock(BlockId),
    /// Attempted to insert a block whose id is already present (idempotent
    /// re-insertion is exposed separately; this is the strict API).
    DuplicateBlock(BlockId),
}

impl fmt::Display for BlockTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockTreeError::UnknownParent { block, parent } => {
                write!(f, "block {block} references unknown parent {parent}")
            }
            BlockTreeError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            BlockTreeError::DuplicateBlock(b) => write!(f, "duplicate block {b}"),
        }
    }
}

impl Error for BlockTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = BlockTreeError::UnknownBlock(BlockId::new(5));
        assert!(e.to_string().contains("unknown block"));
    }
}
