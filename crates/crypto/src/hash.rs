//! A small, fast, deterministic 64-bit hash (FNV-1a with avalanche finish).
//!
//! Used for content-addressing blocks, deriving simulated signatures, and
//! the VRF. Determinism across runs and platforms is the property that
//! matters here (the simulator must be exactly reproducible from a seed);
//! collision resistance against an adaptive adversary is *not* required in
//! the closed simulation.

/// Incremental 64-bit hasher (FNV-1a core, `splitmix64` finalisation).
///
/// ```
/// use st_crypto::Hasher64;
/// let mut h = Hasher64::new();
/// h.update(b"hello");
/// h.update_u64(7);
/// let a = h.finish();
/// assert_eq!(a, Hasher64::new().chain(b"hello").chain_u64(7).finish());
/// ```
#[derive(Clone, Debug)]
pub struct Hasher64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher64 {
    /// Creates a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Creates a hasher seeded with a domain-separation tag.
    pub fn with_domain(domain: &str) -> Self {
        let mut h = Hasher64::new();
        h.update(domain.as_bytes());
        h
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Chaining variant of [`Hasher64::update`].
    #[must_use]
    pub fn chain(mut self, bytes: &[u8]) -> Self {
        self.update(bytes);
        self
    }

    /// Chaining variant of [`Hasher64::update_u64`].
    #[must_use]
    pub fn chain_u64(mut self, v: u64) -> Self {
        self.update_u64(v);
        self
    }

    /// Finalises the hash with a `splitmix64`-style avalanche so that
    /// nearby inputs produce well-mixed outputs (important for the VRF,
    /// whose values are compared for a maximum).
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64::new()
    }
}

/// One-shot hash of a byte slice.
///
/// ```
/// use st_crypto::hash64;
/// assert_ne!(hash64(b"a"), hash64(b"b"));
/// assert_eq!(hash64(b"a"), hash64(b"a"));
/// ```
pub fn hash64(bytes: &[u8]) -> u64 {
    Hasher64::new().chain(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"sleepy"), hash64(b"sleepy"));
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        // Not a collision-resistance proof, just a smoke check over a grid.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            assert!(
                seen.insert(Hasher64::new().chain_u64(i).finish()),
                "collision at {i}"
            );
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hasher64::new();
        h.update(b"ab");
        h.update(b"cd");
        assert_eq!(h.finish(), hash64(b"abcd"));
    }

    #[test]
    fn domain_separation() {
        let a = Hasher64::with_domain("sig").chain_u64(1).finish();
        let b = Hasher64::with_domain("vrf").chain_u64(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_spreads_low_bits() {
        // Consecutive integers should differ in roughly half the bits.
        let a = Hasher64::new().chain_u64(1).finish();
        let b = Hasher64::new().chain_u64(2).finish();
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "weak avalanche: only {diff} differing bits");
    }
}
