//! Simulated verifiable random function.
//!
//! Algorithm 1 elects, in every view `v`, the proposal carried by the
//! propose message with the *largest valid* `VRF(v)`. The paper's VRF
//! (Section 2.1) provides: a deterministic pseudorandom output `ρ`, a proof
//! `π`, and public verifiability. We realise it as a keyed hash of the
//! input under the process's secret; the proof is a second keyed hash that
//! the verifier can recompute from the public key.
//!
//! As with signatures (see [`crate::Keypair`]), soundness is enforced by
//! encapsulation: [`VrfProof`] values only come out of [`Keypair::vrf_eval`],
//! so a Byzantine process cannot claim a VRF value it did not legitimately
//! evaluate — it *can* refuse to reveal its value, reveal it selectively,
//! or evaluate it for any view it likes, all of which the paper permits.

use crate::hash::Hasher64;
use crate::keys::{Keypair, PublicKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pseudorandom output `ρ` of a VRF evaluation, compared numerically
/// to pick the view leader (largest wins).
pub type VrfOutput = u64;

/// The proof `π` accompanying a VRF output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VrfProof {
    tag: u64,
}

impl VrfProof {
    /// The raw 64-bit tag, for compact wire codecs (see
    /// [`crate::Signature::as_wire_tag`] for the non-escalation argument).
    pub fn as_wire_tag(&self) -> u64 {
        self.tag
    }

    /// Rebuilds a proof from a wire tag; a fabricated tag still fails
    /// [`Vrf::verify`].
    pub fn from_wire_tag(tag: u64) -> VrfProof {
        VrfProof { tag }
    }
}

/// Namespace for VRF verification.
#[derive(Clone, Copy, Debug)]
pub struct Vrf;

impl Keypair {
    /// Evaluates `(ρ, π) ← VRF_p(input)`.
    ///
    /// `input` is the view number in Algorithm 1 (`VRF_p(v)`).
    ///
    /// ```
    /// use st_crypto::{Keypair, Vrf};
    /// use st_types::ProcessId;
    /// let kp = Keypair::derive(ProcessId::new(0), 7);
    /// let (rho, proof) = kp.vrf_eval(3);
    /// assert!(Vrf::verify(kp.public(), 3, rho, &proof));
    /// ```
    pub fn vrf_eval(&self, input: u64) -> (VrfOutput, VrfProof) {
        let rho = vrf_value(self.secret(), input);
        let tag = Hasher64::with_domain("st/vrf-proof")
            .chain_u64(self.public().key_material())
            .chain_u64(input)
            .chain_u64(rho)
            .finish();
        (rho, VrfProof { tag })
    }
}

impl Vrf {
    /// Verifies that `value` is the correct evaluation of the VRF of the
    /// key's owner on `input`, using the accompanying proof.
    pub fn verify(public: PublicKey, input: u64, value: VrfOutput, proof: &VrfProof) -> bool {
        let expected_value = vrf_value_from_public(public.key_material(), input);
        let expected_tag = Hasher64::with_domain("st/vrf-proof")
            .chain_u64(public.key_material())
            .chain_u64(input)
            .chain_u64(value)
            .finish();
        value == expected_value && proof.tag == expected_tag
    }
}

// The VRF value must be recomputable by the verifier. In a real ECVRF the
// proof carries enough material; here we derive the value from the *public*
// key so verification is exact, and rely on encapsulation (proof tags are
// only produced by vrf_eval) to model unpredictability-before-reveal.
fn vrf_value(secret: u64, input: u64) -> u64 {
    let key_material = Hasher64::with_domain("st/pubkey")
        .chain_u64(secret)
        .finish();
    vrf_value_from_public(key_material, input)
}

fn vrf_value_from_public(key_material: u64, input: u64) -> u64 {
    Hasher64::with_domain("st/vrf")
        .chain_u64(key_material)
        .chain_u64(input)
        .finish()
}

impl fmt::Debug for VrfProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vrfπ({:016x})", self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::ProcessId;

    fn kp(i: u32) -> Keypair {
        Keypair::derive(ProcessId::new(i), 77)
    }

    #[test]
    fn eval_verify_roundtrip() {
        let k = kp(0);
        let (rho, proof) = k.vrf_eval(5);
        assert!(Vrf::verify(k.public(), 5, rho, &proof));
    }

    #[test]
    fn wrong_input_rejected() {
        let k = kp(0);
        let (rho, proof) = k.vrf_eval(5);
        assert!(!Vrf::verify(k.public(), 6, rho, &proof));
    }

    #[test]
    fn wrong_value_rejected() {
        let k = kp(0);
        let (rho, proof) = k.vrf_eval(5);
        assert!(!Vrf::verify(k.public(), 5, rho ^ 1, &proof));
    }

    #[test]
    fn wrong_key_rejected() {
        let a = kp(0);
        let b = kp(1);
        let (rho, proof) = a.vrf_eval(5);
        assert!(!Vrf::verify(b.public(), 5, rho, &proof));
    }

    #[test]
    fn outputs_vary_across_processes_and_views() {
        // The leader election needs distinct values with overwhelming
        // probability; check a grid has no duplicates.
        let mut seen = std::collections::HashSet::new();
        for i in 0..50u32 {
            for v in 0..50u64 {
                let (rho, _) = kp(i).vrf_eval(v);
                assert!(seen.insert(rho), "duplicate VRF output p{i} v{v}");
            }
        }
    }

    #[test]
    fn deterministic_across_rederivation() {
        let (r1, p1) = kp(3).vrf_eval(9);
        let (r2, p2) = kp(3).vrf_eval(9);
        assert_eq!(r1, r2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn leader_distribution_roughly_uniform() {
        // Over many views, each of 8 processes should win a fair share of
        // leader elections (largest VRF value wins).
        let kps: Vec<_> = (0..8).map(kp).collect();
        let mut wins = [0usize; 8];
        let views = 4000u64;
        for v in 0..views {
            let winner = kps
                .iter()
                .enumerate()
                .max_by_key(|(_, k)| k.vrf_eval(v).0)
                .map(|(i, _)| i)
                .unwrap();
            wins[winner] += 1;
        }
        let expected = views as f64 / 8.0;
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64) > expected * 0.6 && (w as f64) < expected * 1.4,
                "process {i} won {w} of {views} (expected ≈{expected})"
            );
        }
    }
}
