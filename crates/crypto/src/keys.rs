//! Simulated unforgeable signatures.
//!
//! A [`Keypair`] is derived deterministically from `(process id, system
//! seed)`. A signature is a keyed hash of the message under the keypair's
//! key material; verification recomputes it from the [`PublicKey`].
//!
//! # Unforgeability in the simulation
//!
//! Because the hash is public, unforgeability is enforced *at the type
//! level* rather than computationally: the only way to obtain a
//! [`Signature`] value is [`Keypair::sign`] (the tag field is private and
//! there is no other constructor), and the simulator hands each process —
//! including Byzantine ones — only its own `Keypair`. A Byzantine process
//! can therefore sign arbitrary content (equivocate, vote for fabricated
//! logs, back-date round tags) but can never emit a message that verifies
//! under another process's public key, which is exactly the power the
//! paper grants the adversary (Section 2.1: "messages sent by processes
//! come with an unforgeable signature").

use crate::hash::Hasher64;
use serde::{Deserialize, Serialize};
use st_types::ProcessId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of signature verifications performed.
///
/// The verify-once envelope fast path promises *at most one* signature
/// check per unique honest envelope per process set; this counter is how
/// benches and tests demonstrate the promise instead of asserting it
/// rhetorically. Relaxed ordering: the counter is a metric, not a
/// synchronisation point.
static VERIFICATIONS: AtomicU64 = AtomicU64::new(0);

/// Total signature verifications performed by this process since start
/// (or since the last [`reset_verification_count`]).
pub fn verification_count() -> u64 {
    VERIFICATIONS.load(Ordering::Relaxed)
}

/// Resets the global verification counter (bench bookkeeping). Returns
/// the value the counter had before the reset.
pub fn reset_verification_count() -> u64 {
    VERIFICATIONS.swap(0, Ordering::Relaxed)
}

/// A process's public (verification) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    owner: ProcessId,
    key_material: u64,
}

/// A signature over a message under some [`Keypair`].
///
/// Constructible only via [`Keypair::sign`]; see the module docs for the
/// unforgeability argument.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    tag: u64,
}

impl Signature {
    /// The raw 64-bit tag, for compact wire codecs.
    ///
    /// Exposing the tag grants no forging power the serde surface does not
    /// already grant: the derived `Deserialize` impl reconstructs a
    /// `Signature` from untrusted input just the same, and a fabricated tag
    /// still fails [`PublicKey::verify`].
    pub fn as_wire_tag(&self) -> u64 {
        self.tag
    }

    /// Rebuilds a signature from a wire tag (see [`Signature::as_wire_tag`]).
    pub fn from_wire_tag(tag: u64) -> Signature {
        Signature { tag }
    }
}

/// A signing keypair held by a single process.
#[derive(Clone, Debug)]
pub struct Keypair {
    owner: ProcessId,
    secret: u64,
    public: PublicKey,
}

impl Keypair {
    /// Derives the keypair of `owner` under a given system seed.
    ///
    /// All processes of one simulated system share the seed; distinct
    /// owners get unrelated key material.
    ///
    /// ```
    /// use st_crypto::Keypair;
    /// use st_types::ProcessId;
    /// let a = Keypair::derive(ProcessId::new(0), 7);
    /// let b = Keypair::derive(ProcessId::new(1), 7);
    /// assert_ne!(a.public(), b.public());
    /// ```
    pub fn derive(owner: ProcessId, system_seed: u64) -> Keypair {
        let secret = Hasher64::with_domain("st/keygen")
            .chain_u64(system_seed)
            .chain_u64(owner.as_u32() as u64)
            .finish();
        let key_material = Hasher64::with_domain("st/pubkey")
            .chain_u64(secret)
            .finish();
        Keypair {
            owner,
            secret,
            public: PublicKey {
                owner,
                key_material,
            },
        }
    }

    /// The process this keypair belongs to.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The verification key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            tag: sig_tag(self.public.key_material, message),
        }
    }

    /// Secret scalar — exposed only to the sibling `vrf` module.
    pub(crate) fn secret(&self) -> u64 {
        self.secret
    }
}

impl PublicKey {
    /// The process that owns this key.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Raw key material (used by the VRF verifier).
    pub(crate) fn key_material(&self) -> u64 {
        self.key_material
    }

    /// Verifies `sig` over `message`: any change to the message, or a
    /// signature produced under a different keypair, fails.
    ///
    /// ```
    /// use st_crypto::Keypair;
    /// use st_types::ProcessId;
    /// let kp = Keypair::derive(ProcessId::new(0), 1);
    /// let other = Keypair::derive(ProcessId::new(1), 1);
    /// let sig = kp.sign(b"m");
    /// assert!(kp.public().verify(b"m", &sig));
    /// assert!(!kp.public().verify(b"n", &sig));
    /// assert!(!other.public().verify(b"m", &sig));
    /// ```
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        VERIFICATIONS.fetch_add(1, Ordering::Relaxed);
        sig.tag == sig_tag(self.key_material, message)
    }
}

fn sig_tag(key_material: u64, message: &[u8]) -> u64 {
    Hasher64::with_domain("st/sig")
        .chain_u64(key_material)
        .chain(message)
        .finish()
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk({}, {:016x})", self.owner, self.key_material)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig({:016x})", self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(i: u32) -> Keypair {
        Keypair::derive(ProcessId::new(i), 99)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = kp(0);
        let sig = k.sign(b"hello");
        assert!(k.public().verify(b"hello", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let k = kp(0);
        let sig = k.sign(b"hello");
        assert!(!k.public().verify(b"hellO", &sig));
        assert!(!k.public().verify(b"", &sig));
    }

    #[test]
    fn cross_key_rejected() {
        let a = kp(0);
        let b = kp(1);
        let sig = a.sign(b"msg");
        assert!(!b.public().verify(b"msg", &sig));
    }

    #[test]
    fn same_process_different_seed_differs() {
        let a = Keypair::derive(ProcessId::new(0), 1);
        let b = Keypair::derive(ProcessId::new(0), 2);
        assert_ne!(a.public(), b.public());
        assert!(!b.public().verify(b"m", &a.sign(b"m")));
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = Keypair::derive(ProcessId::new(5), 123);
        let b = Keypair::derive(ProcessId::new(5), 123);
        assert_eq!(a.public(), b.public());
        assert_eq!(a.sign(b"x"), b.sign(b"x"));
    }

    #[test]
    fn verification_counter_ticks() {
        let k = kp(3);
        let sig = k.sign(b"count me");
        let before = verification_count();
        assert!(k.public().verify(b"count me", &sig));
        assert!(!k.public().verify(b"not me", &sig));
        // Other tests run concurrently, so the counter can only grow by
        // *at least* our two checks.
        assert!(verification_count() >= before + 2);
    }

    #[test]
    fn signature_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Signature>();
        assert_send_sync::<PublicKey>();
        assert_send_sync::<Keypair>();
    }
}
