//! Simulated cryptography for the sleepy-tob reproduction.
//!
//! The paper assumes two cryptographic primitives (Section 2.1):
//!
//! 1. **Unforgeable signatures** — every message carries one; messages with
//!    invalid signatures are discarded. In this closed, deterministic
//!    simulation we model a signature as a keyed hash over the message
//!    content bound to the sender's secret. The simulator gives each process
//!    its own [`Keypair`]; a Byzantine process can sign *anything it wants*
//!    with its own key (including equivocations) but can never produce a
//!    signature that verifies under another process's public key — exactly
//!    the property the paper's proofs rely on.
//! 2. **A verifiable random function (VRF)** — each process evaluates
//!    `(ρ, proof) ← VRF_p(µ)` and anyone can check the evaluation against
//!    the public key. We implement it as a keyed hash: deterministic,
//!    pseudorandom across `(process, input)` pairs, verifiable, and
//!    unpredictable to processes that do not hold the secret (within the
//!    simulation, processes never inspect each other's secrets).
//!
//! Neither primitive is cryptographically secure — they are *model-faithful
//! simulations* substituting for real Ed25519/ECVRF, as recorded in
//! DESIGN.md. Substituting real crypto would change no control path in the
//! protocol crates.
//!
//! # Example
//!
//! ```
//! use st_crypto::{Keypair, Vrf};
//! use st_types::ProcessId;
//!
//! let kp = Keypair::derive(ProcessId::new(3), 42);
//! let sig = kp.sign(b"vote for block 7");
//! assert!(kp.public().verify(b"vote for block 7", &sig));
//! assert!(!kp.public().verify(b"vote for block 8", &sig));
//!
//! let (value, proof) = kp.vrf_eval(1);
//! assert!(Vrf::verify(kp.public(), 1, value, &proof));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod keys;
mod vrf;

pub use hash::{hash64, Hasher64};
pub use keys::{reset_verification_count, verification_count, Keypair, PublicKey, Signature};
pub use vrf::{Vrf, VrfOutput, VrfProof};
