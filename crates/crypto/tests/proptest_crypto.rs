//! Property tests of the simulated cryptography: signatures and VRF
//! evaluations must be deterministic, domain-separated, and reject every
//! perturbation of (key, message, value).

use proptest::prelude::*;
use st_crypto::{Keypair, Vrf};
use st_types::ProcessId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn signatures_verify_iff_untampered(
        owner in 0u32..64,
        seed in any::<u64>(),
        message in prop::collection::vec(any::<u8>(), 0..64),
        flip in any::<prop::sample::Index>(),
    ) {
        let kp = Keypair::derive(ProcessId::new(owner), seed);
        let sig = kp.sign(&message);
        prop_assert!(kp.public().verify(&message, &sig));
        // Flip one byte (when the message is non-empty): must reject.
        if !message.is_empty() {
            let mut tampered = message.clone();
            let i = flip.index(tampered.len());
            tampered[i] ^= 1;
            prop_assert!(!kp.public().verify(&tampered, &sig));
        }
    }

    #[test]
    fn signatures_do_not_cross_keys(
        a in 0u32..32,
        b in 0u32..32,
        seed in any::<u64>(),
        message in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        prop_assume!(a != b);
        let ka = Keypair::derive(ProcessId::new(a), seed);
        let kb = Keypair::derive(ProcessId::new(b), seed);
        let sig = ka.sign(&message);
        prop_assert!(!kb.public().verify(&message, &sig));
    }

    #[test]
    fn vrf_verifies_iff_exact(
        owner in 0u32..32,
        seed in any::<u64>(),
        input in any::<u64>(),
        wrong_input in any::<u64>(),
    ) {
        let kp = Keypair::derive(ProcessId::new(owner), seed);
        let (value, proof) = kp.vrf_eval(input);
        prop_assert!(Vrf::verify(kp.public(), input, value, &proof));
        if wrong_input != input {
            prop_assert!(!Vrf::verify(kp.public(), wrong_input, value, &proof));
        }
        prop_assert!(!Vrf::verify(kp.public(), input, value.wrapping_add(1), &proof));
    }

    #[test]
    fn vrf_deterministic_and_key_separated(
        owner in 0u32..32,
        seed in any::<u64>(),
        input in any::<u64>(),
    ) {
        let kp = Keypair::derive(ProcessId::new(owner), seed);
        let (v1, p1) = kp.vrf_eval(input);
        let (v2, p2) = kp.vrf_eval(input);
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(p1, p2);
        // A different process's VRF on the same input differs (w.h.p.).
        let other = Keypair::derive(ProcessId::new(owner.wrapping_add(1)), seed);
        prop_assert_ne!(other.vrf_eval(input).0, v1);
    }
}
