//! Serde round-trips for every wire type: a deployment shipping these
//! messages over a real transport must get byte-identical semantics back.

use st_blocktree::Block;
use st_crypto::Keypair;
use st_messages::{Envelope, Payload, Propose, Vote};
use st_types::{BlockId, ProcessId, Round, TxId, View};

fn keypair() -> Keypair {
    Keypair::derive(ProcessId::new(3), 42)
}

#[test]
fn vote_roundtrip() {
    let vote = Vote::new(ProcessId::new(3), Round::new(9), BlockId::new(0xABCD));
    let json = serde_json::to_string(&vote).unwrap();
    let back: Vote = serde_json::from_str(&json).unwrap();
    assert_eq!(vote, back);
}

#[test]
fn propose_roundtrip_preserves_block_body() {
    let kp = keypair();
    let block = Block::build(
        BlockId::GENESIS,
        View::new(2),
        kp.owner(),
        vec![TxId::new(1), TxId::new(2)],
    );
    let (value, proof) = kp.vrf_eval(2);
    let prop = Propose::new(
        kp.owner(),
        Round::new(2),
        View::new(2),
        block.clone(),
        value,
        proof,
    );
    let json = serde_json::to_string(&prop).unwrap();
    let back: Propose = serde_json::from_str(&json).unwrap();
    assert_eq!(prop, back);
    assert_eq!(back.block().payload(), block.payload());
    assert_eq!(back.tip(), block.id());
}

#[test]
fn envelope_roundtrip_still_verifies() {
    let kp = keypair();
    let directory = st_messages::KeyDirectory::derive(8, 42);
    let vote = Vote::new(kp.owner(), Round::new(5), BlockId::new(7));
    let env = Envelope::sign(&kp, Payload::Vote(vote));
    let json = serde_json::to_string(&env).unwrap();
    let back: Envelope = serde_json::from_str(&json).unwrap();
    assert_eq!(env, back);
    assert!(
        back.verify(&directory),
        "signature must survive serialization"
    );
}

#[test]
fn tampered_envelope_fails_verification_after_roundtrip() {
    let kp = keypair();
    let directory = st_messages::KeyDirectory::derive(8, 42);
    let vote = Vote::new(kp.owner(), Round::new(5), BlockId::new(7));
    let env = Envelope::sign(&kp, Payload::Vote(vote));
    let mut json = serde_json::to_string(&env).unwrap();
    // Flip the voted tip inside the serialized payload.
    json = json.replace("7", "8");
    if let Ok(tampered) = serde_json::from_str::<Envelope>(&json) {
        assert!(
            !tampered.verify(&directory),
            "tampering must break the signature"
        );
    }
}
