//! Serde round-trips for every wire type: a deployment shipping these
//! messages over a real transport must get byte-identical semantics back.

use st_blocktree::Block;
use st_crypto::Keypair;
use st_messages::{AggregatedVote, Envelope, KeyDirectory, Payload, Propose, SharedEnvelope, Vote};
use st_types::{BlockId, ProcessId, Round, TxId, View};

fn keypair() -> Keypair {
    Keypair::derive(ProcessId::new(3), 42)
}

#[test]
fn vote_roundtrip() {
    let vote = Vote::new(ProcessId::new(3), Round::new(9), BlockId::new(0xABCD));
    let json = serde_json::to_string(&vote).unwrap();
    let back: Vote = serde_json::from_str(&json).unwrap();
    assert_eq!(vote, back);
}

#[test]
fn propose_roundtrip_preserves_block_body() {
    let kp = keypair();
    let block = Block::build(
        BlockId::GENESIS,
        View::new(2),
        kp.owner(),
        vec![TxId::new(1), TxId::new(2)],
    );
    let (value, proof) = kp.vrf_eval(2);
    let prop = Propose::new(
        kp.owner(),
        Round::new(2),
        View::new(2),
        block.clone(),
        value,
        proof,
    );
    let json = serde_json::to_string(&prop).unwrap();
    let back: Propose = serde_json::from_str(&json).unwrap();
    assert_eq!(prop, back);
    assert_eq!(back.block().payload(), block.payload());
    assert_eq!(back.tip(), block.id());
}

#[test]
fn envelope_roundtrip_still_verifies() {
    let kp = keypair();
    let directory = st_messages::KeyDirectory::derive(8, 42);
    let vote = Vote::new(kp.owner(), Round::new(5), BlockId::new(7));
    let env = Envelope::sign(&kp, Payload::Vote(vote));
    let json = serde_json::to_string(&env).unwrap();
    let back: Envelope = serde_json::from_str(&json).unwrap();
    assert_eq!(env, back);
    assert!(
        back.verify(&directory),
        "signature must survive serialization"
    );
}

#[test]
fn shared_envelope_roundtrip_reverifies_fresh() {
    let kp = keypair();
    let directory = KeyDirectory::derive(8, 42);
    let vote = Vote::new(kp.owner(), Round::new(5), BlockId::new(7));
    let shared = SharedEnvelope::new(Envelope::sign(&kp, Payload::Vote(vote)));
    assert!(shared.verify_cached(&directory));
    let json = serde_json::to_string(&shared).unwrap();
    // The wire form is exactly the inner envelope: the verdict cache is a
    // local optimization and must never cross a socket.
    assert_eq!(json, serde_json::to_string(shared.envelope()).unwrap());
    let back: SharedEnvelope = serde_json::from_str(&json).unwrap();
    assert_eq!(back, shared);
    assert!(!SharedEnvelope::same_allocation(&back, &shared));
    assert!(back.verify_cached(&directory));
}

#[test]
fn shared_envelope_roundtrip_does_not_import_remote_verdict() {
    // A forged envelope whose sender's verdict was (maliciously) cached as
    // valid elsewhere must still fail locally after deserialization.
    let forger = Keypair::derive(ProcessId::new(3), 977); // wrong system seed
    let directory = KeyDirectory::derive(8, 42);
    let vote = Vote::new(forger.owner(), Round::new(5), BlockId::new(7));
    let forged = SharedEnvelope::new(Envelope::sign(&forger, Payload::Vote(vote)));
    let json = serde_json::to_string(&forged).unwrap();
    let back: SharedEnvelope = serde_json::from_str(&json).unwrap();
    assert!(!back.verify_cached(&directory));
}

#[test]
fn aggregated_vote_roundtrip_preserves_verifiable_signers() {
    let directory = KeyDirectory::derive(8, 42);
    let tip = BlockId::new(31);
    let round = Round::new(6);
    let mut agg = AggregatedVote::new(round, tip);
    for i in 0..5u32 {
        let kp = Keypair::derive(ProcessId::new(i), 42);
        let env = Envelope::sign(&kp, Payload::Vote(Vote::new(kp.owner(), round, tip)));
        assert!(agg.absorb(&env, &directory));
    }
    let json = serde_json::to_string(&agg).unwrap();
    let back: AggregatedVote = serde_json::from_str(&json).unwrap();
    assert_eq!(back.round(), round);
    assert_eq!(back.tip(), tip);
    let votes = back.verified_votes(&directory);
    assert_eq!(votes.len(), 5, "all five signatures must survive the trip");
    for v in votes {
        assert_eq!(v.round(), round);
        assert_eq!(v.tip(), tip);
    }
}

#[test]
fn tampered_envelope_fails_verification_after_roundtrip() {
    let kp = keypair();
    let directory = st_messages::KeyDirectory::derive(8, 42);
    let vote = Vote::new(kp.owner(), Round::new(5), BlockId::new(7));
    let env = Envelope::sign(&kp, Payload::Vote(vote));
    let mut json = serde_json::to_string(&env).unwrap();
    // Flip the voted tip inside the serialized payload.
    json = json.replace("7", "8");
    if let Ok(tampered) = serde_json::from_str::<Envelope>(&json) {
        assert!(
            !tampered.verify(&directory),
            "tampering must break the signature"
        );
    }
}
