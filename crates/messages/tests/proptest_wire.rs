//! Property suite for the compact binary wire codec (ISSUE 9 acceptance):
//! encode→decode→encode is byte-identical for every wire message type, and
//! the binary codec agrees with the serde JSON debug codec on a generated
//! corpus — two independent codecs, one message, same value back.

use proptest::prelude::*;
use st_blocktree::Block;
use st_crypto::Keypair;
use st_messages::{wire, AggregatedVote, Envelope, KeyDirectory, Payload, Propose, Vote};
use st_types::{BlockId, ProcessId, Round, TxId, View};

const SEED: u64 = 7;

fn vote_from(sender: u32, round: u64, tip: u64) -> Vote {
    Vote::new(
        ProcessId::new(sender % 64),
        Round::new(round),
        BlockId::new(tip),
    )
}

fn block_from(genesis: bool, parent: u64, view: u64, producer: u32, txs: &[u64]) -> Block {
    if genesis {
        Block::genesis()
    } else {
        Block::build(
            BlockId::new(parent),
            View::new(view),
            ProcessId::new(producer % 64),
            txs.iter().map(|&t| TxId::new(t)).collect(),
        )
    }
}

fn propose_from(sender: u32, round: u64, block: Block) -> Propose {
    let owner = ProcessId::new(sender % 64);
    let kp = Keypair::derive(owner, SEED);
    let view = View::from_round(Round::new(round.max(1)));
    let (rho, proof) = kp.vrf_eval(view.as_u64());
    Propose::new(owner, Round::new(round), view, block, rho, proof)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vote_binary_identity_and_json_agreement(
        sender in any::<u32>(),
        round in any::<u64>(),
        tip in any::<u64>(),
    ) {
        let vote = vote_from(sender, round, tip);
        let bytes = wire::encode_vote(&vote);
        let back = wire::decode_vote(&bytes);
        prop_assert_eq!(back, Ok(vote));
        prop_assert_eq!(wire::encode_vote(&vote), bytes);
        let json: Vote = serde_json::from_str(&serde_json::to_string(&vote).unwrap()).unwrap();
        prop_assert_eq!(json, vote);
    }

    #[test]
    fn block_binary_identity_and_json_agreement(
        genesis in any::<bool>(),
        parent in any::<u64>(),
        view in 0u64..1_000_000,
        producer in any::<u32>(),
        txs in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let block = block_from(genesis, parent, view, producer, &txs);
        let bytes = wire::encode_block(&block);
        let back = wire::decode_block(&bytes).unwrap();
        prop_assert_eq!(&back, &block);
        prop_assert_eq!(wire::encode_block(&back), bytes);
        let json: Block = serde_json::from_str(&serde_json::to_string(&block).unwrap()).unwrap();
        prop_assert_eq!(json, block);
    }

    #[test]
    fn propose_binary_identity_and_json_agreement(
        sender in any::<u32>(),
        round in 1u64..1_000_000,
        genesis in any::<bool>(),
        parent in any::<u64>(),
        txs in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let block = block_from(genesis, parent, round / 2, sender, &txs);
        let p = propose_from(sender, round, block);
        let bytes = wire::encode_propose(&p);
        let back = wire::decode_propose(&bytes).unwrap();
        prop_assert_eq!(back.to_bytes(), p.to_bytes());
        prop_assert_eq!(back.block().id(), p.block().id());
        prop_assert_eq!(wire::encode_propose(&back), bytes);
        let json: Propose = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        prop_assert_eq!(json.to_bytes(), p.to_bytes());
        prop_assert_eq!(wire::encode_propose(&json), wire::encode_propose(&p));
    }

    #[test]
    fn envelope_binary_identity_json_agreement_and_verification(
        sender in 0u32..8,
        round in 1u64..1_000_000,
        tip in any::<u64>(),
        is_propose in any::<bool>(),
        txs in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let owner = ProcessId::new(sender);
        let kp = Keypair::derive(owner, SEED);
        let dir = KeyDirectory::derive(8, SEED);
        let payload = if is_propose {
            let block = block_from(false, tip, round / 2, sender, &txs);
            Payload::Propose(propose_from(sender, round, block))
        } else {
            Payload::Vote(Vote::new(owner, Round::new(round), BlockId::new(tip)))
        };
        let env = Envelope::sign(&kp, payload);
        let bytes = wire::encode_envelope(&env);
        let back = wire::decode_envelope(&bytes).unwrap();
        prop_assert!(back.verify(&dir), "decoded envelope must still verify");
        prop_assert_eq!(wire::encode_envelope(&back), bytes.clone());
        let json: Envelope = serde_json::from_str(&serde_json::to_string(&env).unwrap()).unwrap();
        prop_assert!(json.verify(&dir));
        prop_assert_eq!(wire::encode_envelope(&json), bytes);
    }

    #[test]
    fn aggregate_binary_identity_json_agreement_and_verification(
        round in 1u64..1_000_000,
        tip in any::<u64>(),
        signer_bits in any::<u16>(),
    ) {
        let n = 16usize;
        let dir = KeyDirectory::derive(n, SEED);
        let tip = BlockId::new(tip);
        let round = Round::new(round);
        let mut agg = AggregatedVote::new(round, tip);
        for i in 0..n {
            if signer_bits & (1 << i) != 0 {
                let owner = ProcessId::new(i as u32);
                let kp = Keypair::derive(owner, SEED);
                let env = Envelope::sign(&kp, Payload::Vote(Vote::new(owner, round, tip)));
                prop_assert!(agg.absorb(&env, &dir));
            }
        }
        let bytes = wire::encode_aggregate(&agg);
        let back = wire::decode_aggregate(&bytes).unwrap();
        prop_assert_eq!(back.verified_votes(&dir).len(), agg.len());
        prop_assert_eq!(wire::encode_aggregate(&back), bytes.clone());
        let json: AggregatedVote =
            serde_json::from_str(&serde_json::to_string(&agg).unwrap()).unwrap();
        prop_assert_eq!(wire::encode_aggregate(&json), bytes);
    }

    #[test]
    fn random_garbage_never_panics_the_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Totality: arbitrary input produces a value or a WireError, never
        // a panic (st-messages is a P1 panic-free protocol crate).
        let _ = wire::decode_vote(&bytes);
        let _ = wire::decode_propose(&bytes);
        let _ = wire::decode_block(&bytes);
        let _ = wire::decode_envelope(&bytes);
        let _ = wire::decode_aggregate(&bytes);
        let _ = wire::split_frame(&bytes);
    }
}
