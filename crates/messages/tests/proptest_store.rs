//! Model-based property tests: `VoteStore` against a naive reference
//! implementation of the latest-unexpired-vote semantics.

use proptest::prelude::*;
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, ProcessId, Round};
use std::collections::HashMap;

/// The reference model: a flat list of votes, queried by brute force.
#[derive(Default)]
struct NaiveStore {
    votes: Vec<Vote>,
}

impl NaiveStore {
    fn insert(&mut self, vote: Vote) {
        self.votes.push(vote);
    }

    /// Latest vote per sender within `[lo, hi]`, discarding senders whose
    /// latest round contains two distinct tips.
    fn latest_in_window(&self, lo: Round, hi: Round) -> HashMap<ProcessId, BlockId> {
        let mut latest_round: HashMap<ProcessId, Round> = HashMap::new();
        for v in &self.votes {
            if v.round() < lo || v.round() > hi {
                continue;
            }
            let entry = latest_round.entry(v.sender()).or_insert(v.round());
            if v.round() > *entry {
                *entry = v.round();
            }
        }
        let mut out = HashMap::new();
        for (&sender, &round) in &latest_round {
            let tips: Vec<BlockId> = {
                let mut t: Vec<BlockId> = self
                    .votes
                    .iter()
                    .filter(|v| v.sender() == sender && v.round() == round)
                    .map(|v| v.tip())
                    .collect();
                t.sort_by_key(|b| b.as_u64());
                t.dedup();
                t
            };
            if tips.len() == 1 {
                out.insert(sender, tips[0]);
            }
            // ≥ 2 distinct tips in the latest round: equivocator, dropped.
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn store_matches_reference(
        ops in prop::collection::vec((0u32..6, 1u64..12, 0u64..5), 1..80),
        window in (0u64..12, 0u64..6),
    ) {
        let mut store = VoteStore::new();
        let mut naive = NaiveStore::default();
        for &(sender, round, tip) in &ops {
            let vote = Vote::new(ProcessId::new(sender), Round::new(round), BlockId::new(tip));
            store.insert(vote);
            naive.insert(vote);
        }
        let lo = Round::new(window.0);
        let hi = Round::new(window.0 + window.1);
        let fast = store.latest_in_window(lo, hi);
        let reference = naive.latest_in_window(lo, hi);
        prop_assert_eq!(fast.participation(), reference.len());
        for (sender, round, tip) in fast.iter() {
            prop_assert_eq!(reference.get(&sender), Some(&tip), "sender {:?}", sender);
            prop_assert!(round >= lo && round <= hi);
        }
    }

    #[test]
    fn prune_never_changes_window_above_cut(
        ops in prop::collection::vec((0u32..5, 1u64..20, 0u64..4), 1..60),
        cut in 1u64..20,
    ) {
        let mut store = VoteStore::new();
        for &(sender, round, tip) in &ops {
            store.insert(Vote::new(ProcessId::new(sender), Round::new(round), BlockId::new(tip)));
        }
        let before = store.latest_in_window(Round::new(cut), Round::new(25));
        store.prune_below(Round::new(cut));
        let after = store.latest_in_window(Round::new(cut), Round::new(25));
        prop_assert_eq!(before, after);
    }

    #[test]
    fn insert_is_idempotent(
        ops in prop::collection::vec((0u32..4, 1u64..8, 0u64..4), 1..40),
    ) {
        let mut once = VoteStore::new();
        let mut twice = VoteStore::new();
        for &(sender, round, tip) in &ops {
            let vote = Vote::new(ProcessId::new(sender), Round::new(round), BlockId::new(tip));
            once.insert(vote);
            twice.insert(vote);
            twice.insert(vote);
        }
        let w_once = once.latest_in_window(Round::new(0), Round::new(10));
        let w_twice = twice.latest_in_window(Round::new(0), Round::new(10));
        prop_assert_eq!(w_once, w_twice);
    }
}
