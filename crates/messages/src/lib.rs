//! Protocol messages and the latest-unexpired-message stores.
//!
//! The paper's central mechanism (Section 2.1, "Message structure") equips
//! every message with an **expiration period** `η`: the behaviour of the
//! protocol at round `r` is influenced only by the **latest** unexpired
//! message of each process, i.e. each process's most recent message among
//! rounds `[r − η, r]`, with equivocating latest messages discarded.
//!
//! This crate provides:
//!
//! * [`Vote`] / [`Propose`] — the two message kinds of Algorithm 1, with
//!   canonical byte encodings for signing;
//! * [`Envelope`] — a signed message; [`KeyDirectory`] — the public-key
//!   registry receivers verify against;
//! * [`VoteStore`] — per-process store answering "the latest vote of every
//!   sender within a round window, equivocators discarded" (the tally input
//!   of the extended graded agreement, Figure 3);
//! * [`ProposeStore`] — per-view proposal store used for VRF leader
//!   election.
//!
//! # Example: expiration-window semantics
//!
//! ```
//! use st_messages::{Vote, VoteStore};
//! use st_types::{BlockId, ProcessId, Round};
//!
//! let mut store = VoteStore::new();
//! let p = ProcessId::new(1);
//! store.insert(Vote::new(p, Round::new(2), BlockId::new(10)));
//! store.insert(Vote::new(p, Round::new(5), BlockId::new(20)));
//!
//! // Window [4, 6]: p's latest vote is the round-5 one.
//! let latest = store.latest_in_window(Round::new(4), Round::new(6));
//! assert_eq!(latest.vote_of(p), Some(BlockId::new(20)));
//!
//! // Window [0, 3]: the round-5 vote is out of range, round-2 is latest.
//! let earlier = store.latest_in_window(Round::new(0), Round::new(3));
//! assert_eq!(earlier.vote_of(p), Some(BlockId::new(10)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod envelope;
mod propose_store;
mod shared;
mod types;
mod vote_store;
pub mod wire;

pub use aggregate::{AggregatedVote, VoteAggregator};
pub use envelope::{Envelope, KeyDirectory, Payload};
pub use propose_store::ProposeStore;
pub use shared::SharedEnvelope;
pub use types::{Propose, Vote};
pub use vote_store::{InsertOutcome, LatestVotes, VoteStore};
