//! The two message kinds of Algorithm 1: votes and proposals.

use serde::{Deserialize, Serialize};
use st_blocktree::Block;
use st_crypto::{VrfOutput, VrfProof};
use st_types::{BlockId, ProcessId, Round, View};
use std::fmt;
use std::sync::Arc;

/// A `[vote, Λ]` message: `sender` votes in round `round` for the log whose
/// tip is `tip`.
///
/// Votes reference logs by tip id only — the blocks themselves travel in
/// [`Propose`] messages. Votes are tagged with their round number
/// (Section 2.1: "each message is tagged with the corresponding round
/// number"), which is what the expiration window and latest-message
/// selection key on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vote {
    sender: ProcessId,
    round: Round,
    tip: BlockId,
}

impl Vote {
    /// Creates a vote.
    pub fn new(sender: ProcessId, round: Round, tip: BlockId) -> Vote {
        Vote { sender, round, tip }
    }

    /// The voting process.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// The round this vote is tagged with.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The tip of the log voted for.
    pub fn tip(&self) -> BlockId {
        self.tip
    }

    /// Canonical byte encoding used for signing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(b"vote");
        out.extend_from_slice(&(self.sender.as_u32()).to_le_bytes());
        out.extend_from_slice(&self.round.as_u64().to_le_bytes());
        out.extend_from_slice(&self.tip.as_u64().to_le_bytes());
        out
    }
}

impl fmt::Debug for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[vote {} {} {}]", self.sender, self.round, self.tip)
    }
}

/// A `[propose, Λ, VRF(v)]` message: `sender` proposes the log whose tip
/// is `block` for view `view`, justified by its VRF evaluation on `view`.
///
/// The proposal carries the full tip [`Block`] (not just its id) because
/// receivers must learn block bodies to extend their trees — the paper's
/// underlying dissemination layer ships block content with proposals.
/// Ancestor blocks were shipped by earlier proposals; receivers buffer
/// orphans until the parent arrives.
///
/// The block body is held behind an [`Arc`] so that the proposer, every
/// receiver's tree, and the simulator's global tree can share one
/// allocation — at n=4096 a block body would otherwise be duplicated
/// thousands of times.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Propose {
    sender: ProcessId,
    round: Round,
    view: View,
    block: Arc<Block>,
    vrf_value: VrfOutput,
    vrf_proof: VrfProof,
}

impl Propose {
    /// Creates a proposal for `view`, sent in `round`, carrying the
    /// sender's VRF evaluation on the view number.
    pub fn new(
        sender: ProcessId,
        round: Round,
        view: View,
        block: impl Into<Arc<Block>>,
        vrf_value: VrfOutput,
        vrf_proof: VrfProof,
    ) -> Propose {
        Propose {
            sender,
            round,
            view,
            block: block.into(),
            vrf_value,
            vrf_proof,
        }
    }

    /// The proposed tip block (full body).
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The shared handle to the proposed tip block, for inserting into a
    /// tree without copying the body.
    pub fn block_arc(&self) -> &Arc<Block> {
        &self.block
    }

    /// The proposing process.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// The round the proposal was sent in.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The view this proposal is for.
    pub fn view(&self) -> View {
        self.view
    }

    /// The tip of the proposed log.
    pub fn tip(&self) -> BlockId {
        self.block.id()
    }

    /// The claimed VRF output on the view number.
    pub fn vrf_value(&self) -> VrfOutput {
        self.vrf_value
    }

    /// The VRF proof.
    pub fn vrf_proof(&self) -> &VrfProof {
        &self.vrf_proof
    }

    /// Canonical byte encoding used for signing. The VRF proof is bound by
    /// the value; including the value suffices for integrity.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44);
        out.extend_from_slice(b"prop");
        out.extend_from_slice(&(self.sender.as_u32()).to_le_bytes());
        out.extend_from_slice(&self.round.as_u64().to_le_bytes());
        out.extend_from_slice(&self.view.as_u64().to_le_bytes());
        // The block is content-addressed, so signing its id covers the
        // whole body.
        out.extend_from_slice(&self.block.id().as_u64().to_le_bytes());
        out.extend_from_slice(&self.vrf_value.to_le_bytes());
        out
    }
}

impl fmt::Debug for Propose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[propose {} {} {} {} vrf={:08x}]",
            self.sender,
            self.round,
            self.view,
            self.block.id(),
            self.vrf_value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_crypto::Keypair;

    #[test]
    fn vote_bytes_are_injective_over_fields() {
        let a = Vote::new(ProcessId::new(1), Round::new(2), BlockId::new(3));
        let b = Vote::new(ProcessId::new(1), Round::new(2), BlockId::new(4));
        let c = Vote::new(ProcessId::new(1), Round::new(3), BlockId::new(3));
        let d = Vote::new(ProcessId::new(2), Round::new(2), BlockId::new(3));
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                assert_eq!(x.to_bytes() == y.to_bytes(), i == j);
            }
        }
    }

    #[test]
    fn propose_bytes_bind_vrf_value_and_block() {
        let kp = Keypair::derive(ProcessId::new(0), 1);
        let (v1, p1) = kp.vrf_eval(1);
        let block = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(0), vec![]);
        let other = Block::build(BlockId::GENESIS, View::new(1), ProcessId::new(1), vec![]);
        let a = Propose::new(
            ProcessId::new(0),
            Round::ZERO,
            View::new(1),
            block.clone(),
            v1,
            p1,
        );
        let b = Propose::new(
            ProcessId::new(0),
            Round::ZERO,
            View::new(1),
            block.clone(),
            v1 ^ 1,
            p1,
        );
        let c = Propose::new(ProcessId::new(0), Round::ZERO, View::new(1), other, v1, p1);
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
        assert_eq!(a.tip(), block.id());
    }
}
