//! Vote aggregation — the dissemination-layer optimisation of footnote 2.
//!
//! "In Ethereum, process votes are aggregated by intermediate nodes which
//! then disseminate the votes independently." An [`AggregatedVote`] packs
//! every received vote for one `(round, tip)` pair into a single message
//! carrying the signer set; relays merge aggregates and forward one
//! message instead of `n`. Aggregation is transparent to the protocol —
//! receivers unpack the constituent votes and feed them to their stores —
//! but shrinks per-round message complexity from `O(n²)` vote deliveries
//! to `O(n·k)` for `k` aggregators/distinct tips.

use crate::envelope::{Envelope, KeyDirectory, Payload};
use crate::types::Vote;
use serde::{Deserialize, Serialize};
use st_crypto::Signature;
use st_types::{BlockId, ProcessId, Round};

/// A batch of votes for the same `(round, tip)`, each by a distinct
/// signer, verifiable against the key directory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatedVote {
    round: Round,
    tip: BlockId,
    /// `(signer, signature over the signer's vote)`, sorted by signer and
    /// deduplicated.
    signers: Vec<(ProcessId, Signature)>,
}

impl AggregatedVote {
    /// An empty aggregate for `(round, tip)`.
    pub fn new(round: Round, tip: BlockId) -> AggregatedVote {
        AggregatedVote {
            round,
            tip,
            signers: Vec::new(),
        }
    }

    /// Reassembles an aggregate from decoded wire parts. Crate-internal:
    /// the binary codec's counterpart to the derived `Deserialize` impl;
    /// entries are kept as transmitted and re-checked by
    /// [`AggregatedVote::verified_votes`].
    pub(crate) fn from_wire_parts(
        round: Round,
        tip: BlockId,
        signers: Vec<(ProcessId, Signature)>,
    ) -> AggregatedVote {
        AggregatedVote {
            round,
            tip,
            signers,
        }
    }

    /// The `(signer, signature)` entries, sorted by signer.
    pub(crate) fn signer_entries(&self) -> &[(ProcessId, Signature)] {
        &self.signers
    }

    /// The vote round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The voted tip.
    pub fn tip(&self) -> BlockId {
        self.tip
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.signers.len()
    }

    /// Whether the aggregate is empty.
    pub fn is_empty(&self) -> bool {
        self.signers.is_empty()
    }

    /// Absorbs a signed vote envelope if it matches this aggregate's
    /// `(round, tip)` and verifies; returns whether it was added.
    ///
    /// The signature is checked *before* inclusion, so a verified
    /// aggregate never carries an invalid constituent — relays cannot be
    /// tricked into laundering forgeries.
    pub fn absorb(&mut self, envelope: &Envelope, directory: &KeyDirectory) -> bool {
        let Payload::Vote(vote) = envelope.payload() else {
            return false;
        };
        if vote.round() != self.round || vote.tip() != self.tip {
            return false;
        }
        if !envelope.verify(directory) {
            return false;
        }
        match self
            .signers
            .binary_search_by_key(&vote.sender(), |&(s, _)| s)
        {
            Ok(_) => false, // already aggregated
            Err(pos) => {
                self.signers
                    .insert(pos, (vote.sender(), *envelope.signature()));
                true
            }
        }
    }

    /// Merges another aggregate for the same `(round, tip)`; returns the
    /// number of new signers added. Mismatched aggregates merge nothing.
    pub fn merge(&mut self, other: &AggregatedVote) -> usize {
        if other.round != self.round || other.tip != self.tip {
            return 0;
        }
        let mut added = 0;
        for &(signer, sig) in &other.signers {
            if let Err(pos) = self.signers.binary_search_by_key(&signer, |&(s, _)| s) {
                self.signers.insert(pos, (signer, sig));
                added += 1;
            }
        }
        added
    }

    /// Verifies every constituent signature; returns the valid votes.
    /// Invalid entries (possible only if the aggregate was built outside
    /// [`AggregatedVote::absorb`], e.g. deserialized from a peer) are
    /// skipped.
    pub fn verified_votes(&self, directory: &KeyDirectory) -> Vec<Vote> {
        self.signers
            .iter()
            .filter_map(|&(signer, sig)| {
                let vote = Vote::new(signer, self.round, self.tip);
                let pk = directory.key_of(signer)?;
                pk.verify(&vote.to_bytes(), &sig).then_some(vote)
            })
            .collect()
    }

    /// Wire-size estimate in bytes: header (round + tip) plus one
    /// (id, signature) pair per signer. Used by the message-complexity
    /// experiment.
    pub fn wire_bytes(&self) -> usize {
        16 + self.signers.len() * 12
    }
}

/// A relay that aggregates every vote envelope it sees, per `(round, tip)`.
#[derive(Clone, Debug, Default)]
pub struct VoteAggregator {
    aggregates: Vec<AggregatedVote>,
}

impl VoteAggregator {
    /// An empty aggregator.
    pub fn new() -> VoteAggregator {
        VoteAggregator::default()
    }

    /// Routes a vote envelope into the matching aggregate (creating one
    /// as needed); returns whether it was absorbed.
    pub fn ingest(&mut self, envelope: &Envelope, directory: &KeyDirectory) -> bool {
        let Payload::Vote(vote) = envelope.payload() else {
            return false;
        };
        if let Some(agg) = self
            .aggregates
            .iter_mut()
            .find(|a| a.round() == vote.round() && a.tip() == vote.tip())
        {
            return agg.absorb(envelope, directory);
        }
        let mut agg = AggregatedVote::new(vote.round(), vote.tip());
        let ok = agg.absorb(envelope, directory);
        if ok {
            self.aggregates.push(agg);
        }
        ok
    }

    /// The aggregates collected so far (one per distinct `(round, tip)`).
    pub fn aggregates(&self) -> &[AggregatedVote] {
        &self.aggregates
    }

    /// Drops aggregates older than `lo` (expired — can never be tallied).
    pub fn prune_below(&mut self, lo: Round) {
        self.aggregates.retain(|a| a.round() >= lo);
    }

    /// Total messages a relay forwards per round with aggregation: one
    /// per aggregate, versus one per constituent without.
    pub fn compression_ratio(&self) -> f64 {
        let votes: usize = self.aggregates.iter().map(AggregatedVote::len).sum();
        if self.aggregates.is_empty() {
            return 1.0;
        }
        votes as f64 / self.aggregates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_crypto::Keypair;

    fn signed_vote(sender: u32, round: u64, tip: u64, seed: u64) -> Envelope {
        let kp = Keypair::derive(ProcessId::new(sender), seed);
        Envelope::sign(
            &kp,
            Payload::Vote(Vote::new(
                ProcessId::new(sender),
                Round::new(round),
                BlockId::new(tip),
            )),
        )
    }

    #[test]
    fn absorb_and_unpack() {
        let dir = KeyDirectory::derive(5, 9);
        let mut agg = AggregatedVote::new(Round::new(2), BlockId::new(7));
        for i in 0..5 {
            assert!(agg.absorb(&signed_vote(i, 2, 7, 9), &dir));
        }
        assert_eq!(agg.len(), 5);
        let votes = agg.verified_votes(&dir);
        assert_eq!(votes.len(), 5);
        assert!(votes.iter().all(|v| v.tip() == BlockId::new(7)));
    }

    #[test]
    fn absorb_rejects_mismatches_and_duplicates() {
        let dir = KeyDirectory::derive(5, 9);
        let mut agg = AggregatedVote::new(Round::new(2), BlockId::new(7));
        assert!(agg.absorb(&signed_vote(0, 2, 7, 9), &dir));
        assert!(!agg.absorb(&signed_vote(0, 2, 7, 9), &dir)); // duplicate signer
        assert!(!agg.absorb(&signed_vote(1, 3, 7, 9), &dir)); // wrong round
        assert!(!agg.absorb(&signed_vote(1, 2, 8, 9), &dir)); // wrong tip
        assert!(!agg.absorb(&signed_vote(1, 2, 7, 10), &dir)); // bad signature (wrong seed)
        assert_eq!(agg.len(), 1);
    }

    #[test]
    fn merge_unions_signers() {
        let dir = KeyDirectory::derive(6, 9);
        let mut a = AggregatedVote::new(Round::new(1), BlockId::new(3));
        let mut b = AggregatedVote::new(Round::new(1), BlockId::new(3));
        for i in 0..3 {
            a.absorb(&signed_vote(i, 1, 3, 9), &dir);
        }
        for i in 2..6 {
            b.absorb(&signed_vote(i, 1, 3, 9), &dir);
        }
        assert_eq!(a.merge(&b), 3); // signers 3,4,5 are new
        assert_eq!(a.len(), 6);
        // Mismatched merge is a no-op.
        let other = AggregatedVote::new(Round::new(2), BlockId::new(3));
        assert_eq!(a.merge(&other), 0);
    }

    #[test]
    fn aggregator_routes_by_round_and_tip() {
        let dir = KeyDirectory::derive(6, 9);
        let mut relay = VoteAggregator::new();
        for i in 0..4 {
            relay.ingest(&signed_vote(i, 1, 3, 9), &dir);
        }
        for i in 4..6 {
            relay.ingest(&signed_vote(i, 1, 4, 9), &dir);
        }
        assert_eq!(relay.aggregates().len(), 2);
        assert!((relay.compression_ratio() - 3.0).abs() < 1e-9);
        relay.prune_below(Round::new(2));
        assert!(relay.aggregates().is_empty());
    }

    #[test]
    fn wire_bytes_scale_with_signers() {
        let dir = KeyDirectory::derive(10, 9);
        let mut agg = AggregatedVote::new(Round::new(1), BlockId::new(1));
        let empty = agg.wire_bytes();
        for i in 0..10 {
            agg.absorb(&signed_vote(i, 1, 1, 9), &dir);
        }
        assert_eq!(agg.wire_bytes(), empty + 10 * 12);
    }

    #[test]
    fn serde_roundtrip_then_verify() {
        let dir = KeyDirectory::derive(4, 9);
        let mut agg = AggregatedVote::new(Round::new(1), BlockId::new(2));
        for i in 0..4 {
            agg.absorb(&signed_vote(i, 1, 2, 9), &dir);
        }
        let json = serde_json::to_string(&agg).unwrap();
        let back: AggregatedVote = serde_json::from_str(&json).unwrap();
        assert_eq!(back.verified_votes(&dir).len(), 4);
    }
}
