//! The latest-unexpired-vote store.
//!
//! This is the data structure behind the paper's core mechanism: at round
//! `r`, the protocol's behaviour is influenced only by the **latest** vote
//! each process sent within the expiration window `[r − η, r]`, with
//! equivocating latest votes discarded (Section 2.1 "Message structure" and
//! Figure 3).

use crate::Vote;
use st_types::fasthash::{iter_sorted, mix64, mix64_pair};
use st_types::FastMap;
use st_types::{BlockId, ProcessId, Round};
use std::collections::BTreeMap;

/// What happened when a vote was inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// First vote from this sender for this round.
    Recorded,
    /// Identical vote already present (gossip duplicates are normal).
    Duplicate,
    /// A *different* vote from the same sender for the same round —
    /// equivocation. Both votes are remembered so the round is poisoned
    /// for this sender ("two different vote messages from the same process
    /// are ignored", Figures 2–3).
    Equivocation,
}

/// Per-(sender, round) record of what was voted.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RoundRecord {
    /// A single, unequivocal vote for this tip.
    Single(BlockId),
    /// The sender equivocated in this round; the record keeps the first
    /// two distinct tips as evidence (further tips add no information).
    Equivocated(BlockId, BlockId),
}

/// Hasher-independent digest of one `(sender, round, record)` entry, used
/// as the XOR term this entry contributes to [`VoteStore::fingerprint`].
///
/// The equivocated arm is symmetric in the two evidence tips: which of a
/// pair of equivocating votes arrived first is a delivery-order accident
/// that never affects the tally (the sender is discarded either way), so
/// it must not split otherwise-identical stores into different
/// fingerprints.
fn record_digest(sender: ProcessId, round: Round, rec: &RoundRecord) -> u64 {
    let key = mix64_pair(mix64(u64::from(sender.as_u32())), round.as_u64());
    match *rec {
        RoundRecord::Single(tip) => mix64_pair(key, tip.as_u64()),
        RoundRecord::Equivocated(a, b) => {
            mix64_pair(key, u64::MAX) ^ mix64_pair(key, a.as_u64()) ^ mix64_pair(key, b.as_u64())
        }
    }
}

/// Stores every vote a process has received and answers latest-in-window
/// queries.
///
/// See the crate-level docs for an example.
#[derive(Clone, Debug, Default)]
pub struct VoteStore {
    /// sender → (round → record). `BTreeMap` gives cheap
    /// latest-within-window lookups via `range(..).next_back()`.
    by_sender: FastMap<ProcessId, BTreeMap<Round, RoundRecord>>,
    /// Total count of distinct (sender, round, tip) votes recorded.
    distinct_votes: usize,
    /// XOR of [`record_digest`] over every stored `(sender, round,
    /// record)` entry — an order-insensitive, hasher-independent content
    /// fingerprint, maintained incrementally by [`VoteStore::insert`] and
    /// both prune variants. Equal fingerprints certify (up to 64-bit
    /// collision) that two stores answer every latest-in-window query
    /// identically, which is what the simulator's shared-tally cohort
    /// check needs.
    fingerprint: u64,
}

impl VoteStore {
    /// Creates an empty store.
    pub fn new() -> VoteStore {
        VoteStore::default()
    }

    /// Number of distinct (sender, round, tip) votes recorded.
    pub fn len(&self) -> usize {
        self.distinct_votes
    }

    /// Whether no votes are stored.
    pub fn is_empty(&self) -> bool {
        self.distinct_votes == 0
    }

    /// Records a received vote. Returns what happened; equivocations are
    /// remembered as poison for the (sender, round) pair.
    pub fn insert(&mut self, vote: Vote) -> InsertOutcome {
        let rounds = self.by_sender.entry(vote.sender()).or_default();
        match rounds.get_mut(&vote.round()) {
            None => {
                let rec = RoundRecord::Single(vote.tip());
                self.fingerprint ^= record_digest(vote.sender(), vote.round(), &rec);
                rounds.insert(vote.round(), rec);
                self.distinct_votes += 1;
                InsertOutcome::Recorded
            }
            Some(rec) => match *rec {
                RoundRecord::Single(tip) if tip == vote.tip() => InsertOutcome::Duplicate,
                RoundRecord::Single(first) => {
                    self.fingerprint ^= record_digest(vote.sender(), vote.round(), rec);
                    *rec = RoundRecord::Equivocated(first, vote.tip());
                    self.fingerprint ^= record_digest(vote.sender(), vote.round(), rec);
                    self.distinct_votes += 1;
                    InsertOutcome::Equivocation
                }
                RoundRecord::Equivocated(a, b) => {
                    // A third distinct tip adds no evidence: the record —
                    // and with it the fingerprint — stays as-is.
                    if a == vote.tip() || b == vote.tip() {
                        InsertOutcome::Duplicate
                    } else {
                        InsertOutcome::Equivocation
                    }
                }
            },
        }
    }

    /// The store's content fingerprint (see the field docs). Two stores
    /// with equal fingerprints hold the same effective vote records
    /// regardless of insertion order, hasher seed, or pruning history.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The latest record of `sender` within the closed window `[lo, hi]`:
    /// `None` if the sender has no vote there, `Some((round, None))` if
    /// its latest record in the window is an equivocation (sender
    /// discarded entirely), `Some((round, Some(tip)))` for a clean latest
    /// vote. This is the single-sender form of
    /// [`VoteStore::latest_in_window`], used by the incremental tally to
    /// re-derive one sender's contribution after an insert instead of
    /// re-scanning every sender.
    pub fn latest_of(
        &self,
        sender: ProcessId,
        lo: Round,
        hi: Round,
    ) -> Option<(Round, Option<BlockId>)> {
        let rounds = self.by_sender.get(&sender)?;
        let (&round, rec) = rounds.range(lo..=hi).next_back()?;
        match *rec {
            RoundRecord::Single(tip) => Some((round, Some(tip))),
            RoundRecord::Equivocated(_, _) => Some((round, None)),
        }
    }

    /// Whether `sender` has an equivocation recorded for `round`.
    pub fn is_equivocator_at(&self, sender: ProcessId, round: Round) -> bool {
        // stlint::allow(deadpub, reason = "the queryable face of InsertOutcome::Equivocation; slashing-style accountability reads it once the protocol reports evidence upward")
        matches!(
            self.by_sender.get(&sender).and_then(|r| r.get(&round)),
            Some(RoundRecord::Equivocated(_, _))
        )
    }

    /// The latest vote of every sender within the closed round window
    /// `[lo, hi]` — the tally input `M_i^r` of the extended graded
    /// agreement (Figure 3).
    ///
    /// Per sender, the vote from its highest round within the window is
    /// selected. If the sender equivocated in that round, the sender is
    /// **discarded entirely** ("equivocating latest messages being
    /// discarded", Section 3.3) — it contributes neither a vote nor to the
    /// perceived participation count.
    pub fn latest_in_window(&self, lo: Round, hi: Round) -> LatestVotes {
        let mut out = LatestVotes { votes: Vec::new() };
        self.latest_in_window_into(lo, hi, &mut out);
        out
    }

    /// [`VoteStore::latest_in_window`] into a caller-owned buffer, reusing
    /// its allocation. The tally runs once per process per round, so the
    /// hot loop keeps one scratch [`LatestVotes`] alive instead of
    /// allocating (and dropping) an `n`-entry vector every round.
    pub fn latest_in_window_into(&self, lo: Round, hi: Round, out: &mut LatestVotes) {
        out.votes.clear();
        // Sender-sorted iteration: the canonical adapter makes the output
        // order a function of the senders, not the hasher.
        for (&sender, rounds) in iter_sorted(&self.by_sender) {
            if let Some((&round, rec)) = rounds.range(lo..=hi).next_back() {
                match rec {
                    RoundRecord::Single(tip) => out.votes.push((sender, round, *tip)),
                    RoundRecord::Equivocated(_, _) => { /* discarded */ }
                }
            }
        }
    }

    /// Drops all votes from rounds strictly below `lo` (they can never
    /// again fall inside an expiration window once `r − η ≥ lo`). Keeps
    /// memory proportional to `n · η`.
    ///
    /// Called once per round from the protocol's send phase, so the cost
    /// must scale with what is *actually removed* (usually one round's
    /// worth per sender, often nothing), not with what is retained:
    /// entries are popped from the front of each sender's round map only
    /// while they are expired. The previous `split_off`-based
    /// implementation rebuilt every sender's whole map every round — an
    /// `O(n · η)` allocation wall per process per round; it survives as
    /// [`VoteStore::prune_below_presplit`] for the naive benchmarking
    /// baseline.
    pub fn prune_below(&mut self, lo: Round) {
        let mut any_emptied = false;
        // stlint::allow(iterorder, reason = "per-sender pops are independent and the fingerprint/count updates are XOR/sum folds, both order-insensitive")
        for (&sender, rounds) in self.by_sender.iter_mut() {
            while let Some(entry) = rounds.first_entry() {
                if *entry.key() >= lo {
                    break;
                }
                self.distinct_votes -= match entry.get() {
                    RoundRecord::Single(_) => 1,
                    RoundRecord::Equivocated(_, _) => 2,
                };
                self.fingerprint ^= record_digest(sender, *entry.key(), entry.get());
                entry.remove();
            }
            any_emptied |= rounds.is_empty();
        }
        if any_emptied {
            self.by_sender.retain(|_, rounds| !rounds.is_empty());
        }
    }

    /// The seed implementation of [`VoteStore::prune_below`]: rebuilds
    /// every sender's round map via `split_off` whether or not anything is
    /// expired. Identical observable behaviour, pre-refactor cost model —
    /// used only by the naive benchmarking baseline.
    pub fn prune_below_presplit(&mut self, lo: Round) {
        // stlint::allow(iterorder, reason = "per-sender rebuilds are independent and the fingerprint/count updates are XOR/sum folds, both order-insensitive")
        for (&sender, rounds) in self.by_sender.iter_mut() {
            let keep = rounds.split_off(&lo);
            for (&round, rec) in rounds.iter() {
                self.distinct_votes -= match rec {
                    RoundRecord::Single(_) => 1,
                    RoundRecord::Equivocated(_, _) => 2,
                };
                self.fingerprint ^= record_digest(sender, round, rec);
            }
            *rounds = keep;
        }
        self.by_sender.retain(|_, rounds| !rounds.is_empty());
    }

    /// The senders with at least one stored vote (for diagnostics).
    pub fn senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.by_sender.keys().copied()
    }
}

/// The result of a latest-in-window query: at most one vote per sender,
/// equivocators excluded. This is the set `M_i^r` the graded-agreement
/// tally runs over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatestVotes {
    /// `(sender, round the vote was cast in, tip voted for)`, sorted by
    /// sender.
    votes: Vec<(ProcessId, Round, BlockId)>,
}

impl LatestVotes {
    /// An empty vote set — the starting value for a reusable scratch
    /// buffer passed to [`VoteStore::latest_in_window_into`].
    pub fn empty() -> LatestVotes {
        LatestVotes::default()
    }

    /// The perceived participation `m = |M_i^r|`: the number of distinct
    /// processes contributing a (non-equivocating) latest vote.
    pub fn participation(&self) -> usize {
        self.votes.len()
    }

    /// Whether no votes fell in the window.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Iterates `(sender, cast round, tip)` triples, sorted by sender.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Round, BlockId)> + '_ {
        self.votes.iter().copied()
    }

    /// The tip voted for by `sender`, if it contributed.
    pub fn vote_of(&self, sender: ProcessId) -> Option<BlockId> {
        self.votes
            .binary_search_by_key(&sender, |&(s, _, _)| s)
            .ok()
            .map(|i| self.votes[i].2)
    }

    /// The distinct tips voted for (deduplicated, unordered).
    pub fn distinct_tips(&self) -> Vec<BlockId> {
        let mut tips: Vec<BlockId> = self.votes.iter().map(|&(_, _, t)| t).collect();
        tips.sort_by_key(|t| t.as_u64());
        tips.dedup();
        tips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(sender: u32, round: u64, tip: u64) -> Vote {
        Vote::new(ProcessId::new(sender), Round::new(round), BlockId::new(tip))
    }

    #[test]
    fn insert_outcomes() {
        let mut s = VoteStore::new();
        assert_eq!(s.insert(v(1, 1, 10)), InsertOutcome::Recorded);
        assert_eq!(s.insert(v(1, 1, 10)), InsertOutcome::Duplicate);
        assert_eq!(s.insert(v(1, 1, 11)), InsertOutcome::Equivocation);
        // Same-round third distinct tip still reports equivocation.
        assert_eq!(s.insert(v(1, 1, 12)), InsertOutcome::Equivocation);
        // Re-sending a poisoned tip is a duplicate.
        assert_eq!(s.insert(v(1, 1, 11)), InsertOutcome::Duplicate);
    }

    #[test]
    fn latest_picks_highest_round_in_window() {
        let mut s = VoteStore::new();
        s.insert(v(1, 1, 10));
        s.insert(v(1, 3, 30));
        s.insert(v(1, 5, 50));
        let w = s.latest_in_window(Round::new(0), Round::new(4));
        assert_eq!(w.vote_of(ProcessId::new(1)), Some(BlockId::new(30)));
        let w = s.latest_in_window(Round::new(0), Round::new(9));
        assert_eq!(w.vote_of(ProcessId::new(1)), Some(BlockId::new(50)));
        let w = s.latest_in_window(Round::new(6), Round::new(9));
        assert!(w.is_empty());
    }

    #[test]
    fn equivocating_latest_discards_sender() {
        let mut s = VoteStore::new();
        s.insert(v(1, 2, 20));
        s.insert(v(1, 4, 40));
        s.insert(v(1, 4, 41)); // equivocation in the latest round
        let w = s.latest_in_window(Round::new(0), Round::new(5));
        // Sender discarded entirely: no vote, not counted in participation.
        assert_eq!(w.vote_of(ProcessId::new(1)), None);
        assert_eq!(w.participation(), 0);
        // But a window that excludes the poisoned round sees the old vote.
        let w = s.latest_in_window(Round::new(0), Round::new(3));
        assert_eq!(w.vote_of(ProcessId::new(1)), Some(BlockId::new(20)));
        assert_eq!(w.participation(), 1);
    }

    #[test]
    fn equivocation_in_older_round_does_not_poison_newer_vote() {
        let mut s = VoteStore::new();
        s.insert(v(1, 2, 20));
        s.insert(v(1, 2, 21)); // equivocation at round 2
        s.insert(v(1, 4, 40)); // clean vote later
        let w = s.latest_in_window(Round::new(0), Round::new(5));
        assert_eq!(w.vote_of(ProcessId::new(1)), Some(BlockId::new(40)));
    }

    #[test]
    fn participation_counts_distinct_senders() {
        let mut s = VoteStore::new();
        s.insert(v(1, 1, 10));
        s.insert(v(2, 1, 10));
        s.insert(v(3, 2, 11));
        let w = s.latest_in_window(Round::new(1), Round::new(2));
        assert_eq!(w.participation(), 3);
        assert_eq!(w.distinct_tips(), vec![BlockId::new(10), BlockId::new(11)]);
    }

    #[test]
    fn window_boundaries_are_inclusive() {
        let mut s = VoteStore::new();
        s.insert(v(1, 3, 30));
        assert_eq!(
            s.latest_in_window(Round::new(3), Round::new(3))
                .participation(),
            1
        );
        assert_eq!(
            s.latest_in_window(Round::new(4), Round::new(9))
                .participation(),
            0
        );
        assert_eq!(
            s.latest_in_window(Round::new(0), Round::new(2))
                .participation(),
            0
        );
    }

    #[test]
    fn vanilla_window_is_single_round() {
        // η = 0 semantics: window [r, r] sees only round-r votes.
        let mut s = VoteStore::new();
        s.insert(v(1, 4, 40));
        s.insert(v(2, 5, 50));
        let w = s.latest_in_window(Round::new(5), Round::new(5));
        assert_eq!(w.participation(), 1);
        assert_eq!(w.vote_of(ProcessId::new(2)), Some(BlockId::new(50)));
    }

    #[test]
    fn prune_below_removes_and_recounts() {
        let mut s = VoteStore::new();
        s.insert(v(1, 1, 10));
        s.insert(v(1, 1, 11)); // equivocation: 2 distinct votes
        s.insert(v(1, 5, 50));
        s.insert(v(2, 2, 20));
        assert_eq!(s.len(), 4);
        s.prune_below(Round::new(3));
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.latest_in_window(Round::new(0), Round::new(9))
                .vote_of(ProcessId::new(1)),
            Some(BlockId::new(50))
        );
        assert_eq!(s.senders().count(), 1);
    }

    #[test]
    fn latest_of_matches_window_semantics() {
        let mut s = VoteStore::new();
        s.insert(v(1, 2, 20));
        s.insert(v(1, 4, 40));
        s.insert(v(1, 4, 41)); // equivocation in the latest round
        let p1 = ProcessId::new(1);
        assert_eq!(
            s.latest_of(p1, Round::new(0), Round::new(5)),
            Some((Round::new(4), None))
        );
        assert_eq!(
            s.latest_of(p1, Round::new(0), Round::new(3)),
            Some((Round::new(2), Some(BlockId::new(20))))
        );
        assert_eq!(s.latest_of(p1, Round::new(5), Round::new(9)), None);
        assert_eq!(
            s.latest_of(ProcessId::new(2), Round::new(0), Round::new(9)),
            None
        );
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_tracks_content() {
        let votes = [v(1, 1, 10), v(2, 3, 30), v(1, 4, 40), v(3, 2, 20)];
        let mut a = VoteStore::new();
        let mut b = VoteStore::new();
        for vote in votes {
            a.insert(vote);
        }
        for vote in votes.iter().rev() {
            b.insert(*vote);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), VoteStore::new().fingerprint());
        // Duplicates don't move the fingerprint; new content does.
        let before = a.fingerprint();
        a.insert(v(1, 1, 10));
        assert_eq!(a.fingerprint(), before);
        a.insert(v(4, 1, 10));
        assert_ne!(a.fingerprint(), before);
    }

    #[test]
    fn fingerprint_is_symmetric_in_equivocation_evidence_order() {
        let mut a = VoteStore::new();
        a.insert(v(1, 2, 20));
        a.insert(v(1, 2, 21));
        let mut b = VoteStore::new();
        b.insert(v(1, 2, 21));
        b.insert(v(1, 2, 20));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A third distinct tip adds no evidence and no fingerprint change.
        let before = a.fingerprint();
        a.insert(v(1, 2, 22));
        assert_eq!(a.fingerprint(), before);
    }

    #[test]
    fn fingerprint_after_prune_matches_fresh_store() {
        for presplit in [false, true] {
            let mut pruned = VoteStore::new();
            pruned.insert(v(1, 1, 10));
            pruned.insert(v(1, 1, 11)); // equivocation below the horizon
            pruned.insert(v(1, 5, 50));
            pruned.insert(v(2, 2, 20));
            if presplit {
                pruned.prune_below_presplit(Round::new(3));
            } else {
                pruned.prune_below(Round::new(3));
            }
            let mut fresh = VoteStore::new();
            fresh.insert(v(1, 5, 50));
            assert_eq!(pruned.fingerprint(), fresh.fingerprint());
        }
    }

    #[test]
    fn iter_is_sorted_by_sender() {
        let mut s = VoteStore::new();
        s.insert(v(5, 1, 1));
        s.insert(v(1, 1, 1));
        s.insert(v(3, 1, 1));
        let senders: Vec<_> = s
            .latest_in_window(Round::new(0), Round::new(2))
            .iter()
            .map(|(s, _, _)| s.as_u32())
            .collect();
        assert_eq!(senders, vec![1, 3, 5]);
    }
}
