//! Shared, verify-once message envelopes.
//!
//! A multicast reaches every process, but its bytes never change after
//! signing: storing one [`Envelope`] per receiver and re-checking its
//! signature at every receiver is pure waste — `O(n)` deep clones and
//! `O(n)` hash verifications per message, `O(n²)` per round. A
//! [`SharedEnvelope`] is an [`Arc`]-backed envelope with a cached
//! signature verdict: delivery is a reference-count bump and the
//! signature is checked **once per unique envelope** (at first receipt),
//! with every later receiver reusing the verdict.
//!
//! Honest-path behaviour is unchanged because honest envelopes are
//! immutable after signing, so the verdict is a pure function of the
//! envelope and the key directory. Adversarial forgeries still fail for
//! every receiver exactly as before — the cache just remembers the
//! (deterministic) failure. The verdict is keyed by
//! [`KeyDirectory::fingerprint`], so an envelope checked against a
//! *different* directory (another simulated system) is re-verified rather
//! than served a stale verdict.

use crate::{Envelope, KeyDirectory, Payload};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, reference-counted envelope with a cached signature
/// verdict. Cloning is a refcount bump; the payload is never deep-copied.
#[derive(Clone)]
pub struct SharedEnvelope {
    inner: Arc<Inner>,
}

struct Inner {
    envelope: Envelope,
    /// Cached verdict, encoded as `(directory fingerprint << 1) | valid`.
    /// `0` means "not verified yet". Fingerprints are nonzero by
    /// construction, so every filled cache value is nonzero. The encoding
    /// packs fingerprint and verdict into one atomic so a (cross-thread)
    /// race can only ever publish a *consistent* pair; and because the
    /// verdict is a deterministic function of (envelope, directory),
    /// racing writers for the same directory write the same value.
    verdict: AtomicU64,
}

impl SharedEnvelope {
    /// Wraps an envelope for shared, verify-once delivery.
    pub fn new(envelope: Envelope) -> SharedEnvelope {
        SharedEnvelope {
            inner: Arc::new(Inner {
                envelope,
                verdict: AtomicU64::new(0),
            }),
        }
    }

    /// The wrapped envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.inner.envelope
    }

    /// The payload (valid only if verification accepts).
    pub fn payload(&self) -> &Payload {
        self.inner.envelope.payload()
    }

    /// Verifies the signature against `directory`, reusing a cached
    /// verdict when this envelope was already checked against the same
    /// directory (by fingerprint). Semantically identical to
    /// [`Envelope::verify`] — only the amount of hashing differs.
    pub fn verify_cached(&self, directory: &KeyDirectory) -> bool {
        let key = directory.fingerprint() << 1;
        let cached = self.inner.verdict.load(Ordering::Acquire);
        if cached & !1 == key {
            return cached & 1 == 1;
        }
        let valid = self.inner.envelope.verify(directory);
        self.inner
            .verdict
            .store(key | valid as u64, Ordering::Release);
        valid
    }

    /// Whether two shared envelopes point at the same allocation
    /// (diagnostics; content equality is [`PartialEq`]).
    pub fn same_allocation(a: &SharedEnvelope, b: &SharedEnvelope) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl From<Envelope> for SharedEnvelope {
    fn from(envelope: Envelope) -> SharedEnvelope {
        SharedEnvelope::new(envelope)
    }
}

/// Serializes as the wrapped [`Envelope`] — the cached verdict is a local
/// optimization, never part of the wire representation.
impl Serialize for SharedEnvelope {
    fn to_value(&self) -> Value {
        self.inner.envelope.to_value()
    }
}

/// Deserializes as an [`Envelope`] and wraps it fresh (verdict cache
/// empty): a received envelope must always be re-verified locally.
impl Deserialize for SharedEnvelope {
    fn from_value(value: &Value) -> Result<SharedEnvelope, DeError> {
        Envelope::from_value(value).map(SharedEnvelope::new)
    }
}

impl PartialEq for SharedEnvelope {
    fn eq(&self, other: &SharedEnvelope) -> bool {
        self.inner.envelope == other.inner.envelope
    }
}

impl Eq for SharedEnvelope {}

impl fmt::Debug for SharedEnvelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared{:?}", self.inner.envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vote;
    use st_crypto::{verification_count, Keypair};
    use st_types::{BlockId, ProcessId, Round};

    fn signed(seed: u64) -> Envelope {
        let kp = Keypair::derive(ProcessId::new(0), seed);
        let vote = Vote::new(ProcessId::new(0), Round::new(1), BlockId::new(5));
        Envelope::sign(&kp, Payload::Vote(vote))
    }

    #[test]
    fn verifies_once_per_directory() {
        let dir = KeyDirectory::derive(2, 42);
        let shared = SharedEnvelope::new(signed(42));
        let before = verification_count();
        for _ in 0..10 {
            assert!(shared.verify_cached(&dir));
        }
        // One real verification; nine cache hits. (Other tests may also
        // verify concurrently, so only our *own* clones are bounded.)
        let clone = shared.clone();
        assert!(clone.verify_cached(&dir));
        assert!(SharedEnvelope::same_allocation(&shared, &clone));
        let _ = before; // counter asserted precisely in single-threaded bench
    }

    #[test]
    fn cached_rejection_stays_rejected() {
        let dir = KeyDirectory::derive(2, 42);
        let forged = SharedEnvelope::new(signed(977)); // wrong system seed
        assert!(!forged.verify_cached(&dir));
        assert!(!forged.verify_cached(&dir));
        assert!(!forged.envelope().verify(&dir));
    }

    #[test]
    fn different_directory_is_not_served_stale_verdict() {
        let dir_a = KeyDirectory::derive(2, 42);
        let dir_b = KeyDirectory::derive(2, 977);
        let shared = SharedEnvelope::new(signed(42));
        assert!(shared.verify_cached(&dir_a));
        // Same envelope, different process set: must re-verify and fail.
        assert!(!shared.verify_cached(&dir_b));
        // And flipping back re-verifies again rather than reusing dir_b's.
        assert!(shared.verify_cached(&dir_a));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let shared = SharedEnvelope::new(signed(1));
        let clone = shared.clone();
        assert_eq!(shared, clone);
        assert!(SharedEnvelope::same_allocation(&shared, &clone));
        // A structurally equal but separately wrapped envelope is equal
        // without sharing the allocation.
        let rewrapped = SharedEnvelope::new(signed(1));
        assert_eq!(shared, rewrapped);
        assert!(!SharedEnvelope::same_allocation(&shared, &rewrapped));
    }
}
