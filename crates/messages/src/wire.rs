//! Length-prefixed compact binary wire codec.
//!
//! The derived serde impls (over the JSON-shaped `Value` stub) remain the
//! debug codec and the cross-check oracle; this module is what actually
//! crosses node sockets. Every frame shares one outer layout:
//!
//! ```text
//! [len: u32 LE]  count of bytes after the length field (= 2 + body len)
//! [version: u8]  WIRE_VERSION, bumped on any incompatible change
//! [kind: u8]     frame discriminator (KIND_*)
//! [body]         kind-specific fixed-width little-endian fields
//! ```
//!
//! All integers are little-endian and fixed-width; there is no padding and
//! no alignment, so encode→decode→encode is byte-identical by
//! construction. Decoding never panics: every malformed input maps to a
//! [`WireError`]. Block bodies do not carry the content-address — the
//! decoder recomputes it via [`Block::build`], so a frame cannot lie about
//! a block id (genesis is flagged explicitly because its reserved id 0 is
//! outside the hash image).
//!
//! ```
//! use st_messages::{wire, Vote};
//! use st_types::{BlockId, ProcessId, Round};
//! let vote = Vote::new(ProcessId::new(3), Round::new(9), BlockId::new(77));
//! let bytes = wire::encode_vote(&vote);
//! assert_eq!(wire::decode_vote(&bytes), Ok(vote));
//! assert_eq!(wire::encode_vote(&vote), bytes);
//! ```

use crate::envelope::{Envelope, Payload};
use crate::types::{Propose, Vote};
use crate::AggregatedVote;
use st_blocktree::Block;
use st_crypto::{Signature, VrfProof};
use st_types::{BlockId, ProcessId, Round, TxId, View};
use std::fmt;

/// Current frame format version; the first header byte after the length.
pub const WIRE_VERSION: u8 = 1;

/// Frame kind: a bare [`Vote`].
pub const KIND_VOTE: u8 = 0x01;
/// Frame kind: a bare [`Propose`].
pub const KIND_PROPOSE: u8 = 0x02;
/// Frame kind: a bare [`Block`].
pub const KIND_BLOCK: u8 = 0x03;
/// Frame kind: a signed [`Envelope`].
pub const KIND_ENVELOPE: u8 = 0x04;
/// Frame kind: an [`AggregatedVote`] relay batch.
pub const KIND_AGGREGATE: u8 = 0x05;

/// Why a frame failed to decode. Decoding is total: every input maps to
/// `Ok` or one of these — never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the declared structure did.
    Truncated,
    /// The declared length disagrees with the bytes actually present.
    BadLength {
        /// Byte count the length prefix promised (after the prefix).
        declared: u64,
        /// Byte count actually present after the prefix.
        actual: u64,
    },
    /// Unknown format version.
    BadVersion(u8),
    /// The frame kind is not the one the decoder expected (or is unknown).
    BadKind(u8),
    /// Well-formed header, but bytes were left over after the body.
    Trailing(u64),
    /// A field held a value outside its domain.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadLength { declared, actual } => {
                write!(f, "length prefix declares {declared} bytes, found {actual}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unexpected frame kind {k:#04x}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after body"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a byte slice. Public so the
/// node runtime can parse its own control-frame bodies with the same
/// primitives (and the same total, panic-free error surface).
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Asserts the body was consumed exactly.
    pub fn done(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n as u64)),
        }
    }
}

/// Wraps `body` in the versioned outer frame for `kind`. Public for the
/// node runtime's control frames, which reuse the outer layout with their
/// own kind bytes.
pub fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + body.len());
    let len = (2 + body.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(body);
    out
}

/// Validates the outer frame of `bytes` (length prefix, version) and
/// returns `(kind, body)`. The caller dispatches on `kind`.
pub fn split_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let mut r = ByteReader::new(bytes);
    let declared = r.u32()? as u64;
    let actual = r.remaining() as u64;
    if declared != actual {
        return Err(WireError::BadLength { declared, actual });
    }
    if declared < 2 {
        return Err(WireError::Truncated);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    Ok((kind, &bytes[6..]))
}

fn expect_kind(bytes: &[u8], want: u8) -> Result<&[u8], WireError> {
    let (kind, body) = split_frame(bytes)?;
    if kind != want {
        return Err(WireError::BadKind(kind));
    }
    Ok(body)
}

// ---------------------------------------------------------------- bodies

fn put_vote(out: &mut Vec<u8>, v: &Vote) {
    out.extend_from_slice(&v.sender().as_u32().to_le_bytes());
    out.extend_from_slice(&v.round().as_u64().to_le_bytes());
    out.extend_from_slice(&v.tip().as_u64().to_le_bytes());
}

fn get_vote(r: &mut ByteReader<'_>) -> Result<Vote, WireError> {
    let sender = ProcessId::new(r.u32()?);
    let round = Round::new(r.u64()?);
    let tip = BlockId::new(r.u64()?);
    Ok(Vote::new(sender, round, tip))
}

fn put_block(out: &mut Vec<u8>, b: &Block) {
    if b.id().is_genesis() {
        out.push(1);
        return;
    }
    out.push(0);
    out.extend_from_slice(&b.parent().as_u64().to_le_bytes());
    out.extend_from_slice(&b.view().as_u64().to_le_bytes());
    out.extend_from_slice(&b.producer().as_u32().to_le_bytes());
    out.extend_from_slice(&(b.payload().len() as u32).to_le_bytes());
    for tx in b.payload() {
        out.extend_from_slice(&tx.as_u64().to_le_bytes());
    }
}

fn get_block(r: &mut ByteReader<'_>) -> Result<Block, WireError> {
    match r.u8()? {
        1 => Ok(Block::genesis()),
        0 => {
            let parent = BlockId::new(r.u64()?);
            let view = View::new(r.u64()?);
            let producer = ProcessId::new(r.u32()?);
            let count = r.u32()? as usize;
            if count > r.remaining() / 8 {
                return Err(WireError::Truncated);
            }
            let mut payload = Vec::with_capacity(count);
            for _ in 0..count {
                payload.push(TxId::new(r.u64()?));
            }
            Ok(Block::build(parent, view, producer, payload))
        }
        _ => Err(WireError::Malformed("block genesis flag")),
    }
}

fn put_propose(out: &mut Vec<u8>, p: &Propose) {
    out.extend_from_slice(&p.sender().as_u32().to_le_bytes());
    out.extend_from_slice(&p.round().as_u64().to_le_bytes());
    out.extend_from_slice(&p.view().as_u64().to_le_bytes());
    out.extend_from_slice(&p.vrf_value().to_le_bytes());
    out.extend_from_slice(&p.vrf_proof().as_wire_tag().to_le_bytes());
    put_block(out, p.block());
}

fn get_propose(r: &mut ByteReader<'_>) -> Result<Propose, WireError> {
    let sender = ProcessId::new(r.u32()?);
    let round = Round::new(r.u64()?);
    let view = View::new(r.u64()?);
    let vrf_value = r.u64()?;
    let vrf_proof = VrfProof::from_wire_tag(r.u64()?);
    let block = get_block(r)?;
    Ok(Propose::new(
        sender, round, view, block, vrf_value, vrf_proof,
    ))
}

// ---------------------------------------------------------------- frames

/// Encodes a [`Vote`] frame.
pub fn encode_vote(v: &Vote) -> Vec<u8> {
    let mut body = Vec::with_capacity(20);
    put_vote(&mut body, v);
    frame(KIND_VOTE, &body)
}

/// Decodes a [`Vote`] frame.
pub fn decode_vote(bytes: &[u8]) -> Result<Vote, WireError> {
    let mut r = ByteReader::new(expect_kind(bytes, KIND_VOTE)?);
    let vote = get_vote(&mut r)?;
    r.done()?;
    Ok(vote)
}

/// Encodes a [`Propose`] frame.
pub fn encode_propose(p: &Propose) -> Vec<u8> {
    let mut body = Vec::new();
    put_propose(&mut body, p);
    frame(KIND_PROPOSE, &body)
}

/// Decodes a [`Propose`] frame. The block id is recomputed from contents.
pub fn decode_propose(bytes: &[u8]) -> Result<Propose, WireError> {
    let mut r = ByteReader::new(expect_kind(bytes, KIND_PROPOSE)?);
    let propose = get_propose(&mut r)?;
    r.done()?;
    Ok(propose)
}

/// Encodes a [`Block`] frame.
pub fn encode_block(b: &Block) -> Vec<u8> {
    let mut body = Vec::new();
    put_block(&mut body, b);
    frame(KIND_BLOCK, &body)
}

/// Decodes a [`Block`] frame, recomputing the content-address.
pub fn decode_block(bytes: &[u8]) -> Result<Block, WireError> {
    let mut r = ByteReader::new(expect_kind(bytes, KIND_BLOCK)?);
    let block = get_block(&mut r)?;
    r.done()?;
    Ok(block)
}

/// Encodes a signed [`Envelope`] frame.
pub fn encode_envelope(e: &Envelope) -> Vec<u8> {
    let mut body = Vec::new();
    match e.payload() {
        Payload::Vote(v) => {
            body.push(0);
            put_vote(&mut body, v);
        }
        Payload::Propose(p) => {
            body.push(1);
            put_propose(&mut body, p);
        }
    }
    body.extend_from_slice(&e.signature().as_wire_tag().to_le_bytes());
    frame(KIND_ENVELOPE, &body)
}

/// Decodes an [`Envelope`] frame. Like the derived serde path this
/// reconstructs the claimed payload and signature verbatim; authenticity
/// is established separately by [`Envelope::verify`].
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, WireError> {
    let mut r = ByteReader::new(expect_kind(bytes, KIND_ENVELOPE)?);
    let payload = match r.u8()? {
        0 => Payload::Vote(get_vote(&mut r)?),
        1 => Payload::Propose(get_propose(&mut r)?),
        _ => return Err(WireError::Malformed("payload tag")),
    };
    let signature = Signature::from_wire_tag(r.u64()?);
    r.done()?;
    Ok(Envelope::from_wire_parts(payload, signature))
}

/// Encodes an [`AggregatedVote`] frame.
pub fn encode_aggregate(a: &AggregatedVote) -> Vec<u8> {
    let entries = a.signer_entries();
    let mut body = Vec::with_capacity(20 + entries.len() * 12);
    body.extend_from_slice(&a.round().as_u64().to_le_bytes());
    body.extend_from_slice(&a.tip().as_u64().to_le_bytes());
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (signer, sig) in entries {
        body.extend_from_slice(&signer.as_u32().to_le_bytes());
        body.extend_from_slice(&sig.as_wire_tag().to_le_bytes());
    }
    frame(KIND_AGGREGATE, &body)
}

/// Decodes an [`AggregatedVote`] frame. Entries are kept as transmitted;
/// [`AggregatedVote::verified_votes`] re-verifies every signature.
pub fn decode_aggregate(bytes: &[u8]) -> Result<AggregatedVote, WireError> {
    let mut r = ByteReader::new(expect_kind(bytes, KIND_AGGREGATE)?);
    let round = Round::new(r.u64()?);
    let tip = BlockId::new(r.u64()?);
    let count = r.u32()? as usize;
    if count > r.remaining() / 12 {
        return Err(WireError::Truncated);
    }
    let mut signers = Vec::with_capacity(count);
    for _ in 0..count {
        let signer = ProcessId::new(r.u32()?);
        let sig = Signature::from_wire_tag(r.u64()?);
        signers.push((signer, sig));
    }
    r.done()?;
    Ok(AggregatedVote::from_wire_parts(round, tip, signers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyDirectory;
    use st_crypto::Keypair;

    fn sample_propose(with_genesis: bool) -> Propose {
        let kp = Keypair::derive(ProcessId::new(1), 7);
        let block = if with_genesis {
            Block::genesis()
        } else {
            Block::build(
                BlockId::GENESIS,
                View::new(2),
                ProcessId::new(1),
                vec![TxId::new(4), TxId::new(9)],
            )
        };
        let (rho, proof) = kp.vrf_eval(2);
        Propose::new(
            ProcessId::new(1),
            Round::new(4),
            View::new(2),
            block,
            rho,
            proof,
        )
    }

    #[test]
    fn vote_frame_round_trips() {
        let vote = Vote::new(ProcessId::new(5), Round::new(11), BlockId::new(42));
        let bytes = encode_vote(&vote);
        assert_eq!(decode_vote(&bytes), Ok(vote));
        assert_eq!(encode_vote(&vote), bytes);
    }

    #[test]
    fn propose_frame_recomputes_block_id() {
        for genesis in [false, true] {
            let p = sample_propose(genesis);
            let back = decode_propose(&encode_propose(&p)).expect("decode");
            assert_eq!(back.block().id(), p.block().id());
            assert_eq!(back.to_bytes(), p.to_bytes());
            assert_eq!(encode_propose(&back), encode_propose(&p));
        }
    }

    #[test]
    fn envelope_frame_still_verifies() {
        let dir = KeyDirectory::derive(3, 7);
        let kp = Keypair::derive(ProcessId::new(1), 7);
        let env = Envelope::sign(
            &kp,
            Payload::Vote(Vote::new(ProcessId::new(1), Round::new(3), BlockId::new(8))),
        );
        let back = decode_envelope(&encode_envelope(&env)).expect("decode");
        assert!(back.verify(&dir));
        assert_eq!(encode_envelope(&back), encode_envelope(&env));
    }

    #[test]
    fn tampered_envelope_fails_after_decode() {
        let dir = KeyDirectory::derive(3, 7);
        let kp = Keypair::derive(ProcessId::new(1), 7);
        let env = Envelope::sign(
            &kp,
            Payload::Vote(Vote::new(ProcessId::new(1), Round::new(3), BlockId::new(8))),
        );
        let mut bytes = encode_envelope(&env);
        let tip_offset = bytes.len() - 9; // last body u64 before the signature... tamper the tip field
        bytes[tip_offset] ^= 1;
        // Re-frame is unnecessary: length/version unchanged, only body bits.
        if let Ok(back) = decode_envelope(&bytes) {
            assert!(!back.verify(&dir), "tampered envelope must not verify");
        }
    }

    #[test]
    fn malformed_frames_report_errors_not_panics() {
        assert_eq!(decode_vote(&[]), Err(WireError::Truncated));
        let vote = Vote::new(ProcessId::new(0), Round::new(1), BlockId::new(2));
        let good = encode_vote(&vote);
        // Length prefix lies.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_vote(&bad),
            Err(WireError::BadLength { .. })
        ));
        // Future version.
        let mut bad = good.clone();
        bad[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_vote(&bad),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );
        // Wrong kind for the decoder.
        assert_eq!(decode_propose(&good), Err(WireError::BadKind(KIND_VOTE)));
        // Trailing garbage inside a consistent outer frame.
        let mut bad = good.clone();
        bad.push(0);
        let len = (bad.len() - 4) as u32;
        bad[0..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_vote(&bad), Err(WireError::Trailing(1)));
    }

    #[test]
    fn aggregate_frame_round_trips_and_verifies() {
        let dir = KeyDirectory::derive(4, 7);
        let tip = BlockId::new(30);
        let mut agg = AggregatedVote::new(Round::new(6), tip);
        for i in 0..4u32 {
            let kp = Keypair::derive(ProcessId::new(i), 7);
            let env = Envelope::sign(
                &kp,
                Payload::Vote(Vote::new(ProcessId::new(i), Round::new(6), tip)),
            );
            assert!(agg.absorb(&env, &dir));
        }
        let bytes = encode_aggregate(&agg);
        let back = decode_aggregate(&bytes).expect("decode");
        assert_eq!(back.verified_votes(&dir).len(), 4);
        assert_eq!(encode_aggregate(&back), bytes);
    }
}
