//! Signed message envelopes and the public-key directory.
//!
//! Every message exchanged among processes carries an unforgeable
//! signature; messages without a valid signature are discarded
//! (Section 2.1). [`Envelope::sign`] produces a signed message and
//! [`Envelope::verify`] checks it against the claimed sender's key in the
//! [`KeyDirectory`].

use crate::{Propose, Vote};
use serde::{Deserialize, Serialize};
use st_crypto::{Keypair, PublicKey, Signature};
use st_types::{ProcessId, Round};
use std::fmt;

/// The payload of a signed message: a vote or a proposal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Payload {
    /// A graded-agreement vote.
    Vote(Vote),
    /// A view proposal.
    Propose(Propose),
}

impl Payload {
    /// The claimed sender of the payload.
    pub fn sender(&self) -> ProcessId {
        match self {
            Payload::Vote(v) => v.sender(),
            Payload::Propose(p) => p.sender(),
        }
    }

    /// The round the payload is tagged with.
    pub fn round(&self) -> Round {
        match self {
            Payload::Vote(v) => v.round(),
            Payload::Propose(p) => p.round(),
        }
    }

    /// Canonical bytes for signing.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Payload::Vote(v) => v.to_bytes(),
            Payload::Propose(p) => p.to_bytes(),
        }
    }
}

impl From<Vote> for Payload {
    fn from(v: Vote) -> Payload {
        Payload::Vote(v)
    }
}

impl From<Propose> for Payload {
    fn from(p: Propose) -> Payload {
        Payload::Propose(p)
    }
}

/// A signed protocol message.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Envelope {
    payload: Payload,
    signature: Signature,
}

impl Envelope {
    /// Signs `payload` with `keypair`.
    ///
    /// # Panics
    ///
    /// Panics if the payload's claimed sender is not the keypair's owner —
    /// that would be a forgery, which even Byzantine processes cannot do
    /// (they *can* sign arbitrary content under their own identity; create
    /// the payload with their own `ProcessId` for that).
    pub fn sign(keypair: &Keypair, payload: Payload) -> Envelope {
        assert_eq!(
            payload.sender(),
            keypair.owner(),
            "cannot sign a message claiming another process's identity"
        );
        let signature = keypair.sign(&payload.to_bytes());
        Envelope { payload, signature }
    }

    /// Reassembles an envelope from decoded wire parts. Crate-internal:
    /// used by the binary codec, mirroring the derived `Deserialize` path
    /// (the signature is still checked by [`Envelope::verify`]).
    pub(crate) fn from_wire_parts(payload: Payload, signature: Signature) -> Envelope {
        Envelope { payload, signature }
    }

    /// The payload (valid only if [`Envelope::verify`] accepts).
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// The raw signature (used by vote aggregation, which repacks
    /// constituent signatures into batch messages).
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Verifies the signature against the claimed sender's public key in
    /// `directory`. Returns `false` for unknown senders.
    pub fn verify(&self, directory: &KeyDirectory) -> bool {
        match directory.key_of(self.payload.sender()) {
            Some(pk) => pk.verify(&self.payload.to_bytes(), &self.signature),
            None => false,
        }
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Envelope({:?})", self.payload)
    }
}

/// The registry of public keys, indexed by process id.
///
/// In a deployment this is the validator set / PKI; in the simulation it is
/// derived once from the system seed.
#[derive(Clone, Debug)]
pub struct KeyDirectory {
    keys: Vec<PublicKey>,
    fingerprint: u64,
}

impl KeyDirectory {
    /// Builds the directory for a system of `n` processes under a seed,
    /// matching [`Keypair::derive`].
    pub fn derive(n: usize, system_seed: u64) -> KeyDirectory {
        let keys: Vec<PublicKey> = ProcessId::all(n)
            .map(|p| Keypair::derive(p, system_seed).public())
            .collect();
        // A cheap, collision-resistant-enough identity for the *process
        // set* this directory describes. The shared-envelope verification
        // cache is keyed on it so a cached verdict is never reused across
        // directories (e.g. two simulated systems with different seeds).
        // Forced odd so a fingerprint is never zero and shifted encodings
        // of it stay nonzero.
        let fingerprint = st_crypto::Hasher64::with_domain("st/keydir")
            .chain_u64(system_seed)
            .chain_u64(n as u64)
            .finish()
            | 1;
        KeyDirectory { keys, fingerprint }
    }

    /// The directory's identity: equal for directories describing the same
    /// process set, distinct (w.h.p.) otherwise. Never zero.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The number of registered processes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The public key of `p`, if registered.
    pub fn key_of(&self, p: ProcessId) -> Option<PublicKey> {
        self.keys.get(p.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::BlockId;

    fn setup() -> (Keypair, Keypair, KeyDirectory) {
        let a = Keypair::derive(ProcessId::new(0), 42);
        let b = Keypair::derive(ProcessId::new(1), 42);
        let dir = KeyDirectory::derive(2, 42);
        (a, b, dir)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (a, _, dir) = setup();
        let vote = Vote::new(a.owner(), Round::new(1), BlockId::new(5));
        let env = Envelope::sign(&a, vote.into());
        assert!(env.verify(&dir));
    }

    #[test]
    #[should_panic(expected = "claiming another process")]
    fn forging_identity_panics() {
        let (a, b, _) = setup();
        let vote = Vote::new(b.owner(), Round::new(1), BlockId::new(5));
        let _ = Envelope::sign(&a, vote.into());
    }

    #[test]
    fn unknown_sender_rejected() {
        let dir = KeyDirectory::derive(1, 42);
        let ghost = Keypair::derive(ProcessId::new(9), 42);
        let vote = Vote::new(ghost.owner(), Round::new(1), BlockId::new(5));
        let env = Envelope::sign(&ghost, vote.into());
        assert!(!env.verify(&dir));
    }

    #[test]
    fn wrong_seed_key_rejected() {
        let a_evil = Keypair::derive(ProcessId::new(0), 43); // different seed
        let dir = KeyDirectory::derive(2, 42);
        let vote = Vote::new(a_evil.owner(), Round::new(1), BlockId::new(5));
        let env = Envelope::sign(&a_evil, vote.into());
        assert!(!env.verify(&dir));
    }

    #[test]
    fn payload_accessors() {
        let (a, _, _) = setup();
        let vote = Vote::new(a.owner(), Round::new(3), BlockId::new(5));
        let p: Payload = vote.into();
        assert_eq!(p.sender(), a.owner());
        assert_eq!(p.round(), Round::new(3));
    }
}
