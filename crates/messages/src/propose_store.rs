//! Per-view proposal store with VRF-based leader selection.

use crate::envelope::KeyDirectory;
use crate::Propose;
use st_crypto::Vrf;
use st_types::FastMap;
use st_types::{ProcessId, View};
use std::collections::BTreeMap;

/// Stores the proposals received for each view and selects the leader's
/// proposal: the one with the **largest valid VRF(v)** (Algorithm 1,
/// round 1 of view v).
///
/// Equivocating proposers (several distinct proposals for one view) are
/// allowed by the model; selection applies a caller-supplied admissibility
/// filter (the "not conflicting with `L_{v−1}`" check) and breaks VRF ties
/// deterministically so that all honest processes with the same message set
/// choose the same proposal.
///
/// Proposals are bucketed per `(view, sender)`: the duplicate check on
/// insert only scans the sender's own (almost always singleton) bucket
/// instead of every proposal in the view — with `n` proposers per view
/// the per-view insert cost across a process set drops from `O(n³)` full
/// `Propose` comparisons to `O(n²)` bucket lookups, which is what lets
/// simulations scale to four-digit `n`.
#[derive(Clone, Debug, Default)]
pub struct ProposeStore {
    /// view → sender → that sender's proposals (insertion order).
    /// `BTreeMap` gives deterministic sender-order iteration, so
    /// selection is reproducible across processes and runs.
    by_view: FastMap<View, BTreeMap<ProcessId, Vec<Propose>>>,
}

impl ProposeStore {
    /// Creates an empty store.
    pub fn new() -> ProposeStore {
        ProposeStore::default()
    }

    /// Records a proposal after verifying its VRF evaluation; returns
    /// whether it was accepted (invalid VRFs are discarded, duplicates
    /// ignored).
    pub fn insert(&mut self, proposal: Propose, directory: &KeyDirectory) -> bool {
        let Some(pk) = directory.key_of(proposal.sender()) else {
            return false;
        };
        if !Vrf::verify(
            pk,
            proposal.view().as_u64(),
            proposal.vrf_value(),
            proposal.vrf_proof(),
        ) {
            return false;
        }
        let bucket = self
            .by_view
            .entry(proposal.view())
            .or_default()
            .entry(proposal.sender())
            .or_default();
        if bucket.contains(&proposal) {
            return false;
        }
        bucket.push(proposal);
        true
    }

    /// [`ProposeStore::insert`] with the *pre-fast-path* duplicate check:
    /// a linear scan over **every** proposal recorded for the view (the
    /// seed implementation) instead of the sender's own bucket.
    /// Semantically identical — a duplicate can only live in its own
    /// sender's bucket, since equality implies equal senders — but costed
    /// like the original `O(view size)` scan. Exists solely so the naive
    /// benchmarking baseline (`SimConfig::naive_delivery` in `st-sim`)
    /// reproduces the pre-refactor hot path faithfully.
    pub fn insert_full_scan(&mut self, proposal: Propose, directory: &KeyDirectory) -> bool {
        let Some(pk) = directory.key_of(proposal.sender()) else {
            return false;
        };
        if !Vrf::verify(
            pk,
            proposal.view().as_u64(),
            proposal.vrf_value(),
            proposal.vrf_proof(),
        ) {
            return false;
        }
        let senders = self.by_view.entry(proposal.view()).or_default();
        if senders.values().flatten().any(|q| q == &proposal) {
            return false;
        }
        senders.entry(proposal.sender()).or_default().push(proposal);
        true
    }

    /// All proposals recorded for `view`, in (sender, insertion) order.
    pub fn proposals_for(&self, view: View) -> Vec<&Propose> {
        self.by_view
            .get(&view)
            .map(|senders| senders.values().flatten().collect())
            .unwrap_or_default()
    }

    /// Selects the proposal for `view` with the largest valid VRF among
    /// those satisfying `admissible` (Algorithm 1: "a log in the propose
    /// message with the largest valid VRF(v) not conflicting with
    /// `L_{v−1}`").
    ///
    /// Ties (only possible when one sender equivocates, since VRF values
    /// are sender-unique per view) break by larger tip id so that honest
    /// processes holding the same proposal set agree.
    pub fn select_leader_proposal<F>(&self, view: View, mut admissible: F) -> Option<&Propose>
    where
        F: FnMut(&Propose) -> bool,
    {
        self.by_view
            .get(&view)?
            .values()
            .flatten()
            .filter(|p| admissible(p))
            .max_by_key(|p| (p.vrf_value(), p.tip().as_u64()))
    }

    /// Drops proposals for views strictly below `view` (past views can no
    /// longer be voted on).
    pub fn prune_below(&mut self, view: View) {
        self.by_view.retain(|&v, _| v >= view);
    }

    /// Number of views with at least one stored proposal.
    pub fn views_tracked(&self) -> usize {
        self.by_view.len()
    }

    /// The distinct proposers recorded for `view`.
    pub fn proposers_for(&self, view: View) -> Vec<ProcessId> {
        self.by_view
            .get(&view)
            .map(|senders| senders.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::KeyDirectory;
    use st_blocktree::Block;
    use st_crypto::Keypair;
    use st_types::{BlockId, Round, TxId};

    fn mk_proposal(kp: &Keypair, view: u64, tx: u64) -> Propose {
        let (value, proof) = kp.vrf_eval(view);
        let block = Block::build(
            BlockId::GENESIS,
            View::new(view),
            kp.owner(),
            vec![TxId::new(tx)],
        );
        Propose::new(
            kp.owner(),
            Round::new(view.saturating_mul(2).saturating_sub(2)),
            View::new(view),
            block,
            value,
            proof,
        )
    }

    fn setup(n: usize) -> (Vec<Keypair>, KeyDirectory) {
        let kps: Vec<_> = (0..n as u32)
            .map(|i| Keypair::derive(ProcessId::new(i), 7))
            .collect();
        (kps, KeyDirectory::derive(n, 7))
    }

    #[test]
    fn valid_proposal_accepted() {
        let (kps, dir) = setup(2);
        let mut s = ProposeStore::new();
        assert!(s.insert(mk_proposal(&kps[0], 1, 10), &dir));
        assert_eq!(s.proposals_for(View::new(1)).len(), 1);
    }

    #[test]
    fn invalid_vrf_rejected() {
        let (kps, dir) = setup(2);
        let mut s = ProposeStore::new();
        let (value, proof) = kps[0].vrf_eval(2); // VRF for the wrong view
        let block = Block::build(BlockId::GENESIS, View::new(1), kps[0].owner(), vec![]);
        let p = Propose::new(
            kps[0].owner(),
            Round::ZERO,
            View::new(1),
            block,
            value,
            proof,
        );
        assert!(!s.insert(p, &dir));
        assert!(s.proposals_for(View::new(1)).is_empty());
    }

    #[test]
    fn duplicates_ignored() {
        let (kps, dir) = setup(1);
        let mut s = ProposeStore::new();
        let p = mk_proposal(&kps[0], 1, 10);
        assert!(s.insert(p.clone(), &dir));
        assert!(!s.insert(p, &dir));
        assert_eq!(s.proposals_for(View::new(1)).len(), 1);
    }

    #[test]
    fn leader_selection_takes_max_vrf() {
        let (kps, dir) = setup(8);
        let mut s = ProposeStore::new();
        for kp in &kps {
            s.insert(mk_proposal(kp, 3, 100 + kp.owner().as_u32() as u64), &dir);
        }
        let best = s.select_leader_proposal(View::new(3), |_| true).unwrap();
        let max_vrf = kps.iter().map(|k| k.vrf_eval(3).0).max().unwrap();
        assert_eq!(best.vrf_value(), max_vrf);
    }

    #[test]
    fn admissibility_filter_excludes() {
        let (kps, dir) = setup(4);
        let mut s = ProposeStore::new();
        for kp in &kps {
            s.insert(mk_proposal(kp, 1, 100 + kp.owner().as_u32() as u64), &dir);
        }
        let winner_unfiltered = s
            .select_leader_proposal(View::new(1), |_| true)
            .unwrap()
            .sender();
        // Exclude the winner; a different proposer must be selected.
        let second = s
            .select_leader_proposal(View::new(1), |p| p.sender() != winner_unfiltered)
            .unwrap();
        assert_ne!(second.sender(), winner_unfiltered);
        // Excluding everything yields None.
        assert!(s.select_leader_proposal(View::new(1), |_| false).is_none());
    }

    #[test]
    fn equivocating_proposer_tie_breaks_by_tip() {
        let (kps, dir) = setup(1);
        let mut s = ProposeStore::new();
        let p1 = mk_proposal(&kps[0], 1, 10);
        let p2 = mk_proposal(&kps[0], 1, 99);
        let expected = if p1.tip().as_u64() > p2.tip().as_u64() {
            p1.tip()
        } else {
            p2.tip()
        };
        s.insert(p1, &dir);
        s.insert(p2, &dir);
        let best = s.select_leader_proposal(View::new(1), |_| true).unwrap();
        assert_eq!(best.tip(), expected);
    }

    #[test]
    fn prune_below_drops_old_views() {
        let (kps, dir) = setup(1);
        let mut s = ProposeStore::new();
        for view in 1..=5u64 {
            s.insert(mk_proposal(&kps[0], view, view), &dir);
        }
        s.prune_below(View::new(4));
        assert_eq!(s.views_tracked(), 2);
        assert!(s.proposals_for(View::new(3)).is_empty());
        assert!(!s.proposals_for(View::new(4)).is_empty());
    }

    #[test]
    fn proposers_listed_dedup() {
        let (kps, dir) = setup(2);
        let mut s = ProposeStore::new();
        s.insert(mk_proposal(&kps[0], 1, 10), &dir);
        s.insert(mk_proposal(&kps[0], 1, 11), &dir);
        s.insert(mk_proposal(&kps[1], 1, 12), &dir);
        assert_eq!(
            s.proposers_for(View::new(1)),
            vec![ProcessId::new(0), ProcessId::new(1)]
        );
    }
}
