//! A brace-matched item tree over the token stream — the structural
//! layer the v2 rules stand on.
//!
//! The lexer gives rules *lexical* accuracy (strings and doc comments
//! are inert, `#[cfg(test)]` regions are masked); this module adds the
//! *structural* facts the nondeterminism-flow rule family needs without
//! pulling in `syn`:
//!
//! * every `fn` item with its name and brace-matched body span, so rules
//!   can reason per function body instead of per file;
//! * `for`-loop headers (pattern / iterated expression / loop body
//!   spans) inside those bodies;
//! * method-call chains (`recv.a().b().c()`), walked call by call with
//!   argument parentheses and turbofish matched, so a rule can ask
//!   "does this iteration feed an order-sensitive sink?";
//! * the file's unordered-map bindings: every name declared (as a
//!   field, `let`, or parameter) with a `FastMap`/`FastSet`/`HashMap`/
//!   `HashSet` type, or assigned from one of their constructors.
//!
//! Everything is an approximation of real name/type resolution — a name
//! declared as a map anywhere in a file is treated as a map everywhere
//! in that file — but it is a *conservative-enough* one for a codebase
//! that already bans `std` maps from protocol crates (D1), and the
//! `stsan` hasher-perturbation harness dynamically falsifies whatever
//! the approximation misses.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// The unordered-map type names whose bindings are tracked.
pub const MAP_TYPES: [&str; 4] = ["FastMap", "FastSet", "HashMap", "HashSet"];

/// One `fn` item discovered in the token stream.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Whether the definition is `pub` (exactly `pub fn`, not
    /// `pub(crate) fn`, mirroring what counts as public API).
    pub is_pub: bool,
    /// Brace-matched body as inclusive token indices of `{` and `}`;
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// The item tree of one file: its functions plus the file's
/// unordered-map bindings.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Names known to be bound to an unordered map somewhere in the
    /// file (struct fields, `let` bindings, parameters, assignments
    /// from a map constructor).
    pub map_bindings: BTreeSet<String>,
}

impl ItemTree {
    /// Builds the tree for one token stream.
    pub fn build(tokens: &[Token]) -> ItemTree {
        ItemTree {
            fns: collect_fns(tokens),
            map_bindings: collect_map_bindings(tokens),
        }
    }

    /// Whether `name` is a tracked unordered-map binding.
    pub fn is_map(&self, name: &str) -> bool {
        self.map_bindings.contains(name)
    }
}

/// Index of the `}` matching the `{` at `open`, or `None` when the file
/// is truncated mid-block.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn collect_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(u8) -> u8` function-pointer type, not an item
        }
        let is_pub = i >= 1 && tokens[i - 1].is_ident("pub");
        // Scan the signature for the body `{` (or a `;` for bodyless
        // trait methods) at parenthesis/bracket depth 0. Braces cannot
        // appear in a signature before the body in the subset of Rust
        // this workspace uses.
        let mut body = None;
        let mut depth = 0usize;
        let mut j = i + 2;
        while let Some(t) = tokens.get(j) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                body = matching_brace(tokens, j).map(|end| (j, end));
                break;
            }
            j += 1;
        }
        fns.push(FnItem {
            name: name_tok.text.clone(),
            fn_idx: i,
            name_idx: i + 1,
            is_pub,
            body,
        });
    }
    fns
}

/// Collects names bound to unordered-map types anywhere in the file:
/// `name: [&][mut] [path::]FastMap<…>` (fields, params, annotated lets)
/// and `[let [mut]] name = [path::]FastMap::…` (constructor
/// assignments).
fn collect_map_bindings(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !MAP_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a `path::` prefix (`st_types::FastMap`,
        // `std::collections::HashMap`).
        let mut j = i;
        while j >= 3
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && tokens[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // Type-annotation position: skip `&`, `mut` and lifetimes
        // between the `:` and the type.
        let mut k = j - 1;
        while k > 0
            && (tokens[k].is_punct('&')
                || tokens[k].is_ident("mut")
                || tokens[k].kind == TokenKind::Lifetime)
        {
            k -= 1;
        }
        if tokens[k].is_punct(':') && k >= 1 && !tokens[k - 1].is_punct(':') {
            if tokens[k - 1].kind == TokenKind::Ident {
                names.insert(tokens[k - 1].text.clone());
            }
            continue;
        }
        // Constructor-assignment position: `name = FastMap::default()`.
        if tokens[j - 1].is_punct('=')
            && j >= 2
            && !tokens[j - 2].is_punct('=')
            && !tokens[j - 2].is_punct('!')
            && !tokens[j - 2].is_punct('<')
            && !tokens[j - 2].is_punct('>')
            && tokens[j - 2].kind == TokenKind::Ident
        {
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

/// One `for … in expr { body }` loop found inside a function body.
#[derive(Clone, Debug)]
pub struct ForLoop {
    /// Token index of the `for` keyword.
    pub for_idx: usize,
    /// Iterated expression as a half-open token range (after `in`, up to
    /// the body `{`).
    pub expr: (usize, usize),
    /// Loop body as inclusive `{`/`}` token indices.
    pub body: (usize, usize),
}

/// Finds the `for` loops inside one body span (inclusive brace
/// indices). `impl Trait for Type` headers never appear inside fn
/// bodies, so every `for` here is a loop (or an HRTB `for<…>`, which is
/// skipped because it has no `in`).
pub fn for_loops(tokens: &[Token], body: (usize, usize)) -> Vec<ForLoop> {
    let mut loops = Vec::new();
    let mut i = body.0 + 1;
    while i < body.1 {
        if tokens[i].is_ident("for") {
            if let Some(l) = parse_for(tokens, i, body.1) {
                i += 1; // nested loops inside this body still scanned
                loops.push(l);
                continue;
            }
        }
        i += 1;
    }
    loops
}

fn parse_for(tokens: &[Token], for_idx: usize, limit: usize) -> Option<ForLoop> {
    // Locate `in` at bracket depth 0 (a pattern may contain tuples).
    let mut depth = 0usize;
    let mut j = for_idx + 1;
    let in_idx = loop {
        if j >= limit {
            return None;
        }
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_ident("in") {
            break j;
        } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
            return None; // `for<'a>` HRTB or malformed — not a loop
        }
        j += 1;
    };
    // The iterated expression runs to the body `{` at depth 0. A struct
    // literal cannot appear un-parenthesised in a `for` header, so the
    // first depth-0 `{` is the body.
    depth = 0;
    let mut k = in_idx + 1;
    let open = loop {
        if k >= limit {
            return None;
        }
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('{') {
            break k;
        }
        k += 1;
    };
    let close = matching_brace(tokens, open)?;
    Some(ForLoop {
        for_idx,
        expr: (in_idx + 1, open),
        body: (open, close),
    })
}

/// Walks a method-call chain starting at the call-open parenthesis
/// `open` (the `(` of the first call): returns every *subsequent*
/// method name in the chain (`recv.iter().map(...).collect()` starting
/// at `iter`'s `(` yields `["map", "collect"]`). Turbofish
/// (`.collect::<Vec<_>>()`) and `?` are stepped over.
pub fn chain_methods(tokens: &[Token], open: usize) -> Vec<String> {
    let mut methods = Vec::new();
    let mut pos = match matching_paren(tokens, open) {
        Some(close) => close + 1,
        None => return methods,
    };
    loop {
        // Optional `?` after the previous call.
        if tokens.get(pos).is_some_and(|t| t.is_punct('?')) {
            pos += 1;
        }
        if !tokens.get(pos).is_some_and(|t| t.is_punct('.')) {
            return methods;
        }
        let Some(name) = tokens.get(pos + 1) else {
            return methods;
        };
        if name.kind != TokenKind::Ident {
            return methods; // tuple index `.0`
        }
        let mut next = pos + 2;
        // Turbofish: `::<…>` between the name and the call parens.
        if tokens.get(next).is_some_and(|t| t.is_punct(':'))
            && tokens.get(next + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(next + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut angle = 0isize;
            let mut m = next + 2;
            loop {
                let Some(t) = tokens.get(m) else {
                    return methods;
                };
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                m += 1;
            }
            next = m + 1;
        }
        if !tokens.get(next).is_some_and(|t| t.is_punct('(')) {
            // Field access mid-chain (`a.b.iter()` reached from `a`):
            // not a call — stop here; the scan restarts at later tokens.
            return methods;
        }
        methods.push(name.text.clone());
        pos = match matching_paren(tokens, next) {
            Some(close) => close + 1,
            None => return methods,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn collects_fns_with_bodies_and_visibility() {
        let src = "
pub fn alpha(x: u8) -> u8 { x + 1 }
fn beta() { if true { } }
pub(crate) fn gamma();
trait T { fn delta(&self); fn epsilon(&self) { } }
";
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed.tokens);
        let names: Vec<(&str, bool, bool)> = tree
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.body.is_some()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha", true, true),
                ("beta", false, true),
                ("gamma", false, false),
                ("delta", false, false),
                ("epsilon", false, true),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u8) -> u8) -> u8 { cb(1) }";
        let tree = ItemTree::build(&lex(src).tokens);
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].name, "real");
    }

    #[test]
    fn map_bindings_cover_fields_lets_params_and_ctors() {
        let src = "
struct S {
    seen: FastSet<u64>,
    index: st_types::FastMap<u64, u32>,
    plain: Vec<u64>,
}
fn f(tally: &FastMap<u8, u8>, v: &[u8]) {
    let mut local = FastSet::default();
    let annotated: std::collections::HashMap<u8, u8> = Default::default();
    let not_a_map = Vec::new();
    let _ = (local.len(), annotated.len(), not_a_map.len(), v.len());
}
";
        let tree = ItemTree::build(&lex(src).tokens);
        for name in ["seen", "index", "tally", "local", "annotated"] {
            assert!(tree.is_map(name), "missing binding {name}");
        }
        for name in ["plain", "not_a_map", "v", "S", "f"] {
            assert!(!tree.is_map(name), "false binding {name}");
        }
    }

    #[test]
    fn tuple_nested_map_types_do_not_bind_the_outer_name() {
        // `decided: Vec<(BlockId, FastSet<TxId>)>` — the Vec iterates in
        // insertion order; `decided` must not be treated as a map.
        let src = "struct S { decided: Vec<(BlockId, FastSet<TxId>)> }";
        let tree = ItemTree::build(&lex(src).tokens);
        assert!(!tree.is_map("decided"));
    }

    #[test]
    fn for_loops_are_found_with_expr_and_body_spans() {
        let src = "
fn f(m: &FastMap<u8, u8>) {
    for (k, v) in m.iter() {
        for x in 0..*v {
            use_it(*k, x);
        }
    }
}
";
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed.tokens);
        let body = tree.fns[0].body.unwrap();
        let loops = for_loops(&lexed.tokens, body);
        assert_eq!(loops.len(), 2);
        let (es, ee) = loops[0].expr;
        let expr: Vec<&str> = lexed.tokens[es..ee]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(expr, vec!["m", ".", "iter", "(", ")"]);
        assert!(loops[1].body.0 > loops[0].body.0);
        assert!(loops[1].body.1 < loops[0].body.1);
    }

    #[test]
    fn chain_methods_walk_calls_turbofish_and_question_marks() {
        let src = "fn f() { m.iter().map(|(a, b)| (b, a)).collect::<Vec<_>>().first()?.check(); }";
        let lexed = lex(src);
        // Find the `(` after `iter`.
        let iter_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("iter"))
            .unwrap();
        let methods = chain_methods(&lexed.tokens, iter_idx + 1);
        assert_eq!(methods, vec!["map", "collect", "first", "check"]);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f() { let g: Box<dyn for<'a> Fn(&'a u8)> = mk(); g(&1); }";
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed.tokens);
        let loops = for_loops(&lexed.tokens, tree.fns[0].body.unwrap());
        assert!(loops.is_empty(), "{loops:?}");
    }
}
