//! Diagnostics: rule identities, reporting, and `--json` serialization.

use std::fmt;

/// The rule families `stlint` enforces. Each has a short id (used in
/// reports) and a mnemonic slug (accepted interchangeably in
/// `stlint::allow(...)` annotations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No `std::collections::{HashMap,HashSet}` in non-test code of
    /// protocol/sim crates (randomized iteration order breaks
    /// byte-reproducibility) — use `st_types::fasthash` or `BTreeMap`.
    D1,
    /// No wall-clock (`std::time::{Instant,SystemTime}`) or OS entropy
    /// (`thread_rng`, `OsRng`, `RandomState`, …) outside `st-bench` and
    /// tests.
    D2,
    /// No bare `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in protocol-crate non-test code without an
    /// allow-with-reason stating the invariant.
    P1,
    /// `unsafe` is forbidden everywhere outside `third_party/`.
    U1,
    /// `Cargo.toml` layering: dependencies must point strictly down the
    /// crate stack; `criterion` only in `st-bench` dev-deps; nothing
    /// depends on `st-bench`; externals restricted to the offline
    /// `third_party/` set.
    L1,
    /// Allow-annotation hygiene: `stlint::allow(...)` must name a known
    /// rule and carry a non-empty `reason = "..."`.
    A1,
    /// Nondeterminism flow: iterating a `FastMap`/`FastSet`/`HashMap`/
    /// `HashSet` in protocol-crate non-test code where the iteration
    /// order can reach an ordered sink (`push`/`extend`/`insert`/send
    /// inside the loop body, or a `collect`/`fold`-style chain) — route
    /// through `st_types::fasthash::{iter_sorted, into_sorted_vec}` or
    /// state the order-insensitivity invariant in an allow.
    N1,
    /// Dead public API: a `pub fn` in crate `src/` with zero references
    /// anywhere else in the workspace (item-graph resolved: occurrences
    /// inside the defining function's own body don't count).
    DP,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 8] = [
    RuleId::D1,
    RuleId::D2,
    RuleId::P1,
    RuleId::U1,
    RuleId::L1,
    RuleId::A1,
    RuleId::N1,
    RuleId::DP,
];

impl RuleId {
    /// Short id, e.g. `"D1"`.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::P1 => "P1",
            RuleId::U1 => "U1",
            RuleId::L1 => "L1",
            RuleId::A1 => "A1",
            RuleId::N1 => "N1",
            RuleId::DP => "DP",
        }
    }

    /// Mnemonic slug, e.g. `"hashmap"`.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::D1 => "hashmap",
            RuleId::D2 => "wallclock",
            RuleId::P1 => "panic",
            RuleId::U1 => "unsafe",
            RuleId::L1 => "layering",
            RuleId::A1 => "allow",
            RuleId::N1 => "iterorder",
            RuleId::DP => "deadpub",
        }
    }

    /// One-line description for `stlint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "std HashMap/HashSet banned in protocol/sim non-test code (use st_types::fasthash)"
            }
            RuleId::D2 => "wall-clock and OS entropy banned outside st-bench and tests",
            RuleId::P1 => {
                "unwrap/expect/panic!/unreachable! in protocol non-test code need allow-with-reason"
            }
            RuleId::U1 => "unsafe forbidden outside third_party/",
            RuleId::L1 => "Cargo.toml dependency layering and offline third_party policy",
            RuleId::A1 => "stlint::allow annotations must name a known rule and give a reason",
            RuleId::N1 => {
                "unordered-map iteration feeding an ordered sink in protocol non-test code \
                 (use st_types::fasthash::iter_sorted/into_sorted_vec)"
            }
            RuleId::DP => "pub fn with zero workspace references (item-graph resolved)",
        }
    }

    /// Resolves an id or slug as written in an allow annotation.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .into_iter()
            .find(|r| r.key().eq_ignore_ascii_case(s) || r.slug() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.key(), self.slug())
    }
}

/// One finding: rule, location, and a message saying what to do instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column (1 when the finding has no finer location,
    /// e.g. manifest-level L1). Part of the stable sort key.
    pub col: u32,
    /// Human message.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        rule: RuleId,
        file: impl Into<String>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            col,
            message: message.into(),
        }
    }

    /// The byte-stable ordering every report surface uses:
    /// (path, line, col, rule).
    pub fn sort_key(&self) -> (&str, u32, u32, RuleId) {
        (&self.file, self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a check run as a JSON object (`--json`): schema version,
/// scan summary, and the diagnostics array. Hand-rolled — the linter is
/// dependency-free by design.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"slug\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            d.rule.key(),
            d.rule.slug(),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_accepts_id_and_slug() {
        assert_eq!(RuleId::parse("P1"), Some(RuleId::P1));
        assert_eq!(RuleId::parse("p1"), Some(RuleId::P1));
        assert_eq!(RuleId::parse("panic"), Some(RuleId::P1));
        assert_eq!(RuleId::parse("nonsense"), None);
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic::new(RuleId::U1, "a\"b.rs", 3, 5, "say \"no\"")];
        let json = to_json(&diags, 7);
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"col\": 5"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("say \\\"no\\\""));
    }

    #[test]
    fn empty_diags_render_empty_array() {
        let json = to_json(&[], 0);
        assert!(json.contains("\"diagnostics\": []"));
    }
}
