//! The token-level rule families: D1 (hash maps), D2 (wall clock &
//! entropy), P1 (panic family), U1 (unsafe).
//!
//! Each rule walks the token stream of one file with its test-region
//! mask and the file's crate context, and emits [`Diagnostic`]s that the
//! caller filters through the allow annotations.

use crate::allow::{collect_allows, suppressed};
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{lex, test_mask, Token, TokenKind};

/// Crates whose non-test code carries the determinism discipline: the
/// protocol/sim stack whose byte-equivalence suites assume runs are pure
/// functions of the seed.
pub const PROTOCOL_CRATES: [&str; 8] = [
    "st-types",
    "st-crypto",
    "st-ga",
    "st-messages",
    "st-blocktree",
    "st-gossip",
    "st-core",
    "st-sim",
];

/// Identifiers whose mere presence means OS entropy (D2). `rand` in this
/// workspace is the deterministic `third_party/` stand-in, so seeded use
/// is fine — these are the APIs that reach outside the seed.
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "getrandom",
];

/// Panicking method calls (`.name(`) covered by P1.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Panicking macros (`name!`) covered by P1.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Per-file lint context, decoupled from the workspace walker so fixture
/// tests can lint a file *as if* it belonged to any crate.
#[derive(Clone, Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub rel_path: &'a str,
    /// Cargo package name of the owning crate (e.g. `st-core`).
    pub crate_name: &'a str,
    /// Whether the whole file is test code (under `tests/`, `benches/`,
    /// or `examples/`).
    pub test_file: bool,
}

impl FileCtx<'_> {
    fn is_protocol(&self) -> bool {
        PROTOCOL_CRATES.contains(&self.crate_name)
    }
}

/// Lints one file's source, returning the diagnostics that survive its
/// allow annotations (malformed annotations surface as `A1`).
pub fn lint_source(ctx: &FileCtx<'_>, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let (allows, mut diags) = collect_allows(ctx.rel_path, &lexed.comments, &lexed.tokens);

    let mut raw = Vec::new();
    if ctx.is_protocol() {
        rule_d1(ctx, &lexed.tokens, &mask, &mut raw);
        rule_p1(ctx, &lexed.tokens, &mask, &mut raw);
    }
    if ctx.crate_name != "st-bench" {
        rule_d2(ctx, &lexed.tokens, &mask, &mut raw);
    }
    rule_u1(ctx, &lexed.tokens, &mut raw);

    diags.extend(
        raw.into_iter()
            .filter(|d| !suppressed(&allows, d.rule, d.line)),
    );
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Matches `lhs :: rhs` ending at index `i` of `rhs`: returns whether
/// tokens `i-3..i` are `Ident(lhs) : :`.
fn path_prefix_is(tokens: &[Token], i: usize, lhs: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(lhs)
}

/// After `prefix ::` at position `i` (the token following the second
/// `:`), collects the banned identifiers named by the path tail: either
/// a single segment (`HashMap`) or a brace group
/// (`{HashMap, hash_map::Entry, HashSet}`).
fn banned_in_path_tail<'t>(tokens: &'t [Token], i: usize, banned: &[&str]) -> Vec<&'t Token> {
    let mut hits = Vec::new();
    match tokens.get(i) {
        Some(t) if t.kind == TokenKind::Ident && banned.contains(&t.text.as_str()) => {
            hits.push(t);
        }
        Some(t) if t.is_punct('{') => {
            let mut depth = 1usize;
            let mut j = i + 1;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident && banned.contains(&t.text.as_str()) {
                    hits.push(t);
                }
                j += 1;
            }
        }
        _ => {}
    }
    hits
}

/// D1: `std::collections::{HashMap,HashSet}` (imports or qualified
/// paths) in protocol-crate non-test code. Flagging the import/path is
/// sufficient — bare `HashMap` uses require one of these to exist.
fn rule_d1(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !t.is_ident("collections") || !path_prefix_is(tokens, i, "std") {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
        {
            continue;
        }
        for hit in banned_in_path_tail(tokens, i + 3, &["HashMap", "HashSet"]) {
            out.push(Diagnostic::new(
                RuleId::D1,
                ctx.rel_path,
                hit.line,
                format!(
                    "std::collections::{} iterates in randomized order, which breaks \
                     byte-reproducibility; use st_types::fasthash::{} (or a BTreeMap \
                     when iteration order is observable)",
                    hit.text,
                    if hit.text == "HashMap" {
                        "FastMap"
                    } else {
                        "FastSet"
                    },
                ),
            ));
        }
    }
}

/// D2: `std::time::{Instant,SystemTime}` paths/imports and OS-entropy
/// identifiers outside `st-bench` and tests.
fn rule_d2(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("time") && path_prefix_is(tokens, i, "std") {
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            for hit in banned_in_path_tail(tokens, i + 3, &["Instant", "SystemTime"]) {
                out.push(Diagnostic::new(
                    RuleId::D2,
                    ctx.rel_path,
                    hit.line,
                    format!(
                        "std::time::{} reads the wall clock; simulation state must be a pure \
                         function of the seed — timing belongs in st-bench",
                        hit.text,
                    ),
                ));
            }
        } else if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(Diagnostic::new(
                RuleId::D2,
                ctx.rel_path,
                t.line,
                format!(
                    "`{}` draws OS entropy; every random choice must derive from the run seed",
                    t.text,
                ),
            ));
        }
    }
}

/// P1: panic-family calls in protocol-crate non-test code. These are
/// undocumented invariants — either convert to a fallible return or
/// annotate with `stlint::allow(panic, reason = "<the invariant>")`.
fn rule_p1(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_method = PANIC_METHODS.contains(&name)
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let is_macro =
            PANIC_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if is_method || is_macro {
            let shown = if is_macro {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            out.push(Diagnostic::new(
                RuleId::P1,
                ctx.rel_path,
                t.line,
                format!(
                    "`{shown}` in protocol code is an undocumented invariant: return an error, \
                     or state the invariant via `// stlint::allow(panic, reason = \"…\")`",
                ),
            ));
        }
    }
}

/// U1: the `unsafe` keyword, anywhere outside `third_party/` (which the
/// walker never scans) — tests included; every `st-*` crate also carries
/// `#![forbid(unsafe_code)]`, so this is the lint-time mirror of that
/// guarantee.
fn rule_u1(ctx: &FileCtx<'_>, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        if t.is_ident("unsafe") {
            out.push(Diagnostic::new(
                RuleId::U1,
                ctx.rel_path,
                t.line,
                "`unsafe` is forbidden outside third_party/; the whole workspace builds under \
                 #![forbid(unsafe_code)]",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &'static str) -> FileCtx<'static> {
        FileCtx {
            rel_path: "x.rs",
            crate_name,
            test_file: false,
        }
    }

    fn rules_fired(ctx: &FileCtx<'_>, src: &str) -> Vec<(RuleId, u32)> {
        lint_source(ctx, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn d1_catches_import_group_and_qualified_path() {
        let src = "use std::collections::{HashMap, BTreeMap, HashSet};\nfn f() -> std::collections::HashMap<u8, u8> { Default::default() }\n";
        let fired = rules_fired(&ctx("st-core"), src);
        assert_eq!(
            fired,
            vec![(RuleId::D1, 1), (RuleId::D1, 1), (RuleId::D1, 2)]
        );
    }

    #[test]
    fn d1_ignores_non_protocol_crates_and_tests() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_fired(&ctx("st-bench"), src).is_empty());
        assert!(rules_fired(&ctx("st-lint"), src).is_empty());
        let masked = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired(&ctx("st-core"), masked).is_empty());
    }

    #[test]
    fn d2_catches_time_and_entropy_everywhere_but_bench() {
        let src = "use std::time::Instant;\nfn f() { let _ = rand::thread_rng(); }\n";
        let fired = rules_fired(&ctx("st-analysis"), src);
        assert_eq!(fired, vec![(RuleId::D2, 1), (RuleId::D2, 2)]);
        assert!(rules_fired(&ctx("st-bench"), src).is_empty());
    }

    #[test]
    fn d2_allows_duration() {
        let src = "use std::time::Duration;\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn p1_catches_methods_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    if x.is_none() { panic!(\"no\"); }\n    x.unwrap()\n}\n";
        let fired = rules_fired(&ctx("st-messages"), src);
        assert_eq!(fired, vec![(RuleId::P1, 2), (RuleId::P1, 3)]);
    }

    #[test]
    fn p1_allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // stlint::allow(panic, reason = \"caller checked is_some\")\n}\n";
        assert!(rules_fired(&ctx("st-messages"), src).is_empty());
    }

    #[test]
    fn p1_allow_without_reason_reports_a1_and_keeps_p1() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // stlint::allow(panic)\n}\n";
        let fired = rules_fired(&ctx("st-messages"), src);
        assert!(fired.contains(&(RuleId::A1, 2)));
        assert!(fired.contains(&(RuleId::P1, 2)));
    }

    #[test]
    fn p1_ignores_identifier_lookalikes() {
        // `unwrap` as a plain ident (no `.` receiver, no call) and
        // `should_panic` attributes are not panic sites.
        let src = "fn unwrap() {}\nfn g() { unwrap(); }\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn u1_fires_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let fired = rules_fired(&ctx("st-bench"), src);
        assert_eq!(fired, vec![(RuleId::U1, 3)]);
    }

    #[test]
    fn u1_ignores_strings_and_comments() {
        let src = "// unsafe in prose\nconst S: &str = \"unsafe\";\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }
}
