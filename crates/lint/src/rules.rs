//! The per-file rule families: D1 (hash maps), D2 (wall clock &
//! entropy), P1 (panic family), U1 (unsafe), and the structural N1
//! (unordered-map iteration order flowing into ordered sinks).
//!
//! Each rule walks the token stream of one file with its test-region
//! mask and the file's crate context — N1 additionally consults the
//! [`ItemTree`] — and emits [`Diagnostic`]s that the caller filters
//! through the allow annotations.

use crate::allow::{collect_allows, suppressed};
use crate::diag::{Diagnostic, RuleId};
use crate::itemtree::{chain_methods, for_loops, ItemTree};
use crate::lexer::{lex, test_mask, Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose non-test code carries the determinism discipline: the
/// protocol/sim stack whose byte-equivalence suites assume runs are pure
/// functions of the seed.
pub const PROTOCOL_CRATES: [&str; 8] = [
    "st-types",
    "st-crypto",
    "st-ga",
    "st-messages",
    "st-blocktree",
    "st-gossip",
    "st-core",
    "st-sim",
];

/// Identifiers whose mere presence means OS entropy (D2). `rand` in this
/// workspace is the deterministic `third_party/` stand-in, so seeded use
/// is fine — these are the APIs that reach outside the seed.
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "getrandom",
];

/// Panicking method calls (`.name(`) covered by P1.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Panicking macros (`name!`) covered by P1.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Per-file lint context, decoupled from the workspace walker so fixture
/// tests can lint a file *as if* it belonged to any crate.
#[derive(Clone, Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub rel_path: &'a str,
    /// Cargo package name of the owning crate (e.g. `st-core`).
    pub crate_name: &'a str,
    /// Whether the whole file is test code (under `tests/`, `benches/`,
    /// or `examples/`).
    pub test_file: bool,
}

impl FileCtx<'_> {
    fn is_protocol(&self) -> bool {
        PROTOCOL_CRATES.contains(&self.crate_name)
    }

    /// Whether D2 (wall clock & entropy) is waived for this file.
    /// `st-bench` is exempt wholesale (it measures time); `st-node` is
    /// exempt in exactly one file — its socket I/O module, where backoff
    /// and liveness ages are inherently wall-clock concerns. The rest of
    /// st-node (plan arithmetic, round barrier, cluster harness) must
    /// stay deterministic, so the exemption is scoped by path, not crate.
    fn d2_exempt(&self) -> bool {
        self.crate_name == "st-bench"
            || (self.crate_name == "st-node" && self.rel_path.ends_with("src/io.rs"))
    }
}

/// Lints one file's source, returning the diagnostics that survive its
/// allow annotations (malformed annotations surface as `A1`).
pub fn lint_source(ctx: &FileCtx<'_>, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let (allows, mut diags) = collect_allows(ctx.rel_path, &lexed.comments, &lexed.tokens);

    let mut raw = Vec::new();
    if ctx.is_protocol() {
        rule_d1(ctx, &lexed.tokens, &mask, &mut raw);
        rule_p1(ctx, &lexed.tokens, &mask, &mut raw);
        rule_n1(ctx, &lexed.tokens, &mask, &mut raw);
    }
    if !ctx.d2_exempt() {
        rule_d2(ctx, &lexed.tokens, &mask, &mut raw);
    }
    rule_u1(ctx, &lexed.tokens, &mut raw);

    diags.extend(
        raw.into_iter()
            .filter(|d| !suppressed(&allows, d.rule, d.line)),
    );
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Matches `lhs :: rhs` ending at index `i` of `rhs`: returns whether
/// tokens `i-3..i` are `Ident(lhs) : :`.
fn path_prefix_is(tokens: &[Token], i: usize, lhs: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(lhs)
}

/// After `prefix ::` at position `i` (the token following the second
/// `:`), collects the banned identifiers named by the path tail: either
/// a single segment (`HashMap`) or a brace group
/// (`{HashMap, hash_map::Entry, HashSet}`).
fn banned_in_path_tail<'t>(tokens: &'t [Token], i: usize, banned: &[&str]) -> Vec<&'t Token> {
    let mut hits = Vec::new();
    match tokens.get(i) {
        Some(t) if t.kind == TokenKind::Ident && banned.contains(&t.text.as_str()) => {
            hits.push(t);
        }
        Some(t) if t.is_punct('{') => {
            let mut depth = 1usize;
            let mut j = i + 1;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident && banned.contains(&t.text.as_str()) {
                    hits.push(t);
                }
                j += 1;
            }
        }
        _ => {}
    }
    hits
}

/// D1: `std::collections::{HashMap,HashSet}` (imports or qualified
/// paths) in protocol-crate non-test code. Flagging the import/path is
/// sufficient — bare `HashMap` uses require one of these to exist.
fn rule_d1(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !t.is_ident("collections") || !path_prefix_is(tokens, i, "std") {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
        {
            continue;
        }
        for hit in banned_in_path_tail(tokens, i + 3, &["HashMap", "HashSet"]) {
            out.push(Diagnostic::new(
                RuleId::D1,
                ctx.rel_path,
                hit.line,
                hit.col,
                format!(
                    "std::collections::{} iterates in randomized order, which breaks \
                     byte-reproducibility; use st_types::fasthash::{} (or a BTreeMap \
                     when iteration order is observable)",
                    hit.text,
                    if hit.text == "HashMap" {
                        "FastMap"
                    } else {
                        "FastSet"
                    },
                ),
            ));
        }
    }
}

/// D2: `std::time::{Instant,SystemTime}` paths/imports and OS-entropy
/// identifiers outside `st-bench` and tests.
fn rule_d2(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("time") && path_prefix_is(tokens, i, "std") {
            if !(tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            for hit in banned_in_path_tail(tokens, i + 3, &["Instant", "SystemTime"]) {
                out.push(Diagnostic::new(
                    RuleId::D2,
                    ctx.rel_path,
                    hit.line,
                    hit.col,
                    format!(
                        "std::time::{} reads the wall clock; simulation state must be a pure \
                         function of the seed — timing belongs in st-bench",
                        hit.text,
                    ),
                ));
            }
        } else if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(Diagnostic::new(
                RuleId::D2,
                ctx.rel_path,
                t.line,
                t.col,
                format!(
                    "`{}` draws OS entropy; every random choice must derive from the run seed",
                    t.text,
                ),
            ));
        }
    }
}

/// P1: panic-family calls in protocol-crate non-test code. These are
/// undocumented invariants — either convert to a fallible return or
/// annotate with `stlint::allow(panic, reason = "<the invariant>")`.
fn rule_p1(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_method = PANIC_METHODS.contains(&name)
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let is_macro =
            PANIC_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if is_method || is_macro {
            let shown = if is_macro {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            out.push(Diagnostic::new(
                RuleId::P1,
                ctx.rel_path,
                t.line,
                t.col,
                format!(
                    "`{shown}` in protocol code is an undocumented invariant: return an error, \
                     or state the invariant via `// stlint::allow(panic, reason = \"…\")`",
                ),
            ));
        }
    }
}

/// U1: the `unsafe` keyword, anywhere outside `third_party/` (which the
/// walker never scans) — tests included; every `st-*` crate also carries
/// `#![forbid(unsafe_code)]`, so this is the lint-time mirror of that
/// guarantee.
fn rule_u1(ctx: &FileCtx<'_>, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        if t.is_ident("unsafe") {
            out.push(Diagnostic::new(
                RuleId::U1,
                ctx.rel_path,
                t.line,
                t.col,
                "`unsafe` is forbidden outside third_party/; the whole workspace builds under \
                 #![forbid(unsafe_code)]",
            ));
        }
    }
}

/// Methods that begin iteration over an unordered map (N1).
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminators that materialize or observe the iteration *order*
/// (N1): once one of these runs downstream of an unordered iteration,
/// the hasher's bucket order has escaped into an ordered value.
const ORDER_SINKS: [&str; 13] = [
    "collect",
    "for_each",
    "fold",
    "reduce",
    "scan",
    "last",
    "position",
    "find",
    "find_map",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Order-sensitive effects inside a `for`-loop body (N1): pushing,
/// extending or sending into anything sequenced means the sequence now
/// encodes bucket order. (`insert` counts: into a Vec it shifts by
/// index, into an ordered map it is harmless but rare enough to
/// annotate.)
const LOOP_EFFECTS: [&str; 7] = [
    "push",
    "push_back",
    "extend",
    "insert",
    "append",
    "send",
    "emit",
];

/// N1: unordered-map iteration whose order can escape into an ordered
/// sink, in protocol-crate non-test code. Two shapes are flagged:
///
/// * `for … in …map… { body }` where the body performs an
///   order-sensitive effect ([`LOOP_EFFECTS`] as method calls);
/// * `map.iter()…` method chains that reach an order-materializing
///   terminator ([`ORDER_SINKS`]).
///
/// The canonical fix is `st_types::fasthash::{iter_sorted,
/// into_sorted_vec, set_iter_sorted, set_into_sorted_vec}` — free
/// functions, so routed call sites no longer match either shape. A
/// genuinely order-insensitive effect keeps the map iteration and
/// states its invariant via `stlint::allow(iterorder, reason = "…")`.
fn rule_n1(ctx: &FileCtx<'_>, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    if ctx.test_file {
        return;
    }
    let tree = ItemTree::build(tokens);
    if tree.map_bindings.is_empty() {
        return;
    }
    let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut report = |name: &Token, how: String, out: &mut Vec<Diagnostic>| {
        if reported.insert((name.line, name.col)) {
            out.push(Diagnostic::new(
                RuleId::N1,
                ctx.rel_path,
                name.line,
                name.col,
                format!(
                    "iteration order of unordered map `{}` {how}; route through \
                     st_types::fasthash::iter_sorted/into_sorted_vec, or state the \
                     order-insensitivity invariant via \
                     `// stlint::allow(iterorder, reason = \"…\")`",
                    name.text,
                ),
            ));
        }
    };
    for f in &tree.fns {
        let Some(body) = f.body else { continue };
        if mask.get(f.fn_idx).copied().unwrap_or(true) {
            continue;
        }
        // Shape 1: for-loops over a map whose body has ordered effects.
        for l in for_loops(tokens, body) {
            let Some(name_idx) = iterated_map(tokens, l.expr, &tree) else {
                continue;
            };
            if let Some(effect) = ordered_effect_in(tokens, mask, l.body, &tree) {
                report(
                    &tokens[name_idx],
                    format!("escapes through `.{effect}(…)` inside the loop body"),
                    out,
                );
            }
        }
        // Shape 2: map.iter()… chains ending in an order sink.
        for i in body.0 + 1..body.1 {
            if mask[i] || tokens[i].kind != TokenKind::Ident || !tree.is_map(&tokens[i].text) {
                continue;
            }
            let starts_iter = tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct('('));
            if !starts_iter {
                continue;
            }
            if let Some(sink) = chain_methods(tokens, i + 3)
                .into_iter()
                .find(|m| ORDER_SINKS.contains(&m.as_str()))
            {
                report(
                    &tokens[i],
                    format!("is materialized by `.{sink}(…)` at the end of the chain"),
                    out,
                );
            }
        }
    }
}

/// Resolves the map a `for`-loop header iterates, if any: either the
/// expression *ends* with a known map binding (`&map`, `&mut self.map`)
/// or it contains `binding.<iter-method>(` anywhere.
fn iterated_map(tokens: &[Token], expr: (usize, usize), tree: &ItemTree) -> Option<usize> {
    let (start, end) = expr;
    // `… in map.iter()` / `… in self.map.drain()`.
    for i in start..end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && tree.is_map(&t.text)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|t| i + 2 < end && ITER_METHODS.contains(&t.text.as_str()))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            return Some(i);
        }
    }
    // `… in &map` / `… in &mut self.map`: the expression's last token is
    // the binding itself (IntoIterator on the reference).
    let last = end.checked_sub(1)?;
    if tokens[last].kind == TokenKind::Ident && tree.is_map(&tokens[last].text) {
        return Some(last);
    }
    None
}

/// First order-sensitive effect (`.push(…)` &c) in a loop body, if any.
/// `insert`/`extend`/`append` *into another unordered map* is
/// commutative and deliberately not an effect — only sequenced
/// receivers encode arrival order.
fn ordered_effect_in(
    tokens: &[Token],
    mask: &[bool],
    body: (usize, usize),
    tree: &ItemTree,
) -> Option<String> {
    for i in body.0 + 1..body.1 {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || !LOOP_EFFECTS.contains(&t.text.as_str())
            || i < 1
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let commutative_receiver = matches!(t.text.as_str(), "insert" | "extend" | "append")
            && i >= 2
            && tokens[i - 2].kind == TokenKind::Ident
            && tree.is_map(&tokens[i - 2].text);
        if !commutative_receiver {
            return Some(t.text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &'static str) -> FileCtx<'static> {
        FileCtx {
            rel_path: "x.rs",
            crate_name,
            test_file: false,
        }
    }

    fn rules_fired(ctx: &FileCtx<'_>, src: &str) -> Vec<(RuleId, u32)> {
        lint_source(ctx, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn d1_catches_import_group_and_qualified_path() {
        let src = "use std::collections::{HashMap, BTreeMap, HashSet};\nfn f() -> std::collections::HashMap<u8, u8> { Default::default() }\n";
        let fired = rules_fired(&ctx("st-core"), src);
        assert_eq!(
            fired,
            vec![(RuleId::D1, 1), (RuleId::D1, 1), (RuleId::D1, 2)]
        );
    }

    #[test]
    fn d1_ignores_non_protocol_crates_and_tests() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_fired(&ctx("st-bench"), src).is_empty());
        assert!(rules_fired(&ctx("st-lint"), src).is_empty());
        let masked = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired(&ctx("st-core"), masked).is_empty());
    }

    #[test]
    fn d2_catches_time_and_entropy_everywhere_but_bench() {
        let src = "use std::time::Instant;\nfn f() { let _ = rand::thread_rng(); }\n";
        let fired = rules_fired(&ctx("st-analysis"), src);
        assert_eq!(fired, vec![(RuleId::D2, 1), (RuleId::D2, 2)]);
        assert!(rules_fired(&ctx("st-bench"), src).is_empty());
    }

    #[test]
    fn d2_allows_duration() {
        let src = "use std::time::Duration;\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn p1_catches_methods_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    if x.is_none() { panic!(\"no\"); }\n    x.unwrap()\n}\n";
        let fired = rules_fired(&ctx("st-messages"), src);
        assert_eq!(fired, vec![(RuleId::P1, 2), (RuleId::P1, 3)]);
    }

    #[test]
    fn p1_allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // stlint::allow(panic, reason = \"caller checked is_some\")\n}\n";
        assert!(rules_fired(&ctx("st-messages"), src).is_empty());
    }

    #[test]
    fn p1_allow_without_reason_reports_a1_and_keeps_p1() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // stlint::allow(panic)\n}\n";
        let fired = rules_fired(&ctx("st-messages"), src);
        assert!(fired.contains(&(RuleId::A1, 2)));
        assert!(fired.contains(&(RuleId::P1, 2)));
    }

    #[test]
    fn p1_ignores_identifier_lookalikes() {
        // `unwrap` as a plain ident (no `.` receiver, no call) and
        // `should_panic` attributes are not panic sites.
        let src = "fn unwrap() {}\nfn g() { unwrap(); }\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn u1_fires_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let fired = rules_fired(&ctx("st-bench"), src);
        assert_eq!(fired, vec![(RuleId::U1, 3)]);
    }

    #[test]
    fn u1_ignores_strings_and_comments() {
        let src = "// unsafe in prose\nconst S: &str = \"unsafe\";\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn n1_catches_for_loop_push_over_map_ref() {
        let src = "fn f(support: &FastMap<u64, u32>) -> Vec<u64> {\n    let mut out = Vec::new();\n    for (&b, _) in support {\n        out.push(b);\n    }\n    out\n}\n";
        let fired = rules_fired(&ctx("st-ga"), src);
        assert_eq!(fired, vec![(RuleId::N1, 3)]);
    }

    #[test]
    fn n1_catches_iter_collect_chain() {
        let src =
            "fn f(seen: &FastSet<u64>) -> Vec<u64> {\n    seen.iter().copied().collect()\n}\n";
        let fired = rules_fired(&ctx("st-gossip"), src);
        assert_eq!(fired, vec![(RuleId::N1, 2)]);
    }

    #[test]
    fn n1_ignores_commutative_accumulation() {
        // `+=` into locals and insertion into another unordered map are
        // order-insensitive.
        let src = "fn f(tally: &FastMap<u64, u32>, mirror: &mut FastSet<u64>) -> u32 {\n    let mut sum = 0;\n    for (&k, &v) in tally {\n        sum += v;\n        mirror.insert(k);\n    }\n    sum\n}\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn n1_ignores_vec_iteration_and_sorted_adapters() {
        let src = "fn f(rows: &Vec<u64>, m: &FastMap<u64, u32>) -> Vec<u64> {\n    let mut out = Vec::new();\n    for r in rows {\n        out.push(*r);\n    }\n    for (k, _) in iter_sorted(m) {\n        out.push(*k);\n    }\n    out\n}\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn n1_allow_with_reason_suppresses() {
        let src = "fn f(seen: &FastSet<u64>) -> u64 {\n    // stlint::allow(iterorder, reason = \"fold is a commutative sum\")\n    seen.iter().fold(0, |a, b| a + b)\n}\n";
        assert!(rules_fired(&ctx("st-core"), src).is_empty());
    }

    #[test]
    fn n1_skips_test_files_and_non_protocol_crates() {
        let src = "fn f(seen: &FastSet<u64>) -> Vec<u64> { seen.iter().copied().collect() }\n";
        assert!(rules_fired(&ctx("st-analysis"), src).is_empty());
        let test_ctx = FileCtx {
            rel_path: "x.rs",
            crate_name: "st-core",
            test_file: true,
        };
        assert!(rules_fired(&test_ctx, src).is_empty());
    }
}
