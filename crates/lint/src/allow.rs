//! The `stlint::allow` escape hatch.
//!
//! Grammar (inside any `//` or `/* … */` comment):
//!
//! ```text
//! stlint::allow(<rule>, reason = "<non-empty text>")
//! ```
//!
//! `<rule>` is a rule id (`P1`) or slug (`panic`). The reason is
//! **mandatory**: an annotation without one does not suppress anything
//! and is itself reported as an `A1` diagnostic — the whole point of
//! the hatch is that every suppressed site states the invariant that
//! makes it safe.
//!
//! Placement: a trailing comment suppresses its own line; a comment
//! alone on its line suppresses the next code line. Example:
//!
//! ```text
//! let lca = tree.lca(a, b).expect("tips are in the tree"); // stlint::allow(panic, reason = "both tips were inserted above")
//! ```

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Comment, Token};

/// A parsed, well-formed allow annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule being suppressed.
    pub rule: RuleId,
    /// The stated reason (non-empty by construction).
    pub reason: String,
    /// The source line whose diagnostics this annotation suppresses.
    pub target_line: u32,
}

/// Extracts allow annotations from a file's comments. Malformed
/// annotations are returned as `A1` diagnostics instead of [`Allow`]s.
///
/// `tokens` supplies the "next code line" for own-line comments.
pub fn collect_allows(
    file: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // Doc comments are documentation, not directives: a `///` code
        // example showing the annotation grammar must neither suppress
        // anything nor be reported as malformed.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("stlint::allow") else {
            continue;
        };
        match parse_allow(&c.text[at..]) {
            Ok((rule, reason)) => {
                let target_line = if c.own_line {
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.end_line)
                        .unwrap_or(c.end_line + 1)
                } else {
                    c.line
                };
                allows.push(Allow {
                    rule,
                    reason,
                    target_line,
                });
            }
            Err(why) => {
                diags.push(Diagnostic::new(
                    RuleId::A1,
                    file,
                    c.line,
                    1,
                    format!("malformed stlint::allow annotation ({why}); it suppresses nothing"),
                ));
            }
        }
    }
    (allows, diags)
}

/// Parses `stlint::allow(rule, reason = "…")…` from the start of `s`.
fn parse_allow(s: &str) -> Result<(RuleId, String), String> {
    let rest = s
        .strip_prefix("stlint::allow")
        .expect("caller located the prefix");
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after stlint::allow".to_string());
    };
    let Some(close) = find_closing_paren(rest) else {
        return Err("missing closing `)`".to_string());
    };
    let body = &rest[..close];
    let (rule_part, reason_part) = match body.find(',') {
        Some(i) => (&body[..i], Some(&body[i + 1..])),
        None => (body, None),
    };
    let rule_name = rule_part.trim();
    let Some(rule) = RuleId::parse(rule_name) else {
        return Err(format!("unknown rule `{rule_name}`"));
    };
    let Some(reason_part) = reason_part else {
        return Err("missing `reason = \"…\"` — every allow must state its invariant".to_string());
    };
    let reason_part = reason_part.trim();
    let Some(value) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"…\"` after the rule".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(end) = value.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = value[..end].trim();
    if reason.is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule, reason.to_string()))
}

/// Index of the `)` closing the annotation body, respecting quoted
/// strings (a `)` inside the reason does not close the call).
fn find_closing_paren(s: &str) -> Option<usize> {
    let mut in_string = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ')' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

/// Whether `allows` suppresses `rule` at `line`.
pub fn suppressed(allows: &[Allow], rule: RuleId, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == rule && a.target_line == line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_file(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let lexed = lex(src);
        collect_allows("f.rs", &lexed.comments, &lexed.tokens)
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let (allows, diags) =
            parse_file("let x = a.unwrap(); // stlint::allow(panic, reason = \"a is Some\")\n");
        assert!(diags.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, RuleId::P1);
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].reason, "a is Some");
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let src = "// stlint::allow(D1, reason = \"the fasthash implementation itself\")\n// more prose\nuse std::collections::HashMap;\n";
        let (allows, diags) = parse_file(src);
        assert!(diags.is_empty());
        assert_eq!(allows[0].target_line, 3);
    }

    #[test]
    fn missing_reason_is_rejected_and_reported() {
        let (allows, diags) = parse_file("x.unwrap(); // stlint::allow(panic)\n");
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::A1);
        assert!(diags[0].message.contains("missing `reason"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let (allows, diags) = parse_file("// stlint::allow(P1, reason = \"  \")\nx.unwrap();\n");
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (allows, diags) = parse_file("// stlint::allow(Z9, reason = \"whatever\")\nf();\n");
        assert!(allows.is_empty());
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn reason_may_contain_parens() {
        let (allows, diags) =
            parse_file("f(); // stlint::allow(unsafe, reason = \"see fn docs (above)\")\n");
        assert!(diags.is_empty());
        assert_eq!(allows[0].reason, "see fn docs (above)");
    }

    #[test]
    fn doc_comments_are_inert() {
        let src = "/// stlint::allow(panic, reason = \"doc example\")\n//! stlint::allow(bogus)\nfn f() {}\n";
        let (allows, diags) = parse_file(src);
        assert!(allows.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn suppression_is_rule_and_line_scoped() {
        let allows = vec![Allow {
            rule: RuleId::P1,
            reason: "r".into(),
            target_line: 4,
        }];
        assert!(suppressed(&allows, RuleId::P1, 4));
        assert!(!suppressed(&allows, RuleId::P1, 5));
        assert!(!suppressed(&allows, RuleId::D1, 4));
    }
}
