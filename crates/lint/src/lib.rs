//! `st-lint` — the workspace's offline determinism & layering analyzer.
//!
//! Every claim the repro makes rests on simulation runs being **pure
//! functions of their seed**: the fast-vs-naive, timeline-shim,
//! step-vs-run, observer and protocol-alias suites all assert
//! byte-identical [`SimReport`]s across structurally different
//! executions. Nothing in the compiler enforces the discipline that
//! makes those suites meaningful — `std::collections::HashMap`
//! iteration order is randomized per process, `std::time` reads the
//! wall clock, and a bare `unwrap()` is an invariant nobody wrote down.
//! `stlint` enforces all of it statically, with file/line diagnostics,
//! at CI time.
//!
//! [`SimReport`]: ../st_sim/struct.SimReport.html
//!
//! # Rule families
//!
//! | id | slug      | scope                         | what it rejects |
//! |----|-----------|-------------------------------|-----------------|
//! | D1 | hashmap   | protocol crates, non-test     | `std::collections::{HashMap,HashSet}` |
//! | D2 | wallclock | all but `st-bench`, non-test  | `std::time::{Instant,SystemTime}`, OS entropy |
//! | P1 | panic     | protocol crates, non-test     | `unwrap`/`expect`/`panic!`/`unreachable!` without allow-with-reason |
//! | U1 | unsafe    | everywhere but `third_party/` | the `unsafe` keyword |
//! | L1 | layering  | every workspace `Cargo.toml`  | upward dependencies, `criterion` outside `st-bench`, unknown externals |
//! | A1 | allow     | everywhere scanned            | malformed `stlint::allow` annotations |
//! | N1 | iterorder | protocol crates, non-test     | unordered-map iteration feeding an ordered sink (loop `push`/send, chain `collect`/`fold`) |
//! | DP | deadpub   | crate `src/`, gating          | `pub fn` with zero workspace references (item-graph resolved) |
//!
//! The analyzer is a **hand-rolled lexer plus a brace-matched item
//! tree** ([`itemtree`]), not a `syn` parse: the offline `third_party/`
//! policy applies to the linter too. Lexical accuracy (strings, raw
//! strings, doc comments, `#[cfg(test)]` regions) serves the token
//! rules; the item tree adds the structure the nondeterminism-flow rule
//! needs — per-function bodies, `for`-loop headers, method-call chains,
//! and the file's unordered-map bindings. What the structural
//! approximation cannot see, the `stsan` hasher-perturbation harness
//! (in `st-bench`) falsifies dynamically by replaying the guard grid
//! under perturbed FxHash seeds.
//!
//! # Escape hatch
//!
//! A finding that is actually an invariant gets suppressed in place,
//! with the invariant written down — the reason is mandatory, and a
//! reason-less annotation is itself a diagnostic (A1):
//!
//! ```rust,ignore
//! let e = map.get_mut(&cur).expect("counted chain"); // stlint::allow(panic, reason = "every block on the walk was counted on insert")
//! ```
//!
//! # Driving it
//!
//! ```text
//! cargo run -p st-lint -- check            # lint the workspace, exit 1 on findings
//! cargo run -p st-lint -- check --json     # machine-readable findings
//! cargo run -p st-lint -- rules            # the rule table
//! cargo run -p st-lint -- deadpub          # gating dead-public-API check
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod itemtree;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod workspace;

pub use diag::{Diagnostic, RuleId, ALL_RULES};
pub use itemtree::ItemTree;
pub use rules::{lint_source, FileCtx, PROTOCOL_CRATES};
pub use workspace::{check_workspace, dead_public_diagnostics, find_workspace_root, CheckReport};
