//! `stlint` — CLI for the workspace determinism & layering analyzer.
//!
//! ```text
//! stlint check [--json] [--out FILE] [--root DIR]   lint the workspace; exit 1 on findings
//! stlint rules                                      print the rule table
//! stlint deadpub [--root DIR]                       dead-public-API check; exit 1 on findings
//! ```

use st_lint::{check_workspace, dead_public_diagnostics, diag, find_workspace_root, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: stlint <check|rules|deadpub> [--json] [--out FILE] [--root DIR]");
        return ExitCode::from(2);
    };
    let mut json = false;
    let mut out_file: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                };
                out_file = Some(PathBuf::from(v));
            }
            "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root_arg = Some(PathBuf::from(v));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match cmd.as_str() {
        "rules" => {
            println!("stlint rule families:");
            for r in ALL_RULES {
                println!("  {:<14} {}", format!("{r}"), r.describe());
            }
            println!();
            println!("escape hatch: // stlint::allow(<rule>, reason = \"<the invariant>\")");
            println!("(reason is mandatory; a reason-less allow suppresses nothing and is an A1)");
            ExitCode::SUCCESS
        }
        "check" => {
            let Some(root) = resolve_root(root_arg) else {
                return ExitCode::from(2);
            };
            let report = check_workspace(&root);
            let rendered_json = diag::to_json(&report.diagnostics, report.files_scanned);
            if let Some(path) = &out_file {
                if let Err(e) = std::fs::write(path, &rendered_json) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                print!("{rendered_json}");
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "stlint: {} diagnostic{} across {} file{} ({} files scanned)",
                    report.diagnostics.len(),
                    plural(report.diagnostics.len()),
                    distinct_files(&report),
                    plural(distinct_files(&report)),
                    report.files_scanned,
                );
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "deadpub" => {
            let Some(root) = resolve_root(root_arg) else {
                return ExitCode::from(2);
            };
            let diags = dead_public_diagnostics(&root);
            for d in &diags {
                println!("{d}");
            }
            println!(
                "stlint deadpub: {} unreferenced pub fn{}",
                diags.len(),
                plural(diags.len()),
            );
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown subcommand `{other}`; try check, rules or deadpub");
            ExitCode::from(2)
        }
    }
}

fn resolve_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    let start = match explicit {
        Some(p) => p,
        None => std::env::current_dir().ok()?,
    };
    match find_workspace_root(&start) {
        Some(root) => Some(root),
        None => {
            eprintln!(
                "no workspace root found above {} (looked for a Cargo.toml with [workspace])",
                start.display()
            );
            None
        }
    }
}

fn distinct_files(report: &st_lint::CheckReport) -> usize {
    let mut files: Vec<&str> = report.diagnostics.iter().map(|d| d.file.as_str()).collect();
    files.dedup();
    files.len()
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
