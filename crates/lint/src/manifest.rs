//! L1: `Cargo.toml` dependency layering and the offline third-party
//! policy, over a hand-rolled TOML subset.
//!
//! The legal dependency direction is strictly down the stack:
//!
//! ```text
//! st-types / st-load → st-crypto → st-blocktree → st-messages
//!          → st-ga/st-gossip → st-core → st-sim → st-analysis
//!          → st-bench / sleepy-tob
//! ```
//!
//! plus three side conditions: nothing depends on `st-bench` (it is the
//! top of the stack and the only crate allowed wall-clock time);
//! `criterion` appears only in `st-bench`'s dev-dependencies; and
//! external dependencies are restricted to the offline `third_party/`
//! set (`proptest` dev-only).

use crate::diag::{Diagnostic, RuleId};

/// Stack position of each workspace package. A package may depend (in
/// `[dependencies]`) only on packages with a strictly smaller layer.
pub const LAYERS: [(&str, u8); 14] = [
    ("st-types", 0),
    // Dependency-free workload vocabulary (generators, mempool,
    // histogram): sits at the bottom so st-sim and st-bench can both
    // consume it without a cycle.
    ("st-load", 0),
    ("st-crypto", 1),
    ("st-blocktree", 2),
    ("st-messages", 3),
    ("st-ga", 4),
    ("st-gossip", 4),
    ("st-core", 5),
    ("st-sim", 6),
    ("st-node", 7),
    ("st-analysis", 7),
    ("st-bench", 8),
    ("sleepy-tob", 8),
    // The linter polices the graph, so it sits outside it: layer 0 with
    // no st-* dependencies at all.
    ("st-lint", 0),
];

/// External crates the offline `third_party/` tree provides. Anything
/// else in a dependency table cannot resolve without a registry.
pub const ALLOWED_EXTERNALS: [&str; 6] = [
    "serde",
    "serde_derive",
    "serde_json",
    "rand",
    "proptest",
    "criterion",
];

fn layer_of(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// One `name = …` entry from a dependency table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEntry {
    /// Dependency name (the table key).
    pub name: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// Whether it came from `[dev-dependencies]`.
    pub dev: bool,
}

/// The slice of a `Cargo.toml` the layering rule needs.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// `package.name`, if present (virtual workspace roots have none).
    pub package_name: Option<String>,
    /// Entries of `[dependencies]`, `[dev-dependencies]` and
    /// `[build-dependencies]` (build-deps are treated like deps).
    pub deps: Vec<DepEntry>,
}

/// Parses the subset of TOML that dependency tables use: `[section]`
/// headers, `key = value` lines, `#` comments. Inline-table values are
/// not inspected — only the key matters.
pub fn parse_manifest(src: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = (i + 1) as u32;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let end = rest.find(']').unwrap_or(rest.len());
            section = rest[..end].trim().to_string();
            // `[dependencies.foo]` names a dependency in the header.
            for (table, dev) in [
                ("dependencies.", false),
                ("dev-dependencies.", true),
                ("build-dependencies.", false),
            ] {
                if let Some(dep) = section.strip_prefix(table) {
                    m.deps.push(DepEntry {
                        name: unquote(dep),
                        line: lineno,
                        dev,
                    });
                }
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let key = unquote(line[..eq].trim());
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = Some(unquote(value));
            }
            "dependencies" | "build-dependencies" => {
                m.deps.push(DepEntry {
                    name: key,
                    line: lineno,
                    dev: false,
                });
            }
            "dev-dependencies" => {
                m.deps.push(DepEntry {
                    name: key,
                    line: lineno,
                    dev: true,
                });
            }
            _ => {}
        }
    }
    m
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

/// Runs the L1 checks over one parsed manifest. `rel_path` is the
/// workspace-relative `Cargo.toml` path used in diagnostics.
pub fn check_layering(rel_path: &str, m: &Manifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(name) = m.package_name.as_deref() else {
        return out; // virtual workspace root: nothing to check
    };
    let Some(my_layer) = layer_of(name) else {
        out.push(Diagnostic::new(
            RuleId::L1,
            rel_path,
            1,
            1,
            format!(
                "package `{name}` has no layer assignment; add it to st_lint::manifest::LAYERS \
                 so the dependency direction stays explicit",
            ),
        ));
        return out;
    };
    for dep in &m.deps {
        let dep_name = dep.name.as_str();
        if dep_name == "st-bench" {
            out.push(Diagnostic::new(
                RuleId::L1,
                rel_path,
                dep.line,
                1,
                "nothing may depend on st-bench: it is the top of the stack and the only \
                 crate allowed wall-clock time",
            ));
            continue;
        }
        if dep_name == "st-node" && !matches!(name, "st-bench" | "sleepy-tob") {
            out.push(Diagnostic::new(
                RuleId::L1,
                rel_path,
                dep.line,
                1,
                "only st-bench and sleepy-tob may depend on st-node: the socket runtime is a \
                 deployment leaf, and letting protocol or simulator crates reach it would pull \
                 real I/O back under the deterministic layers",
            ));
            continue;
        }
        if let Some(dep_layer) = layer_of(dep_name) {
            if !dep.dev && dep_layer >= my_layer {
                out.push(Diagnostic::new(
                    RuleId::L1,
                    rel_path,
                    dep.line,
                    1,
                    format!(
                        "`{name}` (layer {my_layer}) may only depend on crates strictly below \
                         it, but `{dep_name}` is layer {dep_layer}; the legal direction is \
                         types → crypto → blocktree → messages → ga/gossip → core → sim → \
                         analysis → bench",
                    ),
                ));
            }
        } else if dep_name == "criterion" {
            if !(name == "st-bench" && dep.dev) {
                out.push(Diagnostic::new(
                    RuleId::L1,
                    rel_path,
                    dep.line,
                    1,
                    "criterion is allowed only in st-bench's [dev-dependencies]",
                ));
            }
        } else if dep_name == "proptest" {
            if !dep.dev {
                out.push(Diagnostic::new(
                    RuleId::L1,
                    rel_path,
                    dep.line,
                    1,
                    "proptest is a test-only dependency; move it to [dev-dependencies]",
                ));
            }
        } else if !ALLOWED_EXTERNALS.contains(&dep_name) {
            out.push(Diagnostic::new(
                RuleId::L1,
                rel_path,
                dep.line,
                1,
                format!(
                    "external dependency `{dep_name}` is not in the offline third_party/ set \
                     ({}); the build environment has no registry access",
                    ALLOWED_EXTERNALS.join(", "),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        check_layering("Cargo.toml", &parse_manifest(src))
    }

    #[test]
    fn parses_sections_and_keys() {
        let m = parse_manifest(
            "[package]\nname = \"st-core\"\n[dependencies]\nst-types = { workspace = true }\n[dev-dependencies]\nproptest = { workspace = true }\n",
        );
        assert_eq!(m.package_name.as_deref(), Some("st-core"));
        assert_eq!(m.deps.len(), 2);
        assert!(!m.deps[0].dev);
        assert!(m.deps[1].dev);
    }

    #[test]
    fn dotted_dependency_headers_count() {
        let m = parse_manifest(
            "[package]\nname = \"st-core\"\n[dependencies.st-types]\npath = \"../types\"\n",
        );
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].name, "st-types");
    }

    #[test]
    fn downward_deps_are_legal() {
        let diags = check(
            "[package]\nname = \"st-sim\"\n[dependencies]\nst-types = {}\nst-core = {}\nserde = {}\n[dev-dependencies]\nproptest = {}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn upward_dep_fires() {
        let diags = check("[package]\nname = \"st-types\"\n[dependencies]\nst-sim = {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("strictly below"));
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn nothing_depends_on_bench() {
        let diags = check("[package]\nname = \"sleepy-tob\"\n[dev-dependencies]\nst-bench = {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("st-bench"));
    }

    #[test]
    fn criterion_only_in_bench_dev() {
        let ok = check("[package]\nname = \"st-bench\"\n[dev-dependencies]\ncriterion = {}\n");
        assert!(ok.is_empty());
        let bad = check("[package]\nname = \"st-core\"\n[dev-dependencies]\ncriterion = {}\n");
        assert_eq!(bad.len(), 1);
        let bad2 = check("[package]\nname = \"st-bench\"\n[dependencies]\ncriterion = {}\n");
        assert_eq!(bad2.len(), 1);
    }

    #[test]
    fn st_node_is_restricted_to_its_two_consumers() {
        let ok = check("[package]\nname = \"st-bench\"\n[dependencies]\nst-node = {}\n");
        assert!(ok.is_empty(), "{ok:?}");
        let ok2 = check("[package]\nname = \"sleepy-tob\"\n[dependencies]\nst-node = {}\n");
        assert!(ok2.is_empty(), "{ok2:?}");
        // Even a downward-looking consumer (st-analysis is layer 7 too,
        // but the restriction is by name, not layer) is rejected.
        let bad = check("[package]\nname = \"st-sim\"\n[dependencies]\nst-node = {}\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("deployment leaf"));
        // dev-dependencies don't escape the restriction either.
        let bad2 = check("[package]\nname = \"st-core\"\n[dev-dependencies]\nst-node = {}\n");
        assert_eq!(bad2.len(), 1);
    }

    #[test]
    fn st_node_sits_above_core_below_bench() {
        let ok = check(
            "[package]\nname = \"st-node\"\n[dependencies]\nst-types = {}\nst-messages = {}\nst-core = {}\nserde = {}\nserde_json = {}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check("[package]\nname = \"st-node\"\n[dependencies]\nst-sim = {}\n");
        assert!(bad.is_empty(), "sim (6) is below node (7): {bad:?}");
        let bad2 = check("[package]\nname = \"st-node\"\n[dependencies]\nst-analysis = {}\n");
        assert_eq!(bad2.len(), 1, "same layer is not strictly below");
    }

    #[test]
    fn st_load_sits_below_sim_both_directions() {
        // st-sim consuming st-load is the legal direction…
        let ok =
            check("[package]\nname = \"st-sim\"\n[dependencies]\nst-load = {}\nst-core = {}\n");
        assert!(ok.is_empty(), "{ok:?}");
        // …and st-bench may reach it too (layer 0 is below everything).
        let ok2 = check("[package]\nname = \"st-bench\"\n[dependencies]\nst-load = {}\n");
        assert!(ok2.is_empty(), "{ok2:?}");
        // st-load itself is dependency-free: any st-* dependency — even
        // the bottom layer — fails the strictly-below rule.
        let bad = check("[package]\nname = \"st-load\"\n[dependencies]\nst-sim = {}\n");
        assert_eq!(bad.len(), 1, "upward dep must fire");
        assert!(bad[0].message.contains("strictly below"));
        let bad2 = check("[package]\nname = \"st-load\"\n[dependencies]\nst-types = {}\n");
        assert_eq!(bad2.len(), 1, "same layer is not strictly below");
    }

    #[test]
    fn proptest_must_be_dev() {
        let bad = check("[package]\nname = \"st-ga\"\n[dependencies]\nproptest = {}\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("dev-dependencies"));
    }

    #[test]
    fn unknown_external_fires_offline_policy() {
        let bad = check("[package]\nname = \"st-core\"\n[dependencies]\ntokio = \"1\"\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("no registry access"));
    }

    #[test]
    fn unknown_package_needs_layer_assignment() {
        let bad = check("[package]\nname = \"st-mystery\"\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("layer assignment"));
    }
}
