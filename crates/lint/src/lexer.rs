//! A hand-rolled Rust tokenizer — just enough fidelity for lint rules.
//!
//! The offline `third_party/` policy rules out `syn`; none of the rules
//! need a parse tree anyway. What they do need, and what a regex sweep
//! cannot provide, is *lexical* accuracy: `unsafe` inside a string
//! literal or a doc-comment code example must not fire U1, and an
//! `.unwrap()` in a `///` example is doctest code, not protocol code.
//! So the lexer does full string/char/comment/raw-literal recognition
//! and throws literal *contents* away, keeping only identifiers,
//! punctuation and source lines.
//!
//! Comments are preserved separately (with position info) because the
//! `stlint::allow(...)` escape hatch lives in them — see
//! [`crate::allow`].

/// What a token is. Literal contents are discarded: no rule inspects
/// them, and discarding is what makes string-embedded keywords inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#fn` → `fn`).
    Ident,
    /// A single punctuation character; multi-char operators arrive as
    /// consecutive tokens (`::` is two `:`).
    Punct,
    /// String, char, byte or numeric literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` (disambiguated from char literals).
    Lifetime,
}

/// One lexed token with its 1-based source line and column.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// Identifier text, or the punctuation character; empty for literals
    /// and lifetimes.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based byte column the token starts on — diagnostics sort by
    /// `(path, line, col, rule)`, so two findings on one line keep a
    /// stable order.
    pub col: u32,
}

impl Token {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// One comment (line or block) with position info, for allow-annotation
/// extraction.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// Whether only whitespace precedes the comment on its start line —
    /// an own-line comment annotates the *next* code line, a trailing
    /// comment annotates its own.
    pub own_line: bool,
}

/// Lexer output: the token stream plus the comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated literals/comments are tolerated (the
/// rest of the file is swallowed into the literal) — the linter must
/// never panic on weird input, and rustc will reject such files anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset of the current line's first byte, for column tracking.
    line_start: usize,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        b
    }

    /// 1-based byte column of the current position.
    fn cur_col(&self) -> u32 {
        (self.pos - self.line_start + 1) as u32
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.quoted_string(false),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    let col = self.cur_col();
                    let c = self.bump();
                    self.push(TokenKind::Punct, (c as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn slice_line_start_is_blank(&self, start: usize) -> bool {
        // Walk backwards from `start` to the previous newline: all
        // whitespace means the comment owns its line.
        let mut i = start;
        while i > 0 {
            let b = self.src[i - 1];
            if b == b'\n' {
                return true;
            }
            if b != b' ' && b != b'\t' && b != b'\r' {
                return false;
            }
            i -= 1;
        }
        true
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = self.slice_line_start_is_blank(start);
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line,
            end_line: line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = self.slice_line_start_is_blank(start);
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line,
            end_line: self.line,
            own_line,
        });
    }

    /// A `"`-delimited string; `raw` disables backslash escapes.
    fn quoted_string(&mut self, raw: bool) {
        let line = self.line;
        let col = self.cur_col();
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            let b = self.bump();
            if b == b'"' {
                break;
            }
            if b == b'\\' && !raw {
                self.bump(); // escaped char (covers \" and \\)
            }
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    /// A raw string after its `r##…` prefix: `hashes` is the number of
    /// `#` marks; consumes through the matching `"##…` terminator.
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        let col = self.cur_col();
        self.bump(); // opening quote
        'outer: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let col = self.cur_col();
        self.bump(); // '\''
        let b = self.peek(0);
        if b == b'\\' {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            self.bump();
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump(); // closing quote
            self.push(TokenKind::Literal, String::new(), line, col);
        } else if is_ident_start(b) {
            // Could be 'a' (char) or 'a-lifetime. Consume the ident run,
            // then decide by whether a closing quote follows.
            let mut len = 1;
            while is_ident_continue(self.peek(len)) {
                len += 1;
            }
            if self.peek(len) == b'\'' {
                for _ in 0..=len {
                    self.bump();
                }
                self.push(TokenKind::Literal, String::new(), line, col);
            } else {
                for _ in 0..len {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, String::new(), line, col);
            }
        } else if b == b'\'' {
            // `''` — malformed; consume and move on.
            self.bump();
            self.push(TokenKind::Literal, String::new(), line, col);
        } else {
            // Plain char literal like '+' or '0'.
            self.bump();
            if self.peek(0) == b'\'' {
                self.bump();
            }
            self.push(TokenKind::Literal, String::new(), line, col);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let col = self.cur_col();
        self.bump();
        loop {
            let b = self.peek(0);
            if is_ident_continue(b) {
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the literal; `1..n` does not.
                self.bump();
            } else if (b == b'+' || b == b'-')
                && matches!(
                    self.src.get(self.pos.wrapping_sub(1)),
                    Some(&b'e') | Some(&b'E')
                )
            {
                // Exponent sign in `1.0e-9`.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let col = self.cur_col();
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.pos += 1; // idents contain no '\n'
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let next = self.peek(0);
        match (text.as_str(), next) {
            // String-literal prefixes: b"…", c"…" keep escapes; r"…" is raw.
            ("b" | "c", b'"') => self.quoted_string(false),
            ("r", b'"') => self.quoted_string(true),
            ("br" | "cr", b'"') => self.quoted_string(true),
            ("r" | "br" | "cr", b'#') => {
                // Count hashes; a quote after them opens a raw string,
                // otherwise (`r#ident`) it is a raw identifier.
                let mut hashes = 0;
                while self.peek(hashes) == b'#' {
                    hashes += 1;
                }
                if self.peek(hashes) == b'"' {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes);
                } else if text == "r" && is_ident_start(self.peek(1)) {
                    self.bump(); // '#'
                    let istart = self.pos;
                    while is_ident_continue(self.peek(0)) {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.src[istart..self.pos]).into_owned();
                    self.push(TokenKind::Ident, raw, line, col);
                } else {
                    self.push(TokenKind::Ident, text, line, col);
                }
            }
            ("b", b'\'') => {
                // Byte literal b'x'.
                self.char_or_lifetime();
            }
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }
}

/// Marks which tokens sit inside test-only code: any item annotated
/// `#[test]` or `#[cfg(test)]` (including `cfg(any(test, …))` — a
/// conservative over-approximation that can only suppress, never add,
/// diagnostics).
///
/// Region extent: from the attribute to the end of the annotated item —
/// the matching `}` of its first brace block, or the first `;` if one
/// appears before any brace (e.g. `#[cfg(test)] use …;`).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_attr_item_end(tokens, i) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If a test attribute starts at `i`, returns the index of the last
/// token of the annotated item.
fn test_attr_item_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    // Find the attribute's closing ']' and check it mentions `test` in a
    // testing position: `#[test]`, `#[tokio::test]`, `#[cfg(test…)]`.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut is_test = false;
    let mut saw_cfg = false;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('[') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "cfg" && depth == 1 {
                saw_cfg = true;
            } else if t.text == "test" && (depth == 1 || saw_cfg) {
                is_test = true;
            }
        }
        j += 1;
    }
    if !is_test {
        return None;
    }
    // Skip any further attributes between this one and the item.
    let mut k = j + 1;
    while tokens.get(k)?.is_punct('#') && tokens.get(k + 1)?.is_punct('[') {
        let mut d = 0usize;
        k += 1;
        loop {
            let t = tokens.get(k)?;
            if t.is_punct('[') || t.is_punct('(') {
                d += 1;
            } else if t.is_punct(']') || t.is_punct(')') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            k += 1;
        }
        k += 1;
    }
    // The item runs to its first top-level `;`, or through its first
    // brace block.
    let mut d = 0usize;
    loop {
        let t = tokens.get(k)?;
        if d == 0 && t.is_punct(';') {
            return Some(k);
        }
        if t.is_punct('{') {
            d += 1;
        } else if t.is_punct('}') {
            d -= 1;
            if d == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r##"
            let s = "unsafe { panic!() }";
            // unsafe in a line comment
            /* unsafe /* nested */ still comment */
            let r = r#"unsafe "quoted" raw"#;
            let b = b"unsafe bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe" || i == "panic"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = \"two\nlines\";\nunsafe {}";
        let lexed = lex(src);
        let u = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("unsafe"))
            .expect("unsafe token");
        assert_eq!(u.line, 3);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..n { x(1.5e-3); }";
        let ids = idents(src);
        assert!(ids.contains(&"n".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn cfg_test_region_masks_module() {
        let src = "
fn live() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { b.unwrap(); }
}
fn live2() { c.unwrap(); }
";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let unwraps: Vec<(u32, bool)> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(t, m)| (t.line, *m))
            .collect();
        assert_eq!(unwraps, vec![(2, false), (5, true), (7, false)]);
    }

    #[test]
    fn test_attr_on_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let unwrap_masked = lexed
            .tokens
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .expect("unwrap token");
        assert!(!unwrap_masked);
        let hashmap_masked = lexed
            .tokens
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.is_ident("HashMap"))
            .map(|(_, m)| *m)
            .expect("HashMap token");
        assert!(hashmap_masked);
    }

    #[test]
    fn cfg_any_test_is_conservatively_test() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nfn helper() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn own_line_vs_trailing_comments() {
        let src = "let a = 1; // trailing\n// own line\nlet b = 2;";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }
}
