//! Workspace discovery and the full `check` / `deadpub` drivers.

use crate::allow::collect_allows;
use crate::diag::{Diagnostic, RuleId};
use crate::itemtree::ItemTree;
use crate::lexer::{lex, test_mask, TokenKind};
use crate::manifest::{check_layering, parse_manifest};
use crate::rules::{lint_source, FileCtx};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned: generated output, the vendored stand-ins
/// (the one place `unsafe`/wall-clock would be externally imposed), VCS
/// internals, and lint fixture corpora (deliberate violations).
const SKIP_DIRS: [&str; 5] = ["target", "third_party", ".git", "fixtures", "node_modules"];

/// A source file queued for linting.
#[derive(Clone, Debug)]
struct SourceFile {
    path: PathBuf,
    rel_path: String,
    crate_name: String,
    test_file: bool,
}

/// Result of a full workspace check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Diagnostics across all files and manifests, sorted by path/line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Ascends from `start` to the enclosing workspace root: the nearest
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerates the workspace's own packages: `crates/*` plus the root
/// facade package. `third_party/` members are external stand-ins and are
/// deliberately out of scope.
fn enumerate_packages(root: &Path) -> Vec<(String, PathBuf)> {
    let mut packages = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        packages.push((name, root.to_path_buf()));
    }
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    for dir in dirs {
        if let Some(name) = package_name(&dir.join("Cargo.toml")) {
            packages.push((name, dir));
        }
    }
    packages
}

fn package_name(manifest: &Path) -> Option<String> {
    parse_manifest(&fs::read_to_string(manifest).ok()?).package_name
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Collects the `.rs` files of one package. Files under `tests/`,
/// `benches/` or `examples/` are test files; `src/` is live code (its
/// `#[cfg(test)]` regions are masked token-wise instead).
fn package_sources(root: &Path, crate_name: &str, dir: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for (sub, test_file) in [
        ("src", false),
        ("tests", true),
        ("benches", true),
        ("examples", true),
    ] {
        // For the root facade this scans only its own src/tests/examples
        // dirs; crates/ members are handled per package.
        let base = dir.join(sub);
        if !base.is_dir() {
            continue;
        }
        let mut stack = vec![base];
        while let Some(d) = stack.pop() {
            let Ok(rd) = fs::read_dir(&d) else { continue };
            let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
            entries.sort();
            for p in entries {
                let name = p
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if p.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) {
                        stack.push(p);
                    }
                } else if name.ends_with(".rs") {
                    files.push(SourceFile {
                        rel_path: rel(root, &p),
                        path: p,
                        crate_name: crate_name.to_string(),
                        test_file,
                    });
                }
            }
        }
    }
    files
}

/// Runs every rule family over the whole workspace.
pub fn check_workspace(root: &Path) -> CheckReport {
    let mut report = CheckReport::default();
    for (crate_name, dir) in enumerate_packages(root) {
        let manifest_path = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest_path) {
            report.diagnostics.extend(check_layering(
                &rel(root, &manifest_path),
                &parse_manifest(&text),
            ));
        }
        for f in package_sources(root, &crate_name, &dir) {
            let Ok(src) = fs::read_to_string(&f.path) else {
                continue;
            };
            report.files_scanned += 1;
            let ctx = FileCtx {
                rel_path: &f.rel_path,
                crate_name: &f.crate_name,
                test_file: f.test_file,
            };
            report.diagnostics.extend(lint_source(&ctx, &src));
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    report
}

/// Gating dead-public-API check (DP/deadpub), item-graph resolved: a
/// `pub fn` defined in non-test `src/` code is dead when its name has
/// **zero** identifier occurrences anywhere else in the workspace —
/// where "else" means outside the defining item's own token span (the
/// signature plus brace-matched body), so self-recursion never keeps a
/// function alive, and definition sites (`fn name`) never count as
/// references to some *other* crate's function of the same name.
///
/// Test and bench references do count — a helper exercised only by a
/// suite is still reachable API. Resolution stays name-based across
/// files (the linter has no type information), but the item tree makes
/// it span-accurate within the defining file, which is what the old
/// advisory sweep lacked. Survivors that are intentionally public
/// (e.g. kept as comparison baselines) carry
/// `stlint::allow(deadpub, reason = "…")` on the definition line.
pub fn dead_public_diagnostics(root: &Path) -> Vec<Diagnostic> {
    struct Def {
        crate_name: String,
        name: String,
        file: String,
        line: u32,
        col: u32,
        /// Token span of the whole item in its file: `fn` keyword
        /// through closing brace (or name, when bodyless).
        span: (usize, usize),
        suppressed: bool,
    }
    let mut defs: Vec<Def> = Vec::new();
    // name → occurrences as (file, token index), excluding `fn name`
    // definition sites.
    let mut refs: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for (crate_name, dir) in enumerate_packages(root) {
        for f in package_sources(root, &crate_name, &dir) {
            let Ok(src) = fs::read_to_string(&f.path) else {
                continue;
            };
            let lexed = lex(&src);
            let mask = test_mask(&lexed.tokens);
            let tree = ItemTree::build(&lexed.tokens);
            let (allows, _) = collect_allows(&f.rel_path, &lexed.comments, &lexed.tokens);
            if !f.test_file {
                for item in &tree.fns {
                    // `pub fn` only (not `pub(crate) fn`): restricted
                    // visibility is not public API. Masked (cfg(test))
                    // and `main` items are out of scope.
                    if !item.is_pub
                        || mask[item.fn_idx]
                        || item.name == "main"
                        || item.name.starts_with('_')
                    {
                        continue;
                    }
                    let name_tok = &lexed.tokens[item.name_idx];
                    let span_end = item.body.map(|(_, e)| e).unwrap_or(item.name_idx);
                    // An allow(deadpub) anywhere within the item — the
                    // signature line or inside the body — suppresses it.
                    // Span-based rather than definition-line-based so
                    // rustfmt rewrapping a long signature cannot detach
                    // the annotation from the item it vouches for.
                    let first_line = lexed.tokens[item.fn_idx].line;
                    let last_line = lexed.tokens[span_end].line;
                    let kept = allows.iter().any(|a| {
                        a.rule == RuleId::DP
                            && a.target_line >= first_line
                            && a.target_line <= last_line
                    });
                    defs.push(Def {
                        crate_name: crate_name.clone(),
                        name: item.name.clone(),
                        file: f.rel_path.clone(),
                        line: name_tok.line,
                        col: name_tok.col,
                        span: (item.fn_idx, span_end),
                        suppressed: kept,
                    });
                }
            }
            for (i, t) in lexed.tokens.iter().enumerate() {
                let is_def_site = i >= 1 && lexed.tokens[i - 1].is_ident("fn");
                if t.kind == TokenKind::Ident && !is_def_site {
                    refs.entry(t.text.clone())
                        .or_default()
                        .push((f.rel_path.clone(), i));
                }
            }
        }
    }
    let mut out: Vec<Diagnostic> = defs
        .iter()
        .filter(|d| !d.suppressed)
        .filter(|d| {
            let empty = Vec::new();
            let occ = refs.get(&d.name).unwrap_or(&empty);
            !occ.iter()
                .any(|(file, i)| *file != d.file || *i < d.span.0 || *i > d.span.1)
        })
        .map(|d| {
            Diagnostic::new(
                RuleId::DP,
                d.file.clone(),
                d.line,
                d.col,
                format!(
                    "pub fn `{}` in {} has no references anywhere in the workspace (tests \
                     included); remove it, reduce its visibility, or keep it with \
                     `// stlint::allow(deadpub, reason = \"…\")`",
                    d.name, d.crate_name,
                ),
            )
        })
        .collect();
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_workspace_root(&here).expect("lint crate lives inside the workspace")
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let root = repo_root();
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn enumerates_facade_and_members() {
        let names: Vec<String> = enumerate_packages(&repo_root())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"sleepy-tob".to_string()));
        assert!(names.contains(&"st-core".to_string()));
        assert!(names.contains(&"st-lint".to_string()));
        assert!(!names.iter().any(|n| n.contains("serde")));
    }

    #[test]
    fn scan_skips_fixtures_and_third_party() {
        let root = repo_root();
        for (crate_name, dir) in enumerate_packages(&root) {
            for f in package_sources(&root, &crate_name, &dir) {
                assert!(!f.rel_path.contains("fixtures/"), "{}", f.rel_path);
                assert!(!f.rel_path.starts_with("third_party/"), "{}", f.rel_path);
            }
        }
    }
}
