//! Workspace discovery and the full `check` / `deadpub` drivers.

use crate::diag::Diagnostic;
use crate::lexer::{lex, test_mask, TokenKind};
use crate::manifest::{check_layering, parse_manifest};
use crate::rules::{lint_source, FileCtx};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned: generated output, the vendored stand-ins
/// (the one place `unsafe`/wall-clock would be externally imposed), VCS
/// internals, and lint fixture corpora (deliberate violations).
const SKIP_DIRS: [&str; 5] = ["target", "third_party", ".git", "fixtures", "node_modules"];

/// A source file queued for linting.
#[derive(Clone, Debug)]
struct SourceFile {
    path: PathBuf,
    rel_path: String,
    crate_name: String,
    test_file: bool,
}

/// Result of a full workspace check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Diagnostics across all files and manifests, sorted by path/line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Ascends from `start` to the enclosing workspace root: the nearest
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerates the workspace's own packages: `crates/*` plus the root
/// facade package. `third_party/` members are external stand-ins and are
/// deliberately out of scope.
fn enumerate_packages(root: &Path) -> Vec<(String, PathBuf)> {
    let mut packages = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        packages.push((name, root.to_path_buf()));
    }
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    for dir in dirs {
        if let Some(name) = package_name(&dir.join("Cargo.toml")) {
            packages.push((name, dir));
        }
    }
    packages
}

fn package_name(manifest: &Path) -> Option<String> {
    parse_manifest(&fs::read_to_string(manifest).ok()?).package_name
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Collects the `.rs` files of one package. Files under `tests/`,
/// `benches/` or `examples/` are test files; `src/` is live code (its
/// `#[cfg(test)]` regions are masked token-wise instead).
fn package_sources(root: &Path, crate_name: &str, dir: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for (sub, test_file) in [
        ("src", false),
        ("tests", true),
        ("benches", true),
        ("examples", true),
    ] {
        // For the root facade this scans only its own src/tests/examples
        // dirs; crates/ members are handled per package.
        let base = dir.join(sub);
        if !base.is_dir() {
            continue;
        }
        let mut stack = vec![base];
        while let Some(d) = stack.pop() {
            let Ok(rd) = fs::read_dir(&d) else { continue };
            let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
            entries.sort();
            for p in entries {
                let name = p
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if p.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) {
                        stack.push(p);
                    }
                } else if name.ends_with(".rs") {
                    files.push(SourceFile {
                        rel_path: rel(root, &p),
                        path: p,
                        crate_name: crate_name.to_string(),
                        test_file,
                    });
                }
            }
        }
    }
    files
}

/// Runs every rule family over the whole workspace.
pub fn check_workspace(root: &Path) -> CheckReport {
    let mut report = CheckReport::default();
    for (crate_name, dir) in enumerate_packages(root) {
        let manifest_path = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest_path) {
            report.diagnostics.extend(check_layering(
                &rel(root, &manifest_path),
                &parse_manifest(&text),
            ));
        }
        for f in package_sources(root, &crate_name, &dir) {
            let Ok(src) = fs::read_to_string(&f.path) else {
                continue;
            };
            report.files_scanned += 1;
            let ctx = FileCtx {
                rel_path: &f.rel_path,
                crate_name: &f.crate_name,
                test_file: f.test_file,
            };
            report.diagnostics.extend(lint_source(&ctx, &src));
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// One entry of the advisory dead-public-API sweep.
#[derive(Clone, Debug)]
pub struct DeadPubEntry {
    /// Defining crate.
    pub crate_name: String,
    /// `pub fn` name.
    pub name: String,
    /// Definition site.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Reference count outside the defining file (test and non-test).
    pub refs_elsewhere: usize,
    /// References from non-test code outside the defining file.
    pub live_refs: usize,
}

/// Advisory sweep: `pub fn`s in crate `src/` trees and where (if
/// anywhere) they are referenced. Name-based, so trait impls and macro
/// uses can inflate counts — it flags candidates for removal or
/// deprecation, it does not gate.
pub fn dead_public_fns(root: &Path) -> Vec<DeadPubEntry> {
    struct Occurrence {
        file: String,
        live: bool,
    }
    let mut defs: Vec<DeadPubEntry> = Vec::new();
    let mut refs: BTreeMap<String, Vec<Occurrence>> = BTreeMap::new();
    for (crate_name, dir) in enumerate_packages(root) {
        for f in package_sources(root, &crate_name, &dir) {
            let Ok(src) = fs::read_to_string(&f.path) else {
                continue;
            };
            let lexed = lex(&src);
            let mask = test_mask(&lexed.tokens);
            for (i, t) in lexed.tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                // Definition: `pub fn name` (not `pub(crate) fn`, which
                // is not public API) in non-test src code.
                let is_def = !f.test_file
                    && !mask[i]
                    && t.is_ident("fn")
                    && i >= 1
                    && lexed.tokens[i - 1].is_ident("pub")
                    && lexed.tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident);
                if is_def {
                    let name_tok = &lexed.tokens[i + 1];
                    if name_tok.text != "main" {
                        defs.push(DeadPubEntry {
                            crate_name: crate_name.clone(),
                            name: name_tok.text.clone(),
                            file: f.rel_path.clone(),
                            line: name_tok.line,
                            refs_elsewhere: 0,
                            live_refs: 0,
                        });
                    }
                }
                // Reference: any other occurrence of the identifier not
                // directly following `fn` (i.e. not a definition).
                let follows_fn = i >= 1 && lexed.tokens[i - 1].is_ident("fn");
                if !follows_fn {
                    refs.entry(t.text.clone()).or_default().push(Occurrence {
                        file: f.rel_path.clone(),
                        live: !f.test_file && !mask[i],
                    });
                }
            }
        }
    }
    let mut out: Vec<DeadPubEntry> = defs
        .into_iter()
        .map(|mut d| {
            if let Some(occ) = refs.get(&d.name) {
                d.refs_elsewhere = occ.iter().filter(|o| o.file != d.file).count();
                d.live_refs = occ.iter().filter(|o| o.file != d.file && o.live).count();
            }
            d
        })
        .filter(|d| d.refs_elsewhere == 0 || d.live_refs == 0)
        .collect();
    // Dedup overload-looking repeats (same name defined in several
    // impls/files appears once per site, which is what we want); sort
    // for stable output.
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut seen = BTreeSet::new();
    out.retain(|d| seen.insert((d.file.clone(), d.line, d.name.clone())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_workspace_root(&here).expect("lint crate lives inside the workspace")
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let root = repo_root();
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn enumerates_facade_and_members() {
        let names: Vec<String> = enumerate_packages(&repo_root())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"sleepy-tob".to_string()));
        assert!(names.contains(&"st-core".to_string()));
        assert!(names.contains(&"st-lint".to_string()));
        assert!(!names.iter().any(|n| n.contains("serde")));
    }

    #[test]
    fn scan_skips_fixtures_and_third_party() {
        let root = repo_root();
        for (crate_name, dir) in enumerate_packages(&root) {
            for f in package_sources(&root, &crate_name, &dir) {
                assert!(!f.rel_path.contains("fixtures/"), "{}", f.rel_path);
                assert!(!f.rel_path.starts_with("third_party/"), "{}", f.rel_path);
            }
        }
    }
}
