//! Fixture-driven self-tests: one passing and one failing specimen per
//! rule family, with exact file/line assertions, plus the meta-test that
//! the live workspace is lint-clean.
//!
//! The fixtures live under `tests/fixtures/`, which the workspace walker
//! deliberately skips — they exist to be linted *by hand* with a chosen
//! [`FileCtx`], as if they belonged to any crate.

use st_lint::manifest::{check_layering, parse_manifest};
use st_lint::{check_workspace, find_workspace_root, lint_source, Diagnostic, FileCtx, RuleId};

fn protocol_ctx(rel_path: &str) -> FileCtx<'_> {
    FileCtx {
        rel_path,
        crate_name: "st-core",
        test_file: false,
    }
}

fn lines_of(diags: &[Diagnostic], rule: RuleId) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn d1_fixture_fails_on_each_table_site() {
    let src = include_str!("fixtures/d1_fail.rs");
    let diags = lint_source(&protocol_ctx("fixtures/d1_fail.rs"), src);
    // Line 3: imported HashMap; line 4: HashSet inside a brace group
    // (BTreeMap in the same group stays legal); line 7: fully-qualified
    // path use.
    assert_eq!(lines_of(&diags, RuleId::D1), vec![3, 4, 7]);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags[0].message.contains("FastMap"));
    assert!(diags[0].file.contains("d1_fail.rs"));
}

#[test]
fn d1_fixture_passes_with_fasthash_and_test_confined_tables() {
    let src = include_str!("fixtures/d1_pass.rs");
    let diags = lint_source(&protocol_ctx("fixtures/d1_pass.rs"), src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d1_is_scoped_to_protocol_crates() {
    let src = include_str!("fixtures/d1_fail.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/d1_fail.rs",
        crate_name: "st-analysis",
        test_file: false,
    };
    assert!(lines_of(&lint_source(&ctx, src), RuleId::D1).is_empty());
}

#[test]
fn d2_fixture_fails_on_clock_and_entropy() {
    let src = include_str!("fixtures/d2_fail.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/d2_fail.rs",
        crate_name: "st-sim",
        test_file: false,
    };
    let diags = lint_source(&ctx, src);
    // Line 3: Instant import; line 6: SystemTime::now() path; line 8:
    // thread_rng (OS entropy).
    assert_eq!(lines_of(&diags, RuleId::D2), vec![3, 6, 8]);
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn d2_fixture_is_exempt_in_st_bench() {
    let src = include_str!("fixtures/d2_fail.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/d2_fail.rs",
        crate_name: "st-bench",
        test_file: false,
    };
    assert!(lines_of(&lint_source(&ctx, src), RuleId::D2).is_empty());
}

#[test]
fn d2_exemption_in_st_node_is_scoped_to_the_io_module() {
    let src = include_str!("fixtures/d2_node_io.rs");
    // The same Instant-using source is clean when it lives in st-node's
    // socket I/O module...
    let io_ctx = FileCtx {
        rel_path: "crates/node/src/io.rs",
        crate_name: "st-node",
        test_file: false,
    };
    assert!(lines_of(&lint_source(&io_ctx, src), RuleId::D2).is_empty());
    // ...and fires anywhere else in the crate: the exemption follows the
    // file, not the crate (line 5: the Instant import).
    let runtime_ctx = FileCtx {
        rel_path: "crates/node/src/runtime.rs",
        crate_name: "st-node",
        test_file: false,
    };
    assert_eq!(
        lines_of(&lint_source(&runtime_ctx, src), RuleId::D2),
        vec![5]
    );
}

#[test]
fn d2_fixture_passes_when_seeded_and_test_confined() {
    let src = include_str!("fixtures/d2_pass.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/d2_pass.rs",
        crate_name: "st-sim",
        test_file: false,
    };
    let diags = lint_source(&ctx, src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn p1_fixture_fails_on_each_panic_site() {
    let src = include_str!("fixtures/p1_fail.rs");
    let diags = lint_source(&protocol_ctx("fixtures/p1_fail.rs"), src);
    // Line 4: .unwrap(); line 6: panic!; line 9: unreachable!.
    assert_eq!(lines_of(&diags, RuleId::P1), vec![4, 6, 9]);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains(".unwrap()")));
    assert!(diags.iter().any(|d| d.message.contains("panic!")));
}

#[test]
fn p1_fixture_passes_with_fallible_returns_and_reasoned_allow() {
    let src = include_str!("fixtures/p1_pass.rs");
    let diags = lint_source(&protocol_ctx("fixtures/p1_pass.rs"), src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn u1_fixture_fails_on_the_unsafe_keyword() {
    let src = include_str!("fixtures/u1_fail.rs");
    let diags = lint_source(&protocol_ctx("fixtures/u1_fail.rs"), src);
    assert_eq!(lines_of(&diags, RuleId::U1), vec![4]);
}

#[test]
fn u1_fires_even_in_test_files() {
    let src = include_str!("fixtures/u1_fail.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/u1_fail.rs",
        crate_name: "st-lint",
        test_file: true,
    };
    assert_eq!(lines_of(&lint_source(&ctx, src), RuleId::U1), vec![4]);
}

#[test]
fn u1_fixture_ignores_unsafe_in_comments_and_strings() {
    let src = include_str!("fixtures/u1_pass.rs");
    let diags = lint_source(&protocol_ctx("fixtures/u1_pass.rs"), src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a1_rejects_reasonless_allows_and_keeps_the_finding() {
    let src = include_str!("fixtures/a1_no_reason.rs");
    let diags = lint_source(&protocol_ctx("fixtures/a1_no_reason.rs"), src);
    // Each of the three bad annotations (no reason, empty reason,
    // unknown rule) earns an A1 — and suppresses nothing, so the
    // underlying P1 finding on the same line survives.
    assert_eq!(lines_of(&diags, RuleId::A1), vec![5, 9, 13]);
    assert_eq!(lines_of(&diags, RuleId::P1), vec![5, 9, 13]);
    assert_eq!(diags.len(), 6, "{diags:?}");
}

#[test]
fn l1_fixture_fails_on_every_illegal_dependency() {
    let m = parse_manifest(include_str!("fixtures/layering_bad.toml"));
    assert_eq!(m.package_name.as_deref(), Some("st-types"));
    let diags = check_layering("fixtures/layering_bad.toml", &m);
    // st-core (upward), st-bench (forbidden target), regex (unknown
    // external), criterion (outside st-bench dev-deps), proptest
    // (non-dev) — one finding each, on the dependency's own line.
    assert_eq!(lines_of(&diags, RuleId::L1), vec![8, 9, 10, 11, 12]);
    assert!(diags.iter().any(|d| d.message.contains("strictly below")));
    assert!(diags.iter().any(|d| d.message.contains("st-bench")));
    assert!(diags.iter().any(|d| d.message.contains("`regex`")));
    assert!(diags.iter().any(|d| d.message.contains("criterion")));
    assert!(diags.iter().any(|d| d.message.contains("dev-dependencies")));
}

#[test]
fn l1_fixture_passes_a_conforming_manifest() {
    let m = parse_manifest(include_str!("fixtures/layering_good.toml"));
    let diags = check_layering("fixtures/layering_good.toml", &m);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn live_workspace_is_lint_clean() {
    let here = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&here).expect("test runs inside the workspace");
    let report = check_workspace(&root);
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must stay lint-clean; run `cargo run -p st-lint -- check`:\n{:#?}",
        report.diagnostics
    );
    // Sanity: the walk actually visited the tree (all ten st-* crates
    // plus the facade contribute sources).
    assert!(report.files_scanned > 50, "{}", report.files_scanned);
}

#[test]
fn n1_fixture_fails_on_loop_and_chain_escapes() {
    let src = include_str!("fixtures/n1_fail.rs");
    let diags = lint_source(&protocol_ctx("fixtures/n1_fail.rs"), src);
    // Line 7: `support` iterated by a for-loop whose body pushes; line
    // 14: `seen.iter()…collect()` chain. The diagnostic anchors on the
    // map's name token.
    assert_eq!(lines_of(&diags, RuleId::N1), vec![7, 14]);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags[0].message.contains("`support`"));
    assert!(diags[0].message.contains("iter_sorted"));
    assert!(diags[1].message.contains("`seen`"));
}

#[test]
fn n1_fixture_passes_adapters_commutative_and_allowed_sites() {
    let src = include_str!("fixtures/n1_pass.rs");
    let diags = lint_source(&protocol_ctx("fixtures/n1_pass.rs"), src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn n1_is_silent_in_test_files() {
    let src = include_str!("fixtures/n1_fail.rs");
    let ctx = FileCtx {
        rel_path: "fixtures/n1_fail.rs",
        crate_name: "st-core",
        test_file: true,
    };
    assert!(lines_of(&lint_source(&ctx, src), RuleId::N1).is_empty());
}

/// Builds a throwaway one-crate workspace on disk so the deadpub item
/// graph can be exercised end to end (it resolves references across the
/// whole tree, so `lint_source` alone cannot drive it).
fn synthetic_workspace(lib_rs: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "stlint-deadpub-{}-{}",
        std::process::id(),
        lib_rs.len()
    ));
    let src = root.join("crates/foo/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/foo\"]\n",
    )
    .unwrap();
    std::fs::write(
        root.join("crates/foo/Cargo.toml"),
        "[package]\nname = \"st-foo\"\n",
    )
    .unwrap();
    std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
    root
}

#[test]
fn deadpub_resolves_references_across_the_item_graph() {
    let root = synthetic_workspace(concat!(
        "pub fn used() -> u64 { 1 }\n",
        "pub fn dead() -> u64 { dead_helper() }\n",
        "fn dead_helper() -> u64 { 2 }\n",
        "pub fn kept() -> u64 { 3 } // stlint::allow(deadpub, reason = \"fixture survivor\")\n",
        "pub fn recursive_only(n: u64) -> u64 { if n == 0 { 0 } else { recursive_only(n - 1) } }\n",
        "fn caller() -> u64 { used() }\n",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::caller(), 1); }\n}\n",
    ));
    let diags = st_lint::dead_public_diagnostics(&root);
    std::fs::remove_dir_all(&root).ok();
    // `used` is referenced, `kept` is allowed with a reason, `caller` is
    // private; `dead` has no callers (calling a private helper does not
    // save it) and `recursive_only`'s only mention is its own body.
    let names: Vec<&str> = diags
        .iter()
        .map(|d| {
            let start = d.message.find('`').unwrap() + 1;
            &d.message[start..start + d.message[start..].find('`').unwrap()]
        })
        .collect();
    assert_eq!(names, vec!["dead", "recursive_only"], "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::DP));
}

#[test]
fn diagnostics_sort_and_json_are_byte_stable() {
    // Construct findings deliberately out of order across every sort
    // component: path, then line, then column, then rule.
    let mk = |rule, file: &str, line, col| {
        Diagnostic::new(rule, file, line, col, format!("{file}:{line}:{col}"))
    };
    let mut diags = vec![
        mk(RuleId::P1, "crates/b/src/lib.rs", 4, 9),
        mk(RuleId::N1, "crates/a/src/lib.rs", 10, 1),
        mk(RuleId::D1, "crates/b/src/lib.rs", 4, 2),
        mk(RuleId::U1, "crates/a/src/lib.rs", 2, 5),
        mk(RuleId::D2, "crates/b/src/lib.rs", 4, 2),
    ];
    let expect: Vec<String> = vec![
        "crates/a/src/lib.rs:2:5".into(),
        "crates/a/src/lib.rs:10:1".into(),
        "crates/b/src/lib.rs:4:2".into(), // D1 before D2 at the same spot
        "crates/b/src/lib.rs:4:2".into(),
        "crates/b/src/lib.rs:4:9".into(),
    ];
    for _ in 0..3 {
        diags.rotate_left(2); // different starting permutations
        let mut sorted = diags.clone();
        sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let got: Vec<String> = sorted.iter().map(|d| d.message.clone()).collect();
        assert_eq!(got, expect);
        assert_eq!(sorted[2].rule, RuleId::D1);
        assert_eq!(sorted[3].rule, RuleId::D2);
        // The JSON rendering of the sorted set is byte-deterministic.
        assert_eq!(
            st_lint::diag::to_json(&sorted, 5),
            st_lint::diag::to_json(&sorted.clone(), 5)
        );
    }
}

#[test]
fn workspace_check_output_is_byte_stable_across_runs() {
    let here = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&here).expect("test runs inside the workspace");
    let a = check_workspace(&root);
    let b = check_workspace(&root);
    assert_eq!(a.files_scanned, b.files_scanned);
    assert_eq!(
        st_lint::diag::to_json(&a.diagnostics, a.files_scanned),
        st_lint::diag::to_json(&b.diagnostics, b.files_scanned),
        "two identical scans must render byte-identical stlint.json"
    );
    assert!(
        a.diagnostics
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key()),
        "check_workspace must return diagnostics in canonical order"
    );
}
