//! Property tests for the lexer's region handling — the foundation every
//! rule stands on. The adversarial surface is text that *looks* like a
//! test attribute, a brace, or an identifier but lives inside a string
//! literal, a raw string, or a comment: if any of it leaked into the
//! token stream, `test_mask` would mask the wrong spans and rules would
//! fire (or stay silent) on the wrong code.
//!
//! Sources are assembled from randomly chosen fragments. Every token
//! spelled `test_marker` appears only inside `#[cfg(test)]` / `#[test]`
//! regions (including nested ones) and must come back masked; every
//! `live_marker` is live code and must come back unmasked — even when
//! the neighbouring fragments stuff `}` braces, `#[cfg(test)]` prose and
//! quotes into literals, doc comments and block comments.

use proptest::prelude::*;
use st_lint::lexer::{lex, test_mask};

/// One source fragment. `test_marker` idents appear only inside masked
/// regions; `live_marker` only in live code; strings and comments carry
/// adversarial content that must never reach the token stream.
fn fragment(kind: u8, i: usize) -> String {
    match kind % 8 {
        0 => format!("fn live_{i}() {{ let live_marker = {i}; }}\n"),
        1 => format!(
            "#[cfg(test)]\nmod tests_{i} {{\n    fn f() {{ let test_marker = {i}; }}\n}}\n"
        ),
        2 => format!("#[test]\nfn t_{i}() {{ test_marker({i}); }}\n"),
        // Nested test regions: the inner attribute must not end the
        // outer mask early.
        3 => format!(
            "#[cfg(test)]\nmod outer_{i} {{\n    #[cfg(test)]\n    mod inner {{\n        fn g() {{ test_marker(); }}\n    }}\n    fn h() {{ test_marker(); }}\n}}\n"
        ),
        // Strings and raw strings full of braces, quotes and fake
        // attributes; the trailing binding is still live code.
        4 => format!(
            "fn strings_{i}() {{\n    let s = \"test_marker }} {{ #[test]\";\n    let r = r#\"#[cfg(test)] test_marker \"}}\":\"#;\n    let live_marker = {i};\n}}\n"
        ),
        5 => format!("// test_marker and #[cfg(test)] in a line comment\nfn c_{i}() {{ let live_marker = {i}; }}\n"),
        6 => format!(
            "/* test_marker in a block /* nested */ comment with }} */\nfn b_{i}() {{ let live_marker = {i}; }}\n"
        ),
        _ => format!(
            "/// test_marker in a doc comment\n/// mentioning `#[test]` in prose\nfn d_{i}() {{ let live_marker = {i}; }}\n"
        ),
    }
}

proptest! {
    #[test]
    fn masked_regions_never_leak_and_live_code_never_masks(
        kinds in prop::collection::vec(0u8..8, 1..12),
    ) {
        let src: String = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| fragment(k, i))
            .collect();
        let lexed = lex(&src);
        let mask = test_mask(&lexed.tokens);
        prop_assert_eq!(lexed.tokens.len(), mask.len());
        for (t, &masked) in lexed.tokens.iter().zip(&mask) {
            if t.text == "test_marker" {
                prop_assert!(
                    masked,
                    "test_marker leaked unmasked at {}:{} in:\n{}",
                    t.line, t.col, src
                );
            }
            if t.text == "live_marker" {
                prop_assert!(
                    !masked,
                    "live_marker wrongly masked at {}:{} in:\n{}",
                    t.line, t.col, src
                );
            }
        }
        // String/comment contents never materialize as identifiers: the
        // only idents spelled like the markers are the planted ones —
        // one live_marker per live fragment, and none from literals.
        let live_fragments = kinds
            .iter()
            .filter(|&&k| matches!(k % 8, 0 | 4 | 5 | 6 | 7))
            .count();
        let live_tokens = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "live_marker")
            .count();
        prop_assert_eq!(live_tokens, live_fragments);
    }

    #[test]
    fn token_positions_are_strictly_increasing(
        kinds in prop::collection::vec(0u8..8, 1..12),
    ) {
        let src: String = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| fragment(k, i))
            .collect();
        let lexed = lex(&src);
        for w in lexed.tokens.windows(2) {
            prop_assert!(
                (w[0].line, w[0].col) < (w[1].line, w[1].col),
                "tokens out of source order: {}:{} then {}:{}",
                w[0].line, w[0].col, w[1].line, w[1].col
            );
        }
        // Lexing is a pure function of the source.
        let again = lex(&src);
        prop_assert_eq!(lexed.tokens.len(), again.tokens.len());
        for (a, b) in lexed.tokens.iter().zip(&again.tokens) {
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(a.line, b.line);
            prop_assert_eq!(a.col, b.col);
        }
    }
}
