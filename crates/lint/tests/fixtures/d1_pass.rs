//! D1 passing fixture: deterministic tables in live code; std tables
//! confined to the test module, where iteration order can't leak into
//! protocol state.

use st_types::{FastMap, FastSet};
use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: FastSet<u32> = FastSet::default();
    for k in keys {
        seen.insert(*k);
    }
    let _by_key: FastMap<u32, u32> = FastMap::default();
    let _ordered: BTreeMap<u32, u32> = BTreeMap::new();
    seen.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_std_tables() {
        let mut m = HashMap::new();
        m.insert(1u32, 1u32);
        assert_eq!(m.len(), 1);
    }
}
