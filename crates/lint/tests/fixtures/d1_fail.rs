//! D1 failing fixture: std hash tables in protocol non-test code.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

pub fn tally(keys: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::<u32, u32>::new();
    let _ordered: BTreeMap<u32, u32> = BTreeMap::new();
    for k in keys {
        seen.insert(*k, 1);
    }
    seen.len()
}
