//! U1 failing fixture: an unsafe block.

pub fn reinterpret(x: u64) -> i64 {
    unsafe { std::mem::transmute::<u64, i64>(x) }
}
