//! P1 failing fixture: bare panic-family calls in protocol code.

pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    if *first == 0 {
        panic!("zero head");
    }
    match xs.len() {
        0 => unreachable!(),
        _ => *first,
    }
}
