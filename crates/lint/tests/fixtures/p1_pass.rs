//! P1 passing fixture: fallible returns, or annotated expects whose
//! reason states the invariant.

pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn checked_head(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty(), "caller guarantees a non-empty slice");
    *xs.first().expect("asserted non-empty above") // stlint::allow(panic, reason = "the assert on the previous line guarantees the slice is non-empty")
}
