//! D2 scoped-exemption specimen: wall-clock use that is legal in exactly
//! one place — st-node's socket I/O module — and illegal everywhere else
//! in that crate. Linted twice by the fixture tests under different
//! `rel_path`s.
use std::time::{Duration, Instant};

pub fn backoff_elapsed(started: Instant) -> bool {
    started.elapsed() > Duration::from_millis(250)
}
