//! U1 passing fixture: the word "unsafe" in comments and strings is
//! inert — only the keyword as a token counts.

pub fn describe() -> &'static str {
    // This comment says unsafe and that is fine.
    "nothing unsafe here"
}
