//! N1 fixture: unordered-map iteration orders escaping into ordered
//! sinks. Each function earns exactly one finding, on the map's name.
use st_types::{FastMap, FastSet};

fn leaks_via_loop(support: &FastMap<u64, u32>) -> Vec<u64> {
    let mut out = Vec::new();
    for (&block, _) in support {
        out.push(block);
    }
    out
}

fn leaks_via_chain(seen: &FastSet<u64>) -> Vec<u64> {
    seen.iter().copied().collect()
}
