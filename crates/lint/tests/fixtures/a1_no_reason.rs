//! A1 failing fixture: allow annotations that are rejected — and that
//! therefore suppress nothing, so the underlying P1 findings survive.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // stlint::allow(panic)
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).unwrap() // stlint::allow(panic, reason = "")
}

pub fn third(xs: &[u32]) -> u32 {
    *xs.get(2).unwrap() // stlint::allow(frobnicate, reason = "no such rule")
}
