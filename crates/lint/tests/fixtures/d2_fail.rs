//! D2 failing fixture: wall-clock reads and OS entropy in live code.

use std::time::Instant;

pub fn stamp() -> u64 {
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    0
}
