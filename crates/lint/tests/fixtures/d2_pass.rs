//! D2 passing fixture: all randomness flows from the run seed; timing
//! code lives in the test module only.

use rand::{RngExt, StdRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random_range(0..6)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_things() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
