//! N1 fixture: the sanctioned ways to consume an unordered map — the
//! canonicalizing adapters, commutative accumulation into another
//! unordered container, and a reasoned `allow` stating the invariant.
use st_types::fasthash::{iter_sorted, set_into_sorted_vec};
use st_types::{FastMap, FastSet};

fn routed(support: &FastMap<u64, u32>, seen: FastSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (&block, _) in iter_sorted(support) {
        out.push(block);
    }
    out.extend(set_into_sorted_vec(seen));
    out
}

fn commutative(tally: &FastMap<u64, u32>, mirror: &mut FastSet<u64>) -> u32 {
    let mut sum = 0;
    for (&k, &v) in tally {
        sum += v;
        mirror.insert(k);
    }
    sum
}

fn stated_invariant(seen: &FastSet<u64>) -> u64 {
    // stlint::allow(iterorder, reason = "xor-fold is commutative; bucket order cannot reach the result")
    seen.iter().fold(0, |acc, x| acc ^ x)
}
