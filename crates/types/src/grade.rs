//! Graded-agreement output grades.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The grade attached to a log output by a graded-agreement instance
/// (Definition 4 of the paper).
///
/// * [`Grade::One`] — the log was supported by more than `2m/3` of the `m`
///   perceived participants; grade-1 outputs trigger decisions.
/// * [`Grade::Zero`] — supported by more than `m/3` but at most `2m/3`.
///
/// `Grade` is ordered: `Zero < One`.
///
/// ```
/// use st_types::Grade;
/// assert!(Grade::Zero < Grade::One);
/// assert_eq!(Grade::One.as_bit(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// Support exceeded `m/3` (but not `2m/3`).
    Zero,
    /// Support exceeded `2m/3`; a decision-grade output.
    One,
}

impl Grade {
    /// The grade bit as in the paper's `(Λ, g)` notation.
    pub const fn as_bit(self) -> u8 {
        match self {
            Grade::Zero => 0,
            Grade::One => 1,
        }
    }

    /// Whether this grade authorises a decision.
    pub const fn is_decision_grade(self) -> bool {
        matches!(self, Grade::One)
    }
}

impl fmt::Debug for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grade{}", self.as_bit())
    }
}

impl fmt::Display for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grade_ordering_and_bits() {
        assert!(Grade::Zero < Grade::One);
        assert_eq!(Grade::Zero.as_bit(), 0);
        assert_eq!(Grade::One.as_bit(), 1);
        assert!(Grade::One.is_decision_grade());
        assert!(!Grade::Zero.is_decision_grade());
    }
}
