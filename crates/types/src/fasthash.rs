//! A fast, deterministic hasher for the workspace's small fixed-width
//! keys.
//!
//! Every hot path in the simulator is keyed by newtyped integers
//! ([`crate::BlockId`], [`crate::ProcessId`], [`crate::View`], …): block
//! trees, vote stores, tally support maps. `std`'s default SipHash is
//! DoS-resistant at the cost of ~10× the cycles these 8-byte keys need —
//! a real tax when a single `n = 1024` run performs hundreds of millions
//! of map operations. [`FxHasher`] is a multiply-mix hasher in the spirit
//! of rustc's FxHash: not DoS-resistant (irrelevant in a closed,
//! deterministic simulation; nothing here hashes attacker-chosen byte
//! strings into exposed tables), but fast and — unlike `RandomState` —
//! identical across runs, which also makes map iteration order stable
//! for debugging.

// stlint::allow(hashmap, reason = "this module IS the sanctioned wrapper: FastMap/FastSet are std tables re-keyed with the deterministic FxHasher")
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide FxHash seed. Zero (the default) reproduces the historic
/// unseeded behavior bit-for-bit; the `stsan` sanitizer perturbs it to
/// prove that no simulation output depends on bucket order.
static HASHER_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide FxHash seed. Only tables **created after** the
/// call observe the new seed (each hasher captures it at construction),
/// so a perturbation harness must set the seed before building the
/// simulation it measures. Production code never calls this — the
/// default seed of 0 keeps every run byte-identical to the committed
/// baselines; the call exists so `stsan` can falsify iteration-order
/// dependence dynamically.
pub fn set_hasher_seed(seed: u64) {
    HASHER_SEED.store(seed, Ordering::Relaxed);
}

/// The current process-wide FxHash seed.
pub fn hasher_seed() -> u64 {
    HASHER_SEED.load(Ordering::Relaxed)
}

/// Multiply-mix hasher for small keys. See the module docs for when (and
/// when not) to use it.
#[derive(Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher {
            hash: HASHER_SEED.load(Ordering::Relaxed),
        }
    }
}

/// Golden-ratio-derived odd multiplier (same constant family as rustc's
/// FxHash).
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    /// A hasher starting from an explicit seed, independent of the
    /// process-wide one. Seed 0 is the historic unseeded hasher.
    #[inline]
    pub fn with_seed(seed: u64) -> FxHasher {
        FxHasher { hash: seed }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: `std`'s hashbrown tables use the *top* bits for
        // control bytes, so entropy must reach them even for tiny inputs.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// SplitMix64 finalizer: a fixed, hasher-independent 64-bit mixing
/// function. Unlike [`FxHasher`] it never reads the process-wide seed, so
/// values built from it (content fingerprints, cohort cache keys) are
/// identical under `stsan`'s hasher perturbation — use it wherever a
/// digest must not depend on bucket order *or* on the FxHash seed.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds a word into a hasher-independent running digest (order matters:
/// `mix64_pair(a, b) ≠ mix64_pair(b, a)`). Composes [`mix64`] the way the
/// workspace's fingerprints chain fields together.
#[inline]
pub const fn mix64_pair(acc: u64, word: u64) -> u64 {
    mix64(acc ^ mix64(word))
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

// ---------------------------------------------------------------------
// Canonicalizing iteration adapters.
//
// Iterating a FastMap/FastSet yields entries in hasher-bucket order —
// deterministic for a fixed seed, but still an implementation detail
// that must never reach an ordered value (a Vec being built, a message
// batch, a fold). These free functions are the sanctioned route: they
// materialize the entries and sort by key, so downstream order is a
// function of the *keys*, not the hasher. stlint's N1/iterorder rule
// recognizes call sites routed through them (free-function calls don't
// match its `map.iter()…` shapes) and flags direct iteration instead.

/// Key-sorted iteration over any `HashMap` (in particular [`FastMap`]).
pub fn iter_sorted<K: Ord, V, S: BuildHasher>(
    map: &HashMap<K, V, S>,
) -> std::vec::IntoIter<(&K, &V)> {
    // stlint::allow(iterorder, reason = "this IS the canonicalizing adapter: entries are sorted by key before anything downstream sees them")
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries.into_iter()
}

/// Consumes a `HashMap` into a key-sorted `Vec` of pairs.
pub fn into_sorted_vec<K: Ord, V, S: BuildHasher>(map: HashMap<K, V, S>) -> Vec<(K, V)> {
    // stlint::allow(iterorder, reason = "this IS the canonicalizing adapter: the collected vec is key-sorted before being returned")
    let mut entries: Vec<(K, V)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// Sorted iteration over any `HashSet` (in particular [`FastSet`]).
pub fn set_iter_sorted<T: Ord, S: BuildHasher>(set: &HashSet<T, S>) -> std::vec::IntoIter<&T> {
    // stlint::allow(iterorder, reason = "this IS the canonicalizing adapter: elements are sorted before anything downstream sees them")
    let mut elems: Vec<&T> = set.iter().collect();
    elems.sort_unstable();
    elems.into_iter()
}

/// Consumes a `HashSet` into a sorted `Vec`.
pub fn set_into_sorted_vec<T: Ord, S: BuildHasher>(set: HashSet<T, S>) -> Vec<T> {
    // stlint::allow(iterorder, reason = "this IS the canonicalizing adapter: the collected vec is sorted before being returned")
    let mut elems: Vec<T> = set.into_iter().collect();
    elems.sort_unstable();
    elems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys (the common BlockId/ProcessId pattern) must not
        // collapse into few buckets: all finish() values distinct and the
        // top byte takes many values.
        let hashes: Vec<u64> = (0..4096u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), hashes.len());
        let top_bytes: std::collections::HashSet<u8> =
            hashes.iter().map(|h| (h >> 56) as u8).collect();
        assert!(
            top_bytes.len() > 100,
            "top byte poorly spread: {}",
            top_bytes.len()
        );
    }

    #[test]
    fn sorted_adapters_are_key_ordered_and_complete() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        let mut s: FastSet<u64> = FastSet::default();
        for i in [5u64, 1, 9, 3, 7] {
            m.insert(i, i * 10);
            s.insert(i);
        }
        let pairs: Vec<(u64, u64)> = iter_sorted(&m).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
        assert_eq!(into_sorted_vec(m), pairs);
        let elems: Vec<u64> = set_iter_sorted(&s).copied().collect();
        assert_eq!(elems, vec![1, 3, 5, 7, 9]);
        assert_eq!(set_into_sorted_vec(s), elems);
    }

    #[test]
    fn hasher_seed_perturbs_hashes_and_default_captures_it() {
        let hash_with = |seed: u64| {
            let mut h = FxHasher::with_seed(seed);
            h.write_u64(42);
            h.finish()
        };
        assert_ne!(hash_with(0), hash_with(0x9e37_79b9_7f4a_7c15));
        // `default()` reads the process-wide seed at construction time.
        set_hasher_seed(7);
        let mut d = FxHasher::default();
        d.write_u64(42);
        set_hasher_seed(0);
        assert_eq!(hasher_seed(), 0);
        assert_eq!(d.finish(), hash_with(7));
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
