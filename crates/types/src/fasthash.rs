//! A fast, deterministic hasher for the workspace's small fixed-width
//! keys.
//!
//! Every hot path in the simulator is keyed by newtyped integers
//! ([`crate::BlockId`], [`crate::ProcessId`], [`crate::View`], …): block
//! trees, vote stores, tally support maps. `std`'s default SipHash is
//! DoS-resistant at the cost of ~10× the cycles these 8-byte keys need —
//! a real tax when a single `n = 1024` run performs hundreds of millions
//! of map operations. [`FxHasher`] is a multiply-mix hasher in the spirit
//! of rustc's FxHash: not DoS-resistant (irrelevant in a closed,
//! deterministic simulation; nothing here hashes attacker-chosen byte
//! strings into exposed tables), but fast and — unlike `RandomState` —
//! identical across runs, which also makes map iteration order stable
//! for debugging.

// stlint::allow(hashmap, reason = "this module IS the sanctioned wrapper: FastMap/FastSet are std tables re-keyed with the deterministic FxHasher")
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for small keys. See the module docs for when (and
/// when not) to use it.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Golden-ratio-derived odd multiplier (same constant family as rustc's
/// FxHash).
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: `std`'s hashbrown tables use the *top* bits for
        // control bytes, so entropy must reach them even for tiny inputs.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys (the common BlockId/ProcessId pattern) must not
        // collapse into few buckets: all finish() values distinct and the
        // top byte takes many values.
        let hashes: Vec<u64> = (0..4096u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), hashes.len());
        let top_bytes: std::collections::HashSet<u8> =
            hashes.iter().map(|h| (h >> 56) as u8).collect();
        assert!(
            top_bytes.len() > 100,
            "top byte poorly spread: {}",
            top_bytes.len()
        );
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
