//! Protocol parameters `(n, β, γ, η, π, δ)` and the derived adjusted
//! failure ratio `β̃` of Section 2.3 of the paper.

use crate::TypesError;
use serde::{Deserialize, Serialize};

/// The failure ratio `β = 1/3` of the MMR protocol (decision threshold
/// `1 − β = 2/3`), used throughout the paper's Figure 1.
pub const DEFAULT_FAILURE_RATIO: f64 = 1.0 / 3.0;

/// Protocol and model parameters.
///
/// * `n` — total number of processes;
/// * `beta` (`β`) — failure ratio tolerated by the *original* dynamically
///   available protocol (1/3 for MMR);
/// * `gamma` (`γ`) — maximum churn rate per `η` rounds (Equation 1);
/// * `eta` (`η`) — message expiration period in rounds; `η = 0` recovers the
///   vanilla protocol that only uses current-round votes;
/// * `pi` (`π`) — maximum tolerated asynchronous period; safety under
///   asynchrony requires `π < η` (Theorem 2);
/// * `delta_ms` (`δ`) — the synchrony bound in milliseconds; rounds last
///   `Δ = 3δ` (Section 2.1). Only used to convert round counts into
///   wall-clock figures in experiments.
///
/// Use [`Params::builder`] to construct validated parameters.
///
/// ```
/// use st_types::Params;
/// let p = Params::builder(100).expiration(8).churn_rate(0.1).build()?;
/// assert_eq!(p.n(), 100);
/// assert_eq!(p.expiration(), 8);
/// # Ok::<(), st_types::TypesError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Params {
    n: usize,
    beta: f64,
    gamma: f64,
    eta: u64,
    pi: u64,
    delta_ms: f64,
}

impl Params {
    /// Starts building parameters for a system of `n` processes.
    pub fn builder(n: usize) -> ParamsBuilder {
        ParamsBuilder::new(n)
    }

    /// Convenience constructor for the vanilla MMR protocol (no message
    /// expiration, no churn bound needed).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn vanilla(n: usize) -> Result<Params, TypesError> {
        Params::builder(n).expiration(0).churn_rate(0.0).build()
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The base failure ratio `β` of the original protocol.
    pub fn failure_ratio(&self) -> f64 {
        self.beta
    }

    /// The churn-rate bound `γ` (Equation 1).
    pub fn churn_rate(&self) -> f64 {
        self.gamma
    }

    /// The message expiration period `η` in rounds.
    pub fn expiration(&self) -> u64 {
        self.eta
    }

    /// The maximum tolerated asynchronous period `π` in rounds.
    pub fn max_asynchrony(&self) -> u64 {
        self.pi
    }

    /// The synchrony bound `δ` in milliseconds.
    pub fn delta_ms(&self) -> f64 {
        self.delta_ms
    }

    /// Round duration `Δ = 3δ` in milliseconds (Section 2.1).
    pub fn round_duration_ms(&self) -> f64 {
        3.0 * self.delta_ms
    }

    /// The adjusted failure ratio `β̃ = (β − γ) / (γ(β − 2) + 1)` that the
    /// modified protocol must enforce per round (Equation 2, Section 2.3).
    ///
    /// For `γ = 0` this reduces to `β`; it decreases monotonically in `γ`
    /// and reaches 0 at `γ = β`.
    ///
    /// ```
    /// use st_types::Params;
    /// let p = Params::builder(10).churn_rate(0.0).build().unwrap();
    /// assert!((p.adjusted_failure_ratio() - 1.0 / 3.0).abs() < 1e-12);
    /// ```
    pub fn adjusted_failure_ratio(&self) -> f64 {
        adjusted_failure_ratio(self.beta, self.gamma)
    }

    /// Whether the configuration is asynchrony-resilient by Theorem 2,
    /// i.e. `π < η`.
    pub fn is_asynchrony_resilient(&self) -> bool {
        self.pi < self.eta
    }

    /// Quorum numerator for grade-1 outputs: votes must exceed
    /// `(1 − β)·m`. With `β = 1/3` this is the `> 2m/3` test of Figure 2.
    ///
    /// Returns the threshold as a count: the smallest integer `t` such that
    /// `t > (1 − β) · m` fails for counts `≤ t − 1`. Callers compare
    /// `support > grade1_threshold(m)` is *not* needed — use
    /// `support as f64 > (1.0 - beta) * m as f64` via [`Params::meets_grade1`].
    pub fn meets_grade1(&self, support: usize, m: usize) -> bool {
        (support as f64) > (1.0 - self.beta) * (m as f64)
    }

    /// Whether `support` out of `m` perceived participants meets the
    /// grade-0 quorum (`> β·m`, the `> m/3` test of Figure 2).
    pub fn meets_grade0(&self, support: usize, m: usize) -> bool {
        (support as f64) > self.beta * (m as f64)
    }
}

impl Default for Params {
    /// A small but representative default: 40 processes, `η = 4`, `π = 2`,
    /// `γ = 0.05`, `β = 1/3`, `δ = 100 ms`.
    fn default() -> Self {
        Params::builder(40)
            .expiration(4)
            .max_asynchrony(2)
            .churn_rate(0.05)
            .build()
            .expect("default parameters are valid") // stlint::allow(panic, reason = "constant builder inputs that satisfy every Params validation rule; exercised by the default_params_are_resilient test")
    }
}

/// Computes `β̃ = (β − γ) / (γ(β − 2) + 1)` (Section 2.3).
///
/// This is the failure ratio that must be enforced per round once the
/// protocol counts latest unexpired messages over an `η`-round window with
/// churn bounded by `γ`. Free function so the analysis crate can sweep it
/// without building full parameter sets.
///
/// ```
/// use st_types::adjusted_failure_ratio;
/// // Figure 1's specialisation: β = 1/3 gives (1 − 3γ)/(3 − 5γ).
/// let beta = 1.0 / 3.0;
/// for g in [0.0, 0.1, 0.2, 0.3] {
///     let lhs = adjusted_failure_ratio(beta, g);
///     let rhs = (1.0 - 3.0 * g) / (3.0 - 5.0 * g);
///     assert!((lhs - rhs).abs() < 1e-12);
/// }
/// ```
pub fn adjusted_failure_ratio(beta: f64, gamma: f64) -> f64 {
    (beta - gamma) / (gamma * (beta - 2.0) + 1.0)
}

/// Builder for [`Params`] (C-BUILDER).
///
/// All setters are chainable; [`ParamsBuilder::build`] validates the
/// combination.
#[derive(Clone, Debug)]
pub struct ParamsBuilder {
    n: usize,
    beta: f64,
    gamma: f64,
    eta: u64,
    pi: u64,
    delta_ms: f64,
}

impl ParamsBuilder {
    fn new(n: usize) -> Self {
        ParamsBuilder {
            n,
            beta: DEFAULT_FAILURE_RATIO,
            gamma: 0.0,
            eta: 0,
            pi: 0,
            delta_ms: 100.0,
        }
    }

    /// Sets the base failure ratio `β` (default 1/3).
    pub fn failure_ratio(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the churn-rate bound `γ` (default 0).
    pub fn churn_rate(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the message expiration period `η` in rounds (default 0 =
    /// vanilla protocol).
    pub fn expiration(mut self, eta: u64) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the maximum asynchronous-period length `π` in rounds
    /// (default 0).
    pub fn max_asynchrony(mut self, pi: u64) -> Self {
        self.pi = pi;
        self
    }

    /// Sets the synchrony bound `δ` in milliseconds (default 100).
    pub fn delta_ms(mut self, delta_ms: f64) -> Self {
        self.delta_ms = delta_ms;
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    ///
    /// * [`TypesError::EmptySystem`] if `n == 0`;
    /// * [`TypesError::InvalidFailureRatio`] if `β ∉ (0, 1/2]`;
    /// * [`TypesError::InvalidChurnRate`] if `γ < 0`, or `γ ≥ β` (the paper
    ///   requires `γ < β`, else Equation 2 demands `|B_r| < 0`);
    /// * [`TypesError::InvalidDelta`] if `δ ≤ 0` or not finite.
    pub fn build(self) -> Result<Params, TypesError> {
        if self.n == 0 {
            return Err(TypesError::EmptySystem);
        }
        if !(self.beta > 0.0 && self.beta <= 0.5 && self.beta.is_finite()) {
            return Err(TypesError::InvalidFailureRatio(self.beta));
        }
        #[allow(clippy::manual_range_contains)]
        if !(0.0..1.0).contains(&self.gamma) || !self.gamma.is_finite() {
            return Err(TypesError::InvalidChurnRate(self.gamma));
        }
        // γ must be strictly below β whenever expiration is in effect,
        // otherwise the adjusted failure ratio is non-positive and no
        // adversary at all can be tolerated (Section 2.3).
        if self.eta > 0 && self.gamma >= self.beta {
            return Err(TypesError::ChurnExceedsFailureRatio {
                gamma: self.gamma,
                beta: self.beta,
            });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
        if !(self.delta_ms > 0.0) || !self.delta_ms.is_finite() {
            return Err(TypesError::InvalidDelta(self.delta_ms));
        }
        Ok(Params {
            n: self.n,
            beta: self.beta,
            gamma: self.gamma,
            eta: self.eta,
            pi: self.pi,
            delta_ms: self.delta_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_vanilla_mmr() {
        let p = Params::builder(10).build().unwrap();
        assert_eq!(p.n(), 10);
        assert_eq!(p.expiration(), 0);
        assert_eq!(p.max_asynchrony(), 0);
        assert!((p.failure_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_system_rejected() {
        assert!(matches!(
            Params::builder(0).build(),
            Err(TypesError::EmptySystem)
        ));
    }

    #[test]
    fn invalid_failure_ratio_rejected() {
        assert!(Params::builder(4).failure_ratio(0.0).build().is_err());
        assert!(Params::builder(4).failure_ratio(0.6).build().is_err());
        assert!(Params::builder(4).failure_ratio(f64::NAN).build().is_err());
        assert!(Params::builder(4).failure_ratio(0.5).build().is_ok());
    }

    #[test]
    fn churn_must_be_below_beta_when_expiring() {
        // With η > 0 the paper requires γ < β.
        let err = Params::builder(4)
            .expiration(4)
            .churn_rate(1.0 / 3.0)
            .build();
        assert!(matches!(
            err,
            Err(TypesError::ChurnExceedsFailureRatio { .. })
        ));
        // With η = 0 the requirement is vacuous (H_{r−η,r−1} = ∅).
        assert!(Params::builder(4)
            .expiration(0)
            .churn_rate(1.0 / 3.0)
            .build()
            .is_ok());
    }

    #[test]
    fn adjusted_ratio_matches_figure_1_formula() {
        // β̃_{2/3} = (1 − 3γ)/(3 − 5γ) from the Figure 1 caption.
        for i in 0..=33 {
            let gamma = i as f64 / 100.0;
            let general = adjusted_failure_ratio(1.0 / 3.0, gamma);
            let fig1 = (1.0 - 3.0 * gamma) / (3.0 - 5.0 * gamma);
            assert!(
                (general - fig1).abs() < 1e-12,
                "mismatch at γ={gamma}: {general} vs {fig1}"
            );
        }
    }

    #[test]
    fn adjusted_ratio_boundary_values() {
        // γ = 0 ⇒ β̃ = β (no stronger assumption under static participation).
        assert!((adjusted_failure_ratio(1.0 / 3.0, 0.0) - 1.0 / 3.0).abs() < 1e-12);
        // γ = β ⇒ β̃ = 0 (system may stall even without failures).
        assert!(adjusted_failure_ratio(1.0 / 3.0, 1.0 / 3.0).abs() < 1e-12);
        // Monotone decreasing in γ.
        let mut prev = f64::INFINITY;
        for i in 0..=33 {
            let v = adjusted_failure_ratio(1.0 / 3.0, i as f64 / 100.0);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn quorum_tests_match_thirds() {
        let p = Params::builder(10).build().unwrap();
        // m = 9: grade 1 needs > 6 votes, grade 0 needs > 3 votes.
        assert!(!p.meets_grade1(6, 9));
        assert!(p.meets_grade1(7, 9));
        assert!(!p.meets_grade0(3, 9));
        assert!(p.meets_grade0(4, 9));
    }

    #[test]
    fn asynchrony_resilience_predicate() {
        let p = Params::builder(10)
            .expiration(4)
            .max_asynchrony(3)
            .build()
            .unwrap();
        assert!(p.is_asynchrony_resilient());
        let q = Params::builder(10)
            .expiration(4)
            .max_asynchrony(4)
            .build()
            .unwrap();
        assert!(!q.is_asynchrony_resilient());
    }

    #[test]
    fn round_duration_is_three_delta() {
        let p = Params::builder(10).delta_ms(50.0).build().unwrap();
        assert!((p.round_duration_ms() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn default_params_are_resilient() {
        let p = Params::default();
        assert!(p.is_asynchrony_resilient());
        assert!(p.adjusted_failure_ratio() > 0.0);
    }
}
