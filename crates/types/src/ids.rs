//! Identifier newtypes: processes, rounds, views, blocks, transactions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a process `p_i` in the system `P = {p_1, …, p_n}`.
///
/// Process ids are dense indices in `0..n`, which lets simulator components
/// use them directly as `Vec` indices.
///
/// ```
/// use st_types::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from its dense index.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process (`0..n`).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterator over all process ids of a system of `n` processes.
    ///
    /// ```
    /// use st_types::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids.len(), 3);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n as u32).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// A protocol round.
///
/// An execution proceeds in rounds `0, 1, 2, …`; each round has a send phase
/// at its beginning and a receive phase at its end (Section 2.1). Round 0 is
/// the single round of view 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Round(u64);

impl Round {
    /// The first round of an execution (view 0's propose round).
    pub const ZERO: Round = Round(0);

    /// Creates a round from its number.
    pub const fn new(r: u64) -> Self {
        Round(r)
    }

    /// Returns the round number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round, or `None` for round 0.
    pub const fn prev(self) -> Option<Round> {
        match self.0 {
            0 => None,
            r => Some(Round(r - 1)),
        }
    }

    /// Saturating subtraction: `self - k`, clamped at round 0.
    ///
    /// Used to compute the start of an expiration window `[r − η, r]`.
    pub const fn saturating_sub(self, k: u64) -> Round {
        Round(self.0.saturating_sub(k))
    }

    /// Whether this round lies in the closed interval `[lo, hi]`.
    pub fn in_window(self, lo: Round, hi: Round) -> bool {
        lo <= self && self <= hi
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

/// A protocol view.
///
/// View 0 lasts one round (round 0); every later view `v ≥ 1` spans the two
/// rounds `2v − 1` and `2v` (Algorithm 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct View(u64);

impl View {
    /// The bootstrap view (a single propose round).
    pub const ZERO: View = View(0);

    /// Creates a view from its number.
    pub const fn new(v: u64) -> Self {
        View(v)
    }

    /// Returns the view number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next view.
    pub const fn next(self) -> View {
        View(self.0 + 1)
    }

    /// First round of this view: round 0 for view 0, `2v − 1` otherwise.
    pub const fn first_round(self) -> Round {
        match self.0 {
            0 => Round(0),
            v => Round(2 * v - 1),
        }
    }

    /// Second (decision) round of this view, `2v`. View 0 has no second
    /// round and returns `None`.
    pub const fn second_round(self) -> Option<Round> {
        match self.0 {
            0 => None,
            v => Some(Round(2 * v)),
        }
    }

    /// The view a given round belongs to.
    ///
    /// ```
    /// use st_types::{Round, View};
    /// assert_eq!(View::from_round(Round::new(0)), View::new(0));
    /// assert_eq!(View::from_round(Round::new(1)), View::new(1));
    /// assert_eq!(View::from_round(Round::new(2)), View::new(1));
    /// assert_eq!(View::from_round(Round::new(7)), View::new(4));
    /// ```
    pub const fn from_round(r: Round) -> View {
        View(r.as_u64().div_ceil(2))
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for View {
    fn from(v: u64) -> Self {
        View(v)
    }
}

/// Content-address of a block (a 64-bit hash in this simulation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(u64);

impl BlockId {
    /// The id of the genesis block `b₀`.
    pub const GENESIS: BlockId = BlockId(0);

    /// Creates a block id from a hash value.
    pub const fn new(h: u64) -> Self {
        BlockId(h)
    }

    /// Returns the raw hash value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is the genesis block id.
    pub const fn is_genesis(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_genesis() {
            write!(f, "b0(genesis)")
        } else {
            write!(f, "b{:016x}", self.0)
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a transaction carried in a block payload.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction id.
    pub const fn new(v: u64) -> Self {
        TxId(v)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_u32(), 7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(ProcessId::from(7u32), p);
    }

    #[test]
    fn process_id_all_enumerates_dense_indices() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn round_arithmetic() {
        let r = Round::new(5);
        assert_eq!(r.next(), Round::new(6));
        assert_eq!(r.prev(), Some(Round::new(4)));
        assert_eq!(Round::ZERO.prev(), None);
        assert_eq!(r.saturating_sub(10), Round::ZERO);
        assert_eq!(r.saturating_sub(2), Round::new(3));
    }

    #[test]
    fn round_window_membership() {
        let r = Round::new(5);
        assert!(r.in_window(Round::new(3), Round::new(5)));
        assert!(r.in_window(Round::new(5), Round::new(5)));
        assert!(!r.in_window(Round::new(6), Round::new(9)));
        assert!(!r.in_window(Round::new(1), Round::new(4)));
    }

    #[test]
    fn view_round_mapping_matches_algorithm_1() {
        // View 0 is round 0 only; view v >= 1 spans rounds 2v-1 and 2v.
        assert_eq!(View::ZERO.first_round(), Round::ZERO);
        assert_eq!(View::ZERO.second_round(), None);
        for v in 1u64..50 {
            let view = View::new(v);
            assert_eq!(view.first_round(), Round::new(2 * v - 1));
            assert_eq!(view.second_round(), Some(Round::new(2 * v)));
            assert_eq!(View::from_round(view.first_round()), view);
            assert_eq!(View::from_round(view.second_round().unwrap()), view);
        }
    }

    #[test]
    fn view_from_round_is_total() {
        for r in 0u64..100 {
            let v = View::from_round(Round::new(r));
            let first = v.first_round().as_u64();
            let last = v.second_round().map(|x| x.as_u64()).unwrap_or(first);
            assert!(first <= r && r <= last, "round {r} not inside view {v}");
        }
    }

    #[test]
    fn block_id_genesis() {
        assert!(BlockId::GENESIS.is_genesis());
        assert!(!BlockId::new(1).is_genesis());
        assert_eq!(format!("{:?}", BlockId::GENESIS), "b0(genesis)");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Round::new(2) < Round::new(10));
        assert!(View::new(2) < View::new(10));
        assert!(ProcessId::new(2) < ProcessId::new(10));
    }
}
