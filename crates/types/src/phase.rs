//! Round phases and round kinds of the sleepy model.

use crate::{Round, View};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two phases of a round (Section 2.1): a send phase at the beginning
/// (processes in `O_r` multicast) and a receive phase at the end (processes
/// awake at the end of the round, i.e. in `O_{r+1}`, receive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Beginning of a round: awake processes multicast their messages.
    Send,
    /// End of a round: processes awake at the end receive messages.
    Receive,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Send => write!(f, "send"),
            Phase::Receive => write!(f, "receive"),
        }
    }
}

/// What a round means to Algorithm 1: the bootstrap propose round, the
/// first round of a view, or the second (decision) round of a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoundKind {
    /// Round 0 — view 0's single propose round.
    Bootstrap,
    /// Round `2v − 1`, the first round of view `v ≥ 1`: compute
    /// `GA_{v−1,2}` outputs, decide, vote in `GA_{v,1}`.
    ViewFirst(View),
    /// Round `2v`, the second round of view `v ≥ 1`: compute `GA_{v,1}`
    /// outputs, vote in `GA_{v,2}`, propose for view `v + 1`.
    ViewSecond(View),
}

impl RoundKind {
    /// Classifies a round per Algorithm 1's view structure.
    ///
    /// ```
    /// use st_types::{Round, RoundKind, View};
    /// assert_eq!(RoundKind::of(Round::new(0)), RoundKind::Bootstrap);
    /// assert_eq!(RoundKind::of(Round::new(3)), RoundKind::ViewFirst(View::new(2)));
    /// assert_eq!(RoundKind::of(Round::new(4)), RoundKind::ViewSecond(View::new(2)));
    /// ```
    pub fn of(round: Round) -> RoundKind {
        let r = round.as_u64();
        if r == 0 {
            RoundKind::Bootstrap
        } else if r % 2 == 1 {
            RoundKind::ViewFirst(View::new(r.div_ceil(2)))
        } else {
            RoundKind::ViewSecond(View::new(r / 2))
        }
    }

    /// The view this round belongs to.
    pub fn view(self) -> View {
        match self {
            RoundKind::Bootstrap => View::ZERO,
            RoundKind::ViewFirst(v) | RoundKind::ViewSecond(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_view_structure() {
        assert_eq!(RoundKind::of(Round::new(0)), RoundKind::Bootstrap);
        for v in 1u64..20 {
            assert_eq!(
                RoundKind::of(Round::new(2 * v - 1)),
                RoundKind::ViewFirst(View::new(v))
            );
            assert_eq!(
                RoundKind::of(Round::new(2 * v)),
                RoundKind::ViewSecond(View::new(v))
            );
        }
    }

    #[test]
    fn kind_view_agrees_with_view_from_round() {
        for r in 0u64..50 {
            let round = Round::new(r);
            assert_eq!(RoundKind::of(round).view(), View::from_round(round));
        }
    }
}
