//! Error types for parameter validation.

use std::error::Error;
use std::fmt;

/// Errors produced when validating protocol parameters.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TypesError {
    /// The system must contain at least one process.
    EmptySystem,
    /// The failure ratio `β` must lie in `(0, 1/2]`.
    InvalidFailureRatio(f64),
    /// The churn rate `γ` must lie in `[0, 1)`.
    InvalidChurnRate(f64),
    /// With message expiration in effect, `γ` must be strictly below `β`
    /// (Section 2.3: otherwise Equation 2 requires `|B_r| < 0`).
    ChurnExceedsFailureRatio {
        /// The offending churn rate.
        gamma: f64,
        /// The failure ratio it must stay below.
        beta: f64,
    },
    /// The synchrony bound `δ` must be a positive finite duration.
    InvalidDelta(f64),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::EmptySystem => write!(f, "system must contain at least one process"),
            TypesError::InvalidFailureRatio(b) => {
                write!(f, "failure ratio β must lie in (0, 1/2], got {b}")
            }
            TypesError::InvalidChurnRate(g) => {
                write!(f, "churn rate γ must lie in [0, 1), got {g}")
            }
            TypesError::ChurnExceedsFailureRatio { gamma, beta } => write!(
                f,
                "churn rate γ = {gamma} must be strictly below failure ratio β = {beta} \
                 when message expiration is enabled"
            ),
            TypesError::InvalidDelta(d) => {
                write!(
                    f,
                    "synchrony bound δ must be positive and finite, got {d} ms"
                )
            }
        }
    }
}

impl Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TypesError::ChurnExceedsFailureRatio {
            gamma: 0.4,
            beta: 1.0 / 3.0,
        };
        let s = e.to_string();
        assert!(s.contains("0.4"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypesError>();
    }
}
