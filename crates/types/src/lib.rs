//! Core identifier and parameter types for the sleepy-tob workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *Asynchrony-Resilient Sleepy Total-Order Broadcast
//! Protocols* (D'Amato, Losa, Zanolini — PODC 2024):
//!
//! * [`ProcessId`], [`Round`], [`View`] — newtypes for the actors and the
//!   round/view structure of the protocol (views of two rounds each,
//!   Algorithm 1 of the paper);
//! * [`Params`] — the protocol parameters `(n, β, γ, η, π, δ)` together with
//!   the derived adjusted failure ratio `β̃` of Section 2.3;
//! * [`Grade`] — graded-agreement output grades;
//! * [`TypesError`] — validation errors for parameters.
//!
//! # Example
//!
//! ```
//! use st_types::{Params, View, Round};
//!
//! let params = Params::builder(40)
//!     .expiration(4)
//!     .churn_rate(0.05)
//!     .build()?;
//! assert!(params.adjusted_failure_ratio() < params.failure_ratio());
//! assert_eq!(View::from_round(Round::new(5)), View::new(3));
//! # Ok::<(), st_types::TypesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fasthash;
mod grade;
mod ids;
mod params;
mod phase;

pub use error::TypesError;
pub use fasthash::{FastMap, FastSet};
pub use grade::Grade;
pub use ids::{BlockId, ProcessId, Round, TxId, View};
pub use params::{adjusted_failure_ratio, Params, ParamsBuilder, DEFAULT_FAILURE_RATIO};
pub use phase::{Phase, RoundKind};
