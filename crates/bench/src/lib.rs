//! Shared plumbing for the experiment binaries (one per paper
//! figure/claim; see DESIGN.md §4 for the index) and the Criterion
//! micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use st_analysis::Table;
use std::path::PathBuf;

/// Where experiment CSVs are written (`target/experiments/`).
pub fn output_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Prints a titled table to stdout and writes its CSV next to the other
/// experiment outputs. IO failures are reported but non-fatal — the
/// printed table is the primary artifact.
pub fn emit(experiment_id: &str, title: &str, table: &Table) {
    println!("\n=== {experiment_id}: {title} ===\n");
    print!("{}", table.render());
    let path = output_dir().join(format!("{experiment_id}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("\n[written {}]", path.display()),
        Err(e) => println!("\n[could not write {}: {e}]", path.display()),
    }
}

/// The seeds experiments average over. Fixed so every run of an
/// experiment binary reproduces the same numbers.
pub fn seeds(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 0xC0FFEE + 7 * i).collect()
}

/// Formats a fraction as a fixed-width ratio string (`0.333`).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an optional value, rendering `None` as `—`.
pub fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "—".to_string())
}

/// Runs `job` over every item of `inputs` across scoped threads (one per
/// core, striped) and returns outputs in input order. Experiment sweeps are
/// embarrassingly parallel and deterministic per item, so parallel execution
/// cannot change any result — only wall-clock.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, job: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(inputs.len().max(1));
    let out_slots: Vec<parking_lot_free::Slot<O>> = (0..inputs.len())
        .map(|_| parking_lot_free::Slot::new())
        .collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let inputs = &inputs;
            let job = &job;
            let out_slots = &out_slots;
            scope.spawn(move || {
                let mut i = w;
                while i < inputs.len() {
                    out_slots[i].set(job(&inputs[i]));
                    i += workers;
                }
            });
        }
    });
    out_slots.into_iter().map(|s| s.take()).collect()
}

/// Tiny once-cell slot used by [`parallel_sweep`] (avoids pulling in a
/// sync primitive for a write-once, read-after-join pattern).
mod parking_lot_free {
    use std::sync::Mutex;

    pub struct Slot<T>(Mutex<Option<T>>);

    impl<T> Slot<T> {
        pub fn new() -> Slot<T> {
            Slot(Mutex::new(None))
        }

        pub fn set(&self, value: T) {
            *self.0.lock().expect("slot poisoned") = Some(value);
        }

        pub fn take(self) -> T {
            self.0
                .into_inner()
                .expect("slot poisoned")
                .expect("slot never filled")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = seeds(5);
        let b = seeds(5);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(opt(Some(3)), "3");
        assert_eq!(opt::<u64>(None), "—");
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = parallel_sweep(inputs.clone(), |&x| x * x);
        assert_eq!(out, inputs.iter().map(|&x| x * x).collect::<Vec<_>>());
        // Degenerate cases.
        assert!(parallel_sweep(Vec::<u64>::new(), |&x| x).is_empty());
        assert_eq!(parallel_sweep(vec![7u64], |&x| x + 1), vec![8]);
    }
}
