//! Shared plumbing for the experiment binaries (one per paper
//! figure/claim; see DESIGN.md §4 for the index) and the Criterion
//! micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use st_analysis::Table;
use std::path::{Path, PathBuf};

/// Where experiment CSVs are written (`target/experiments/`).
pub fn output_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Prints a titled table to stdout and writes its CSV next to the other
/// experiment outputs. IO failures are reported but non-fatal — the
/// printed table is the primary artifact.
pub fn emit(experiment_id: &str, title: &str, table: &Table) {
    println!("\n=== {experiment_id}: {title} ===\n");
    print!("{}", table.render());
    let path = output_dir().join(format!("{experiment_id}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("\n[written {}]", path.display()),
        Err(e) => println!("\n[could not write {}: {e}]", path.display()),
    }
}

/// Upserts one experiment's report into `BENCH_sim.json` in the working
/// directory, preserving every other experiment's section. The file is a
/// top-level JSON object keyed by experiment id, so `exp_scale` and
/// `exp_timeline` (and future benchmark families) feed one committed
/// artifact without clobbering each other. A legacy single-report file
/// (the pre-merge format, recognisable by its top-level `"experiment"`
/// field) is migrated by nesting it under its own id first.
pub fn write_bench_section(section: &str, report: &impl Serialize) -> std::io::Result<()> {
    write_bench_section_at(Path::new("BENCH_sim.json"), section, report)
}

/// The `BENCH_sim.json` section id for a run of experiment `base`.
/// Smoke runs (`--smoke`, the reduced CI grids) land in a separate
/// `<base>_smoke` section so they can never overwrite the committed
/// full-grid numbers — before this, a CI smoke pass on a dirty checkout
/// would silently clobber `exp_scale` et al. with reduced-grid data.
pub fn bench_section(base: &str, smoke: bool) -> String {
    if smoke {
        format!("{base}_smoke")
    } else {
        base.to_string()
    }
}

/// [`write_bench_section`] against an explicit path (tests and tools).
pub fn write_bench_section_at(
    path: &Path,
    section: &str,
    report: &impl Serialize,
) -> std::io::Result<()> {
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
    {
        Some(Value::Map(entries)) => {
            let legacy_id = match entries.iter().find(|(k, _)| k == "experiment") {
                Some((_, Value::Str(id))) => Some(id.clone()),
                _ => None,
            };
            match legacy_id {
                Some(id) => vec![(id, Value::Map(entries))],
                None => entries,
            }
        }
        _ => Vec::new(),
    };
    let value = report.to_value();
    match entries.iter_mut().find(|(k, _)| k == section) {
        Some((_, slot)) => *slot = value,
        None => entries.push((section.to_string(), value)),
    }
    let json = serde_json::to_string_pretty(&Value::Map(entries))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

/// The seeds experiments average over. Fixed so every run of an
/// experiment binary reproduces the same numbers.
pub fn seeds(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 0xC0FFEE + 7 * i).collect()
}

/// Formats a fraction as a fixed-width ratio string (`0.333`).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an optional value, rendering `None` as `—`.
pub fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "—".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = seeds(5);
        let b = seeds(5);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(opt(Some(3)), "3");
        assert_eq!(opt::<u64>(None), "—");
    }

    #[derive(serde::Serialize)]
    struct Fake {
        x: u64,
    }

    #[test]
    fn smoke_runs_get_their_own_section() {
        assert_eq!(bench_section("exp_scale", false), "exp_scale");
        assert_eq!(bench_section("exp_scale", true), "exp_scale_smoke");
        // End to end: a smoke write must leave the full-grid section alone.
        let dir = std::env::temp_dir().join(format!("bench-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        write_bench_section_at(&path, &bench_section("exp_scale", false), &Fake { x: 64 }).unwrap();
        write_bench_section_at(&path, &bench_section("exp_scale", true), &Fake { x: 8 }).unwrap();
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(matches!(
            v.get("exp_scale").and_then(|s| s.get("x")),
            Some(Value::U64(64))
        ));
        assert!(matches!(
            v.get("exp_scale_smoke").and_then(|s| s.get("x")),
            Some(Value::U64(8))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_sections_merge_and_migrate() {
        let dir = std::env::temp_dir().join(format!("bench-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        // Legacy single-report file → migrated under its experiment id.
        std::fs::write(&path, r#"{"experiment": "exp_scale", "runs": [1, 2]}"#).unwrap();
        write_bench_section_at(&path, "exp_timeline", &Fake { x: 7 }).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("exp_scale").and_then(|s| s.get("runs")).is_some());
        assert!(v.get("exp_timeline").is_some());
        // Re-writing a section replaces it without touching the other.
        write_bench_section_at(&path, "exp_timeline", &Fake { x: 9 }).unwrap();
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(matches!(
            v.get("exp_timeline").and_then(|s| s.get("x")),
            Some(Value::U64(9))
        ));
        assert!(v.get("exp_scale").is_some());
        // A missing or corrupt file starts fresh.
        std::fs::write(&path, "not json").unwrap();
        write_bench_section_at(&path, "exp_timeline", &Fake { x: 1 }).unwrap();
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(v.get("exp_timeline").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
