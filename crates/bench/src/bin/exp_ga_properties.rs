//! **G1 — Lemma 1**: the extended graded agreement satisfies graded
//! consistency, integrity, validity, uniqueness, bounded divergence and
//! clique validity under `|H_r| > 2/3·|O_r ∪ P₀|`.
//!
//! Monte-Carlo check over randomized instances: random block trees,
//! random honest inputs, random `M₀` initial sets, and adversarial
//! Byzantine votes with per-receiver equivocation. Reports the violation
//! count per property (all zeros expected) plus a control group where the
//! assumption is deliberately broken (violations expected — the bound is
//! tight, not slack).
//!
//! Run with `cargo run --release -p st-bench --bin exp_ga_properties`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_analysis::Table;
use st_bench::emit;
use st_blocktree::{Block, BlockTree};
use st_ga::{tally, GaOutput, Thresholds};
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, Grade, ProcessId, Round, TxId, View};

const INSTANCES: usize = 400;
const ROUND: Round = Round::new(5);

struct Instance {
    tree: BlockTree,
    honest_inputs: Vec<(ProcessId, BlockId)>,
    outputs: Vec<GaOutput>,
}

#[derive(Default)]
struct Violations {
    graded_consistency: usize,
    integrity: usize,
    validity: usize,
    uniqueness: usize,
    bounded_divergence: usize,
}

impl Violations {
    fn total(&self) -> usize {
        self.graded_consistency
            + self.integrity
            + self.validity
            + self.uniqueness
            + self.bounded_divergence
    }
}

/// One randomized extended-GA instance. `respect_assumption` controls
/// whether `|H_r| > 2/3·|O_r ∪ P₀|` is enforced.
fn random_instance(rng: &mut StdRng, respect_assumption: bool) -> Instance {
    // Random tree of 2..10 blocks.
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    let blocks = rng.random_range(2..10usize);
    for i in 0..blocks {
        let parent = ids[rng.random_range(0..ids.len())];
        let b = Block::build(
            parent,
            View::new(i as u64 + 1),
            ProcessId::new(i as u32),
            vec![TxId::new(i as u64)],
        );
        ids.push(tree.insert(b).unwrap());
    }

    let n_honest = rng.random_range(6..14usize);
    let n_byz = if respect_assumption {
        // Byzantine and M₀ senders beyond H_r both inflate the
        // denominator; keep the adversary budget below n_honest/2.
        rng.random_range(0..=(n_honest.saturating_sub(1) / 2).saturating_sub(1))
    } else {
        // Deliberately break the assumption: adversary outnumbers the
        // 2/3 margin.
        n_honest / 2 + 1 + rng.random_range(0..3usize)
    };

    // Honest fresh inputs (round-5 votes).
    let honest_inputs: Vec<(ProcessId, BlockId)> = (0..n_honest)
        .map(|i| {
            (
                ProcessId::new(i as u32),
                ids[rng.random_range(0..ids.len())],
            )
        })
        .collect();

    // Two conflicting attack targets for the coordinated broken-mode
    // adversary: receivers with even index are shown votes for one, odd
    // receivers for the other.
    let target_a = ids[rng.random_range(0..ids.len())];
    let target_b = ids[rng.random_range(0..ids.len())];

    // Each honest receiver gets: all honest fresh votes, plus Byzantine
    // votes chosen per receiver (equivocation/selective silence), plus a
    // shared M₀ of old votes from the Byzantine ids (stale identities).
    let mut outputs = Vec::new();
    for recv in 0..n_honest {
        let mut store = VoteStore::new();
        for &(p, tip) in &honest_inputs {
            store.insert(Vote::new(p, ROUND, tip));
        }
        for b in 0..n_byz {
            let pid = ProcessId::new((n_honest + b) as u32);
            if respect_assumption {
                match rng.random_range(0..4u8) {
                    0 => {
                        // Old (M₀) vote only.
                        store.insert(Vote::new(
                            pid,
                            Round::new(3),
                            ids[rng.random_range(0..ids.len())],
                        ));
                    }
                    1 => {
                        // Fresh vote for a random block.
                        store.insert(Vote::new(pid, ROUND, ids[rng.random_range(0..ids.len())]));
                    }
                    2 => {
                        // Equivocate in the fresh round: discarded sender.
                        store.insert(Vote::new(pid, ROUND, ids[0]));
                        store.insert(Vote::new(pid, ROUND, ids[ids.len() - 1]));
                    }
                    _ => { /* silent toward this receiver */ }
                }
            } else {
                // Coordinated split: all Byzantine show even receivers
                // unanimous votes for target_a and odd receivers for
                // target_b — the split-vote play at instance scale.
                let target = if recv % 2 == 0 { target_a } else { target_b };
                store.insert(Vote::new(pid, ROUND, target));
            }
        }
        let votes = store.latest_in_window(Round::new(1), ROUND);
        outputs.push(tally(&tree, &votes, Thresholds::mmr()));
    }
    Instance {
        tree,
        honest_inputs,
        outputs,
    }
}

fn check(instance: &Instance, v: &mut Violations) {
    let tree = &instance.tree;
    let lcp = tree
        .longest_common_prefix(instance.honest_inputs.iter().map(|&(_, t)| t))
        .expect("inputs known");
    for out in &instance.outputs {
        if out.grade_of(lcp) != Some(Grade::One) {
            v.validity += 1;
        }
        if out.maximal_outputs(tree).len() > 2 {
            v.bounded_divergence += 1;
        }
        for (block, grade) in out.iter() {
            if !instance
                .honest_inputs
                .iter()
                .any(|&(_, t)| tree.is_ancestor(block, t))
            {
                v.integrity += 1;
            }
            if grade == Grade::One {
                for other in &instance.outputs {
                    if other.grade_of(block).is_none() {
                        v.graded_consistency += 1;
                    }
                    for ob in other.grade1_blocks() {
                        if tree.conflicting(block, ob) {
                            v.uniqueness += 1;
                        }
                    }
                }
            }
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x6A1);
    let mut held = Violations::default();
    let mut broken = Violations::default();
    for _ in 0..INSTANCES {
        check(&random_instance(&mut rng, true), &mut held);
        check(&random_instance(&mut rng, false), &mut broken);
    }
    let mut table = Table::new(vec![
        "property",
        "violations (assumption holds)",
        "violations (assumption broken)",
    ]);
    table.row(vec![
        "graded consistency".into(),
        held.graded_consistency.to_string(),
        broken.graded_consistency.to_string(),
    ]);
    table.row(vec![
        "integrity".into(),
        held.integrity.to_string(),
        broken.integrity.to_string(),
    ]);
    table.row(vec![
        "validity".into(),
        held.validity.to_string(),
        broken.validity.to_string(),
    ]);
    table.row(vec![
        "uniqueness".into(),
        held.uniqueness.to_string(),
        broken.uniqueness.to_string(),
    ]);
    table.row(vec![
        "bounded divergence".into(),
        held.bounded_divergence.to_string(),
        broken.bounded_divergence.to_string(),
    ]);
    emit(
        "exp_ga_properties",
        &format!("Lemma 1 Monte-Carlo over {INSTANCES} instances per group"),
        &table,
    );
    println!(
        "\nExpected: the left column is all zeros (Lemma 1); the right column is\n\
         nonzero — with |H_r| ≤ 2/3·|O_r ∪ P₀| the properties genuinely fail.\n\
         Total violations: held = {}, broken = {}.",
        held.total(),
        broken.total()
    );
    assert_eq!(held.total(), 0, "Lemma 1 violated under its assumptions");
}
