//! **S1 — soak/stress sweep**: a broad randomized configuration matrix,
//! every run checked against the full invariant set. The closest thing to
//! a fuzzer the lock-step world offers; any failure prints a reproducer
//! line (all runs are deterministic in the printed seed).
//!
//! Run with `cargo run --release -p st-bench --bin exp_stress [runs]`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use st_analysis::Table;
use st_bench::emit;
use st_sim::adversary::{
    Adversary, BlackoutAdversary, EquivocatingVoter, JunkVoter, PartitionAttacker, ReorgAttacker,
    SilentAdversary, WithholdingLeader,
};
use st_sim::{AsyncWindow, ChurnOptions, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

struct Case {
    n: usize,
    eta: u64,
    pi: Option<u64>,
    byz: usize,
    adversary: &'static str,
    churn: f64,
    seed: u64,
}

fn adversary_named(name: &str) -> Box<dyn Adversary> {
    match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        "reorg" => Box::new(ReorgAttacker::new()),
        "equivocate" => Box::new(EquivocatingVoter::new()),
        "junk" => Box::new(JunkVoter::new()),
        "withhold" => Box::new(WithholdingLeader::new()),
        other => unreachable!("unknown adversary {other}"),
    }
}

const ADVERSARIES: [&str; 7] = [
    "silent",
    "blackout",
    "partition",
    "reorg",
    "equivocate",
    "junk",
    "withhold",
];

fn random_case(rng: &mut StdRng) -> Case {
    let n = rng.random_range(4..20usize);
    let eta = rng.random_range(2..8u64);
    // Stay inside the guarantee: π < η when a window exists.
    let pi = if rng.random_bool(0.6) {
        Some(rng.random_range(1..eta))
    } else {
        None
    };
    // Byzantine budget below β̃·n with γ headroom.
    let max_byz = ((n as f64) / 3.0 * 0.8).floor() as usize;
    Case {
        n,
        eta,
        pi,
        byz: rng.random_range(0..=max_byz),
        adversary: ADVERSARIES[rng.random_range(0..ADVERSARIES.len())],
        churn: if rng.random_bool(0.5) { 0.01 } else { 0.0 },
        seed: rng.random_range(0..u64::MAX),
    }
}

fn run_case(case: &Case) -> Result<(), String> {
    let horizon = 40 + case.pi.unwrap_or(0) * 2;
    let params = Params::builder(case.n)
        .expiration(case.eta)
        .churn_rate(0.1)
        .build()
        .map_err(|e| e.to_string())?;
    let schedule = if case.churn > 0.0 {
        Schedule::random_churn(
            case.n,
            horizon,
            case.churn,
            case.seed,
            &ChurnOptions {
                min_awake_frac: 0.75,
                wake_prob: 0.5,
                // Keep this experiment's pre-envelope semantics: the labeled
                // churn level is the raw per-round sleep probability.
                max_dropped_frac: 1.0,
                ..Default::default()
            },
        )
    } else {
        Schedule::full(case.n, horizon)
    }
    .with_static_byzantine(case.byz);

    let mut config = SimConfig::new(params, case.seed)
        .horizon(horizon)
        .txs_every(5);
    if let Some(pi) = case.pi {
        config = config.async_window(AsyncWindow::new(Round::new(14), pi));
    }
    let report = SimBuilder::from_config(config)
        .schedule(schedule)
        .adversary_boxed(adversary_named(case.adversary))
        .run();

    // Invariants. Guaranteed properties must hold in *every* in-model
    // configuration: D_ra protection and post-window agreement. Full
    // agreement additionally holds for every strategy in this arsenal
    // (in-window orphaning needs eclipse choreography none of these
    // adversaries performs with π < η).
    if !report.resilience_violations.is_empty() {
        return Err(format!(
            "D_ra conflicts: {}",
            report.resilience_violations.len()
        ));
    }
    if !report.post_window_violations().is_empty() {
        return Err(format!(
            "post-window agreement violations: {}",
            report.post_window_violations().len()
        ));
    }
    if !report.is_safe() {
        return Err(format!(
            "agreement violations: {}",
            report.safety_violations.len()
        ));
    }
    // Liveness: silent/benign configurations must make progress.
    if case.adversary == "silent" && case.pi.is_none() && report.final_decided_height < 10 {
        return Err(format!("stalled at height {}", report.final_decided_height));
    }
    Ok(())
}

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let mut rng = StdRng::seed_from_u64(0x57BE55);
    let mut failures: Vec<(Case, String)> = Vec::new();
    let mut per_adversary: std::collections::HashMap<&str, usize> = Default::default();
    for i in 0..runs {
        let case = random_case(&mut rng);
        *per_adversary.entry(case.adversary).or_insert(0) += 1;
        if let Err(msg) = run_case(&case) {
            eprintln!(
                "FAIL [{i}]: n={} eta={} pi={:?} byz={} adversary={} churn={} seed={} → {msg}",
                case.n, case.eta, case.pi, case.byz, case.adversary, case.churn, case.seed
            );
            failures.push((case, msg));
        }
    }
    let mut table = Table::new(vec!["adversary", "runs", "failures"]);
    let mut names: Vec<&str> = per_adversary.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        let fails = failures.iter().filter(|(c, _)| c.adversary == name).count();
        table.row(vec![
            name.to_string(),
            per_adversary[name].to_string(),
            fails.to_string(),
        ]);
    }
    emit(
        "exp_stress",
        &format!("randomized soak over {runs} configurations"),
        &table,
    );
    assert!(
        failures.is_empty(),
        "{} of {} randomized configurations violated invariants",
        failures.len(),
        runs
    );
    println!("\nAll {runs} randomized in-model configurations upheld every invariant.");
}
