//! **F1 — Figure 1**: allowable failure ratio `β̃₂⁄₃` versus churn rate
//! `γ`.
//!
//! Reproduces the paper's only data figure two ways:
//!
//! 1. **Analytic**: the closed form `β̃₂⁄₃ = (1 − 3γ)/(3 − 5γ)`
//!    (Section 2.3), printed over the same `γ ∈ [0, 0.4]` range the paper
//!    plots.
//! 2. **Empirical soundness check**: for each `γ`, generate worst-case
//!    rotating-sleeper schedules with per-`η` drop-off rate `γ`, then
//!    binary-search the largest Byzantine fraction (a [`JunkVoter`]
//!    adversary plus stale-vote inflation) under which the extended
//!    protocol still makes chain progress and stays safe.
//!
//!    `β̃` is a **sufficient** (worst-case-over-all-strategies) bound, so
//!    the measured boundary must sit **at or above** the analytic curve,
//!    coinciding at `γ = 0` where the bound is tight (`1/3` matches the
//!    known upper bound for a 2/3 decision threshold). Under concretely
//!    implementable churn the stale votes of sleepers keep chasing the
//!    chain tip, so the measured boundary stays near `1/3` while the
//!    guarantee decreases — the gap is the price of the closed form
//!    quantifying over adversarial churn *timing* that no fixed schedule
//!    realises.
//! 3. **Churn cost**: at a fixed Byzantine fraction, transaction latency
//!    as a function of `γ` — the concrete degradation churn causes even
//!    away from the hard boundary.
//!
//! Run with `cargo run --release -p st-bench --bin fig1_failure_ratio`.

use st_analysis::{beta_tilde_two_thirds, Table};
use st_bench::{emit, f3, seeds};
use st_sim::adversary::JunkVoter;
use st_sim::{Schedule, SimBuilder, SimConfig};
use st_types::Params;

const N: usize = 30;
const HORIZON: u64 = 60;
const ETA: u64 = 4;

/// Whether the protocol makes healthy progress and stays safe with `f`
/// Byzantine processes under worst-case (rotating) churn-rate-γ schedules
/// (majority over seeds).
fn healthy(f: usize, gamma: f64, seed_list: &[u64]) -> bool {
    let mut ok = 0usize;
    for &seed in seed_list {
        // Rotating sleepers: a γ fraction of processes is always asleep
        // with unexpired votes — the worst case the β̃ discount covers.
        let schedule = Schedule::rotating_sleep(N, HORIZON, gamma, ETA).with_static_byzantine(f);
        let params = Params::builder(N)
            .expiration(ETA)
            .churn_rate(gamma.min(0.32))
            .build()
            .expect("valid parameters");
        let report = SimBuilder::from_config(SimConfig::new(params, seed).horizon(HORIZON))
            .schedule(schedule)
            .adversary(JunkVoter::new())
            .build()
            .expect("valid simulation")
            .run();
        // Progress: the decided chain must actually grow. Healthy runs
        // decide ≈ one block per view (≈ HORIZON/2 blocks); junk votes
        // inflating perceived participation past the threshold starve
        // *new-block* decisions even while old prefixes keep re-deciding,
        // so chain growth is the honest progress measure.
        let progressing = report.final_decided_height as f64 >= HORIZON as f64 / 6.0;
        if report.is_safe() && progressing {
            ok += 1;
        }
    }
    ok * 2 > seed_list.len()
}

/// Largest tolerated Byzantine count at churn `γ` (binary search).
fn max_tolerated_f(gamma: f64, seed_list: &[u64]) -> usize {
    let mut lo = 0usize; // healthy (f = 0 must be healthy)
    let mut hi = N / 2; // assumed unhealthy
    if healthy(hi, gamma, seed_list) {
        return hi;
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if healthy(mid, gamma, seed_list) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    // ---- analytic curve (the figure itself) ----
    let mut analytic = Table::new(vec!["gamma", "beta_tilde_2/3 (analytic)"]);
    let mut g = 0.0;
    while g <= 0.401 {
        let v = beta_tilde_two_thirds(g);
        analytic.row(vec![f3(g), f3(v.max(0.0))]);
        g += 0.02;
    }
    emit("fig1_analytic", "β̃₂⁄₃ = (1 − 3γ)/(3 − 5γ)", &analytic);

    // ---- empirical boundary ----
    let seed_list = seeds(3);
    let mut empirical = Table::new(vec![
        "gamma",
        "analytic beta_tilde",
        "measured max f",
        "measured f/n",
    ]);
    for &gamma in &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let analytic_v = beta_tilde_two_thirds(gamma).max(0.0);
        let f = max_tolerated_f(gamma, &seed_list);
        empirical.row(vec![
            f3(gamma),
            f3(analytic_v),
            f.to_string(),
            f3(f as f64 / N as f64),
        ]);
        eprintln!("γ = {gamma:.2}: measured f = {f} (analytic β̃ = {analytic_v:.3})");
    }
    emit(
        "fig1_empirical",
        "measured progress boundary vs analytic guarantee (n = 30, η = 4, rotating churn)",
        &empirical,
    );

    // ---- churn cost at a fixed failure ratio ----
    let mut cost = Table::new(vec![
        "gamma",
        "mean tx latency (rounds)",
        "chain growth (blocks)",
        "safe",
    ]);
    for &gamma in &[0.0, 0.10, 0.20, 0.30] {
        let mut lats = Vec::new();
        let mut growth = Vec::new();
        let mut safe = true;
        for &seed in &seed_list {
            let schedule =
                Schedule::rotating_sleep(N, HORIZON, gamma, ETA).with_static_byzantine(6);
            let params = Params::builder(N)
                .expiration(ETA)
                .churn_rate(gamma.min(0.32))
                .build()
                .expect("valid parameters");
            let report =
                SimBuilder::from_config(SimConfig::new(params, seed).horizon(HORIZON).txs_every(4))
                    .schedule(schedule)
                    .adversary(JunkVoter::new())
                    .build()
                    .expect("valid simulation")
                    .run();
            if let Some(l) = report.mean_tx_latency() {
                lats.push(l);
            }
            growth.push(report.final_decided_height as f64);
            safe &= report.is_safe();
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        cost.row(vec![
            f3(gamma),
            format!("{:.1}", mean(&lats)),
            format!("{:.1}", mean(&growth)),
            safe.to_string(),
        ]);
    }
    emit(
        "fig1_churn_cost",
        "latency/growth cost of churn at fixed f = 6 of 30 (JunkVoter, 3 seeds)",
        &cost,
    );

    println!(
        "\nExpected: the measured boundary coincides with the analytic guarantee at\n\
         γ = 0 (both ≈ 1/3, the known optimum) and never falls below it — β̃ is a\n\
         sound worst-case bound. The churn-cost table shows the mechanism's price:\n\
         latency grows and chain growth sags as γ rises, even at a safe f."
    );
}
