//! **W1 — open-loop workload sweep**: submit→decide latency percentiles,
//! throughput and drop accounting as offered load crosses the service
//! capacity.
//!
//! The protocol's own latency experiments (L1) measure decision latency
//! of transactions injected one at a time; this sweep measures what a
//! *client* sees when traffic is open-loop — arrivals do not wait for
//! service, so once offered rate exceeds the per-round submission batch
//! the mempool queues, the capacity cap drops, and the p99 climbs the
//! saturation knee. Four scenarios cross the rate axis:
//!
//! * `steady` — [`ConstantRate`] under full synchronous participation:
//!   the clean M/D/1-like knee (batch 4/round is the service rate).
//! * `flash-crowd` — a [`FlashCrowd`] burst (rounds 20–32, jittered)
//!   on top of the base rate: transient queueing even when the average
//!   load is serviceable.
//! * `diurnal-churn` — [`Diurnal`] offered load with participation
//!   *derived from the same trace* ([`diurnal_schedule`]): users asleep
//!   at night are users not submitting, and the per-phase latency split
//!   (peak-half vs trough-half means) shows latency tracking the awake
//!   fraction.
//! * `gst-d2` — [`ConstantRate`] through a mid-run bounded-delay window
//!   (`Δ = 2`, rounds 20–40): partial synchrony stretches the decide
//!   edge of the latency join while admission keeps running.
//!
//! Grid: scenario × offered rate `{1, 4, 16}`/round × `n ∈ {64, 256}`,
//! horizon 60, batch 4, capacity 64. Every cell must be safe and decide
//! transactions, and the steady column must show the knee
//! (`p99(rate 16) > p99(rate 1)` at both sizes) or the binary exits
//! non-zero without writing numbers.
//!
//! Results are printed as a table, written as CSV, and merged into
//! `BENCH_workload.json` under `"exp_workload"` (smoke runs under
//! `"exp_workload_smoke"`, never clobbering the committed full grid).
//!
//! Run with `cargo run --release -p st-bench --bin exp_workload
//! [--smoke]`. `--smoke` restricts the sweep to `n = 64` at rates
//! `{1, 16}` for CI.

use serde::Serialize;
use st_analysis::Table;
use st_bench::{bench_section, emit, f3, opt, write_bench_section_at};
use st_sim::adversary::SilentAdversary;
use st_sim::{
    diurnal_schedule, ConstantRate, Diurnal, FlashCrowd, Schedule, SimBuilder, SimConfig, Sweep,
    Timeline, Workload,
};
use st_types::Params;
use std::path::Path;

const HORIZON: u64 = 60;
const BATCH: usize = 4;
const CAPACITY: usize = 64;
const SEED: u64 = 0xC0FFEE;

const SCENARIOS: [&str; 4] = ["steady", "flash-crowd", "diurnal-churn", "gst-d2"];

/// One measured cell of the sweep.
#[derive(Clone, Debug, Serialize)]
struct Cell {
    scenario: String,
    n: usize,
    /// Offered transactions per round (peak rate for diurnal).
    rate: u64,
    offered: u64,
    admitted: u64,
    submitted: u64,
    decided: u64,
    dropped_capacity: u64,
    dropped_fairness: u64,
    drop_rate: f64,
    mempool_high_water: usize,
    backlog: u64,
    throughput: f64,
    latency_p50: Option<u64>,
    latency_p90: Option<u64>,
    latency_p99: Option<u64>,
    latency_mean: Option<f64>,
    /// Diurnal only: mean latency of txs arriving in the peak half of
    /// the cosine period (awake fraction above its midpoint).
    peak_latency_mean: Option<f64>,
    /// Diurnal only: mean latency of txs arriving in the trough half.
    trough_latency_mean: Option<f64>,
    safe: bool,
}

#[derive(Clone, Debug, Serialize)]
struct BenchReport {
    experiment: &'static str,
    smoke: bool,
    horizon: u64,
    batch: usize,
    capacity: usize,
    cells: Vec<Cell>,
}

/// Mean submit→decide latency over the decided txs whose *arrival*
/// round's awake fraction is on the given side of the trace midpoint —
/// the peak/trough split that shows diurnal latency tracking
/// participation.
fn phase_mean(report: &st_sim::SimReport, workload: &Diurnal, peak: bool) -> Option<f64> {
    let mid = (0.25 + 1.0) / 2.0;
    let lats: Vec<u64> = report
        .txs
        .iter()
        .filter(|rec| (workload.load_fraction(rec.submitted.as_u64()) >= mid) == peak)
        .filter_map(|rec| rec.decide_latency())
        .collect();
    if lats.is_empty() {
        return None;
    }
    Some(lats.iter().sum::<u64>() as f64 / lats.len() as f64)
}

fn measure(scenario: &str, n: usize, rate: u64) -> Cell {
    let params = Params::builder(n)
        .expiration(2)
        .build()
        .expect("valid params");
    let mut config = SimConfig::new(params, SEED).horizon(HORIZON);
    let mut builder_schedule = Schedule::full(n, HORIZON);
    let mut diurnal_trace = None;
    let spec = match scenario {
        "steady" => st_sim::WorkloadSpec::new(ConstantRate::per_round(rate).clients(4)),
        "flash-crowd" => st_sim::WorkloadSpec::new(
            FlashCrowd::new(rate)
                .clients(4)
                .burst(20, 12, rate * 8)
                .jitter(SEED),
        ),
        "diurnal-churn" => {
            let workload = Diurnal::new(rate, 0.25, 20).clients(4);
            builder_schedule = diurnal_schedule(&workload, n, HORIZON);
            diurnal_trace = Some(workload.clone());
            st_sim::WorkloadSpec::new(workload)
        }
        "gst-d2" => {
            config = config.timeline(Timeline::synchronous().bounded_delay(
                st_types::Round::new(20),
                20,
                2,
            ));
            st_sim::WorkloadSpec::new(ConstantRate::per_round(rate).clients(4))
        }
        other => unreachable!("unknown scenario {other}"),
    };
    let report = SimBuilder::from_config(config)
        .workload_spec(spec.capacity(CAPACITY).batch(BATCH))
        .schedule(builder_schedule)
        .adversary(SilentAdversary)
        .build()
        .expect("valid workload cell")
        .run();
    let w = &report.workload;
    Cell {
        scenario: scenario.to_string(),
        n,
        rate,
        offered: w.offered,
        admitted: w.admitted,
        submitted: w.submitted,
        decided: w.decided,
        dropped_capacity: w.dropped_capacity,
        dropped_fairness: w.dropped_fairness,
        drop_rate: w.drop_rate,
        mempool_high_water: w.mempool_high_water,
        backlog: w.backlog,
        throughput: w.throughput,
        latency_p50: w.latency_p50,
        latency_p90: w.latency_p90,
        latency_p99: w.latency_p99,
        latency_mean: w.latency_mean,
        peak_latency_mean: diurnal_trace
            .as_ref()
            .and_then(|d| phase_mean(&report, d, true)),
        trough_latency_mean: diurnal_trace
            .as_ref()
            .and_then(|d| phase_mean(&report, d, false)),
        safe: report.is_safe(),
    }
}

/// The health gate: every cell safe and deciding, admission accounting
/// balanced, and the steady column showing the saturation knee. Exits
/// non-zero before any JSON is written when violated.
fn assert_healthy(cells: &[Cell], sizes: &[usize]) {
    for c in cells {
        if !c.safe {
            eprintln!(
                "FATAL: safety violation in {} n={} rate={}",
                c.scenario, c.n, c.rate
            );
            std::process::exit(1);
        }
        if c.decided == 0 {
            eprintln!(
                "FATAL: no decided txs in {} n={} rate={}",
                c.scenario, c.n, c.rate
            );
            std::process::exit(1);
        }
        if c.offered != c.admitted + c.dropped_capacity + c.dropped_fairness {
            eprintln!(
                "FATAL: admission accounting unbalanced in {} n={} rate={}",
                c.scenario, c.n, c.rate
            );
            std::process::exit(1);
        }
    }
    for &n in sizes {
        let p99_at = |rate: u64| {
            cells
                .iter()
                .find(|c| c.scenario == "steady" && c.n == n && c.rate == rate)
                .and_then(|c| c.latency_p99)
        };
        let (lo_rate, hi_rate) = (1, 16);
        if let (Some(lo), Some(hi)) = (p99_at(lo_rate), p99_at(hi_rate)) {
            if hi <= lo {
                eprintln!(
                    "FATAL: no saturation knee at n={n}: steady p99 is {hi} at \
                     rate {hi_rate}/round vs {lo} at rate {lo_rate}/round \
                     (offered {hi_rate} vs batch {BATCH} must queue)"
                );
                std::process::exit(1);
            }
        }
    }
    println!("[workload health gate passed: all cells safe, deciding, balanced; knee visible]");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, rates): (Vec<usize>, Vec<u64>) = if smoke {
        (vec![64], vec![1, 16])
    } else {
        (vec![64, 256], vec![1, 4, 16])
    };
    let mut grid: Vec<(String, usize, u64)> = Vec::new();
    for s in SCENARIOS {
        for &n in &sizes {
            for &r in &rates {
                grid.push((s.to_string(), n, r));
            }
        }
    }

    // Fixed seed per cell (committed-grid semantics; the derived sweep
    // seed is ignored), sequential so cells never contend for cores.
    let cells: Vec<Cell> = Sweep::over(grid)
        .sequential()
        .run(|(scenario, n, rate), _seed| measure(scenario, *n, *rate));
    assert_healthy(&cells, &sizes);

    let mut table = Table::new(vec![
        "scenario",
        "n",
        "rate",
        "offered",
        "submitted",
        "decided",
        "drop%",
        "high-water",
        "p50",
        "p90",
        "p99",
        "mean",
    ]);
    for c in &cells {
        table.row(vec![
            c.scenario.clone(),
            c.n.to_string(),
            c.rate.to_string(),
            c.offered.to_string(),
            c.submitted.to_string(),
            c.decided.to_string(),
            format!("{:.1}", c.drop_rate * 100.0),
            c.mempool_high_water.to_string(),
            opt(c.latency_p50),
            opt(c.latency_p90),
            opt(c.latency_p99),
            opt(c.latency_mean.map(|m| format!("{m:.2}"))),
        ]);
    }
    emit(
        "exp_workload",
        "open-loop workload sweep: latency percentiles vs offered rate",
        &table,
    );

    for c in cells.iter().filter(|c| c.scenario == "diurnal-churn") {
        println!(
            "diurnal n={} rate={}: peak-half mean latency {} vs trough-half {} \
             (participation derived from the same trace)",
            c.n,
            c.rate,
            opt(c.peak_latency_mean.map(f3)),
            opt(c.trough_latency_mean.map(f3)),
        );
    }

    let bench = BenchReport {
        experiment: "exp_workload",
        smoke,
        horizon: HORIZON,
        batch: BATCH,
        capacity: CAPACITY,
        cells,
    };
    let path = Path::new("BENCH_workload.json");
    match write_bench_section_at(path, &bench_section("exp_workload", smoke), &bench) {
        Ok(()) => println!("\n[merged exp_workload into BENCH_workload.json]"),
        Err(e) => {
            eprintln!("\n[could not write BENCH_workload.json: {e}]");
            std::process::exit(1);
        }
    }
}
