//! **P3 — timeline scenarios**: multi-window asynchrony and partial
//! synchrony at scale.
//!
//! The paper's central claim is that the extended protocol recovers after
//! **every** asynchronous spell. `exp_scale` (P2) measures throughput on
//! a clean synchronous run; this experiment drives the [`st_sim::Timeline`]
//! environment model across the two scenario families the claim is about,
//! at `n ∈ {64, 256}`:
//!
//! * **alternating** — `k = 3` asynchronous spells of `π = 4` rounds,
//!   separated by 12 synchronous rounds ([`st_sim::scenario::alternating`]),
//!   once under the partition attacker and once under a total blackout.
//!   With `η = 6 > π`, every spell must end with a recovery record whose
//!   `first_decision_after` is set and whose Definition-5 violation count
//!   is zero — per window, not just overall.
//! * **gst** — partial synchrony ([`st_sim::scenario::gst`]): bounded-delay
//!   delivery (`Δ ∈ {2, 4}`) until GST at mid-run, synchrony after. With
//!   `η > Δ` the run stays safe through the bounded period and heals
//!   after GST.
//!
//! Per cell the table reports wall-clock, decisions, safety/resilience,
//! the per-window recovery latencies (mean and worst) and whether every
//! window healed. Results are printed, written as CSV next to the other
//! experiments, and merged into `BENCH_sim.json` under the
//! `"exp_timeline"` key (smoke runs write to the separate
//! `"exp_timeline_smoke"` section, so a `--smoke` pass can never
//! overwrite the committed full-grid numbers).
//!
//! Run with `cargo run --release -p st-bench --bin exp_timeline [--smoke]`.
//! `--smoke` restricts the sweep to `n = 64` for CI (same horizon — the
//! scenario shapes are horizon-anchored, only the n sweep shrinks).

use serde::Serialize;
use st_analysis::Table;
use st_bench::{bench_section, emit, f3, opt, write_bench_section};
use st_sim::adversary::{Adversary, BlackoutAdversary, PartitionAttacker, SilentAdversary};
use st_sim::scenario::{alternating, gst};
use st_sim::{Schedule, SimBuilder, SimConfig, Sweep, Timeline};
use st_types::{Params, Round};
use std::time::Instant;

/// One measured cell.
#[derive(Clone, Debug, Serialize)]
struct Cell {
    scenario: String,
    n: usize,
    horizon: u64,
    eta: u64,
    windows: usize,
    seconds: f64,
    rounds_per_sec: f64,
    messages: usize,
    decisions: usize,
    safe: bool,
    resilient: bool,
    /// One recovery record per window, all healed.
    recovered_every_window: bool,
    mean_recovery_rounds: Option<f64>,
    max_recovery_rounds: Option<u64>,
}

#[derive(Clone, Debug, Serialize)]
struct BenchReport {
    experiment: &'static str,
    smoke: bool,
    cells: Vec<Cell>,
}

struct Spec {
    scenario: &'static str,
    eta: u64,
    timeline: Timeline,
    adversary: fn() -> Box<dyn Adversary>,
}

fn specs(horizon: u64) -> Vec<Spec> {
    let alt = alternating(4, 12, 3);
    let gst_round = Round::new(horizon / 2);
    vec![
        Spec {
            scenario: "alternating-partition",
            eta: 6,
            timeline: alt.clone(),
            adversary: || Box::new(PartitionAttacker::new()),
        },
        Spec {
            scenario: "alternating-blackout",
            eta: 6,
            timeline: alt,
            adversary: || Box::new(BlackoutAdversary),
        },
        Spec {
            scenario: "gst-delta2",
            eta: 4,
            timeline: gst(2, gst_round),
            adversary: || Box::new(SilentAdversary),
        },
        Spec {
            scenario: "gst-delta4",
            eta: 6,
            timeline: gst(4, gst_round),
            adversary: || Box::new(SilentAdversary),
        },
    ]
}

fn measure(spec: &Spec, n: usize, horizon: u64) -> Cell {
    let params = Params::builder(n)
        .expiration(spec.eta)
        .build()
        .expect("valid params");
    let config = SimConfig::new(params, 0x71AE)
        .horizon(horizon)
        .txs_every(8)
        .timeline(spec.timeline.clone());
    let sim = SimBuilder::from_config(config)
        .schedule(Schedule::full(n, horizon))
        .adversary_boxed((spec.adversary)())
        .build()
        .expect("valid timeline cell");
    let start = Instant::now();
    let report = sim.run();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let lats: Vec<u64> = report
        .recoveries
        .iter()
        .filter_map(|r| r.recovery_rounds)
        .collect();
    Cell {
        scenario: spec.scenario.to_string(),
        n,
        horizon,
        eta: spec.eta,
        windows: report.recoveries.len(),
        seconds,
        rounds_per_sec: (horizon + 1) as f64 / seconds,
        messages: report.messages_sent,
        decisions: report.decisions_total,
        safe: report.is_safe(),
        // Empty resilience_violations already implies a zero per-window
        // count (the report concatenates the per-window monitors).
        resilient: report.is_asynchrony_resilient(),
        recovered_every_window: report.recovered_after_every_window(),
        mean_recovery_rounds: if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<u64>() as f64 / lats.len() as f64)
        },
        max_recovery_rounds: report.max_recovery_rounds(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, horizon): (Vec<usize>, u64) = if smoke {
        (vec![64], 60)
    } else {
        (vec![64, 256], 60)
    };

    // The committed grid as a `Sweep`: n × scenario-spec, run
    // sequentially so per-cell wall-clock stays honest on small machines.
    // Seeds are fixed inside `measure` (committed-grid semantics), so the
    // derived per-cell seed is ignored.
    let all_specs = specs(horizon);
    let spec_idx: Vec<usize> = (0..all_specs.len()).collect();
    let cells: Vec<Cell> = Sweep::grid(sizes.clone(), spec_idx)
        .sequential()
        .run(|&(n, si), _seed| measure(&all_specs[si], n, horizon));

    let mut table = Table::new(vec![
        "scenario",
        "n",
        "eta",
        "windows",
        "seconds",
        "decisions",
        "safe",
        "resilient",
        "all recovered",
        "mean heal",
        "max heal",
    ]);
    for c in &cells {
        table.row(vec![
            c.scenario.clone(),
            c.n.to_string(),
            c.eta.to_string(),
            c.windows.to_string(),
            f3(c.seconds),
            c.decisions.to_string(),
            c.safe.to_string(),
            c.resilient.to_string(),
            c.recovered_every_window.to_string(),
            opt(c.mean_recovery_rounds.map(f3)),
            opt(c.max_recovery_rounds),
        ]);
    }
    emit(
        "exp_timeline",
        "multi-window asynchrony + partial synchrony (Timeline)",
        &table,
    );

    let healthy = cells
        .iter()
        .all(|c| c.safe && c.resilient && c.recovered_every_window);
    println!(
        "\n{} cells; every window of every cell {} a post-window decision\n\
         with zero Definition-5 violations — the paper's \"recovers after\n\
         every spell\" claim, exercised as data.",
        cells.len(),
        if healthy {
            "produced"
        } else {
            "DID NOT produce"
        },
    );

    let bench = BenchReport {
        experiment: "exp_timeline",
        smoke,
        cells,
    };
    match write_bench_section(&bench_section("exp_timeline", smoke), &bench) {
        Ok(()) => println!("\n[merged exp_timeline into BENCH_sim.json]"),
        Err(e) => println!("\n[could not write BENCH_sim.json: {e}]"),
    }
    if !healthy {
        std::process::exit(1);
    }
}
