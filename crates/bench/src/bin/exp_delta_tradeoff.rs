//! **P1 — the δ/π trade-off** (the paper's headline practical claim).
//!
//! "In practice, this allows picking a small synchrony bound δ, and
//! therefore obtain a fast protocol in the common case, knowing that the
//! protocol tolerates occasional periods of duration at most π > δ during
//! which the bound does not hold. With existing dynamically available TOB
//! protocols, maintaining safety under those assumptions would require
//! setting δ = π, which would significantly slow down the protocol."
//!
//! Setup: the deployment must survive occasional asynchronous periods of
//! real duration `T` ms while the true network delay is `d = 100` ms.
//!
//! * **Extended protocol**: δ = d (rounds of 3d = 300 ms), expiration
//!   `η = ⌈T/300⌉ + 1` — survives the period by Theorem 2.
//! * **Vanilla protocol**: must inflate δ = T so that the "asynchronous"
//!   period is inside its synchrony bound; rounds of 3T.
//!
//! Both are simulated through an actual disturbance window; throughput is
//! decisions per *wall-clock second* (decisions / (rounds × 3δ)) and
//! latency is the transaction inclusion time in ms.
//!
//! Run with `cargo run --release -p st-bench --bin exp_delta_tradeoff`.

use st_analysis::{mean, Table};
use st_bench::{emit, f3, opt, seeds};
use st_sim::adversary::BlackoutAdversary;
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

const N: usize = 12;
const D_MS: f64 = 100.0; // true network delay

struct Outcome {
    decisions_per_sec: f64,
    tx_latency_ms: Option<f64>,
    safe: bool,
}

/// Simulates a deployment with synchrony bound `delta_ms`. The real
/// disturbance lasts `t_ms`; expressed in this deployment's rounds it
/// spans `⌈t_ms / (3·delta_ms)⌉` rounds (0 ⇒ the disturbance fits inside
/// one round's delivery budget and is invisible).
fn run(delta_ms: f64, eta: u64, t_ms: f64, seed: u64) -> Outcome {
    let round_ms = 3.0 * delta_ms;
    let pi = (t_ms / round_ms).ceil() as u64;
    let horizon = 40 + 2 * pi;
    let params = Params::builder(N)
        .expiration(eta)
        .delta_ms(delta_ms)
        .build()
        .expect("valid");
    let mut config = SimConfig::new(params, seed).horizon(horizon).txs_every(2);
    if pi > 0 {
        config = config.async_window(AsyncWindow::new(Round::new(16), pi));
    }
    let report = SimBuilder::from_config(config)
        .schedule(Schedule::full(N, horizon))
        .adversary(BlackoutAdversary)
        .build()
        .expect("valid simulation")
        .run();
    let wall_secs = (horizon as f64 * round_ms) / 1000.0;
    Outcome {
        // Chain growth (final decided height) per second is the honest
        // throughput measure: decision events double-count per process.
        decisions_per_sec: report.final_decided_height as f64 / wall_secs,
        tx_latency_ms: report.mean_tx_latency().map(|rounds| rounds * round_ms),
        safe: report.is_safe() && report.is_asynchrony_resilient(),
    }
}

fn main() {
    let seed_list = seeds(3);
    let mut table = Table::new(vec![
        "disturbance T",
        "config",
        "delta",
        "round",
        "eta",
        "blocks/sec",
        "tx latency (ms)",
        "safe",
    ]);
    for &t_ms in &[1_000.0f64, 5_000.0, 30_000.0] {
        // Extended: small δ, expiration covers the disturbance.
        let eta = (t_ms / (3.0 * D_MS)).ceil() as u64 + 1;
        let mut ext_tp = Vec::new();
        let mut ext_lat = Vec::new();
        let mut ext_safe = true;
        for &seed in &seed_list {
            let o = run(D_MS, eta, t_ms, seed);
            ext_tp.push(o.decisions_per_sec);
            if let Some(l) = o.tx_latency_ms {
                ext_lat.push(l);
            }
            ext_safe &= o.safe;
        }
        table.row(vec![
            format!("{:.0} s", t_ms / 1000.0),
            "extended (δ = d)".into(),
            format!("{D_MS:.0} ms"),
            format!("{:.0} ms", 3.0 * D_MS),
            eta.to_string(),
            f3(mean(&ext_tp).unwrap_or(0.0)),
            opt(mean(&ext_lat).map(|l| format!("{l:.0}"))),
            ext_safe.to_string(),
        ]);

        // Vanilla: δ inflated to T; the disturbance fits inside a round.
        let mut van_tp = Vec::new();
        let mut van_lat = Vec::new();
        let mut van_safe = true;
        for &seed in &seed_list {
            let o = run(t_ms, 0, t_ms, seed);
            van_tp.push(o.decisions_per_sec);
            if let Some(l) = o.tx_latency_ms {
                van_lat.push(l);
            }
            van_safe &= o.safe;
        }
        table.row(vec![
            format!("{:.0} s", t_ms / 1000.0),
            "vanilla (δ = T)".into(),
            format!("{:.0} ms", t_ms),
            format!("{:.0} ms", 3.0 * t_ms),
            "0".into(),
            f3(mean(&van_tp).unwrap_or(0.0)),
            opt(mean(&van_lat).map(|l| format!("{l:.0}"))),
            van_safe.to_string(),
        ]);
    }
    emit(
        "exp_delta_tradeoff",
        "small δ + expiration vs conservative δ = π (3 seeds, d = 100 ms)",
        &table,
    );
    println!(
        "\nExpected: both configurations stay safe, but the extended protocol's\n\
         throughput and latency are ≈ T/d times better — the paper's motivation\n\
         for not setting δ = π. The gap widens with the disturbance duration."
    );
}
