//! **L1 — MMR latency**: decision latency and the role of honest
//! proposers.
//!
//! Section 3.1 cites MMR's "expected termination in 6 rounds": a view
//! decides when its proposer's block is adopted, which happens whenever
//! the highest VRF belongs to a proposer whose proposal every process
//! sees. Against a [`WithholdingLeader`] (Byzantine proposers reveal their
//! proposal to only half the processes), a view stalls exactly when a
//! Byzantine proposer wins the election — probability `f/n` — so decision
//! latency grows geometrically with the Byzantine fraction.
//!
//! Reports, per Byzantine fraction: the per-view decision probability,
//! the mean/percentile gaps between consecutive new-height decisions, and
//! the mean transaction inclusion latency.
//!
//! Run with `cargo run --release -p st-bench --bin exp_latency`.

use st_analysis::{mean, percentile, Table};
use st_bench::{emit, f3, opt, seeds};
use st_sim::adversary::WithholdingLeader;
use st_sim::{Schedule, SimBuilder, SimConfig};
use st_types::Params;

const N: usize = 16;
const HORIZON: u64 = 120;

fn main() {
    let seed_list = seeds(4);
    let mut table = Table::new(vec![
        "f/n",
        "P(view decides)",
        "mean decision gap (rounds)",
        "p90 gap",
        "mean tx latency (rounds)",
        "violations",
    ]);
    for &f in &[0usize, 2, 4, 5] {
        let mut gaps: Vec<f64> = Vec::new();
        let mut decide_probs = Vec::new();
        let mut tx_lat = Vec::new();
        let mut violations = 0usize;
        for &seed in &seed_list {
            let schedule = Schedule::full(N, HORIZON).with_static_byzantine(f);
            let params = Params::builder(N).expiration(2).build().expect("valid");
            let report =
                SimBuilder::from_config(SimConfig::new(params, seed).horizon(HORIZON).txs_every(6))
                    .schedule(schedule)
                    .adversary(WithholdingLeader::new())
                    .build()
                    .expect("valid simulation")
                    .run();
            violations += report.safety_violations.len();
            // A view "advances" when the decided chain grows by a block;
            // a stalled view re-decides the old log. Chain growth per view
            // is therefore the per-view success probability.
            let views = HORIZON as f64 / 2.0;
            let height = report.final_decided_height as f64;
            decide_probs.push(height / views);
            if height > 1.0 {
                gaps.push(HORIZON as f64 / height);
            }
            if let Some(l) = report.mean_tx_latency() {
                tx_lat.push(l);
            }
        }
        table.row(vec![
            f3(f as f64 / N as f64),
            f3(mean(&decide_probs).unwrap_or(0.0)),
            opt(mean(&gaps).map(|g| format!("{g:.2}"))),
            opt(percentile(&gaps, 90.0).map(|g| format!("{g:.2}"))),
            opt(mean(&tx_lat).map(|l| format!("{l:.1}"))),
            violations.to_string(),
        ]);
    }
    emit(
        "exp_latency",
        "decision latency vs Byzantine proposer fraction (withholding leader, 4 seeds)",
        &table,
    );
    println!(
        "\nExpected: with f = 0 every view decides and a transaction needs ≈ 4 rounds\n\
         (submitted → proposed next view → decided the view after — the constant\n\
         expected latency MMR claims). A withholding leader who wins the VRF splits\n\
         that view's vote, delaying its block's decision by one view; the block is\n\
         still adopted as an ancestor via C_v, so amortized chain growth stays near\n\
         1 block/view while the mean transaction latency grows with f/n. Safety\n\
         violations stay zero throughout — withholding is a liveness attack only."
    );
}
