//! **stsan** — the hasher-perturbation sanitizer.
//!
//! stlint's N1/iterorder rule is a static approximation: it flags
//! unordered-map iteration whose order *syntactically* reaches an
//! ordered sink, but no token-level analysis can prove the absence of
//! every leak. `stsan` is the dynamic complement. It replays the
//! simulator's guard grid — the same (adversary × schedule × η ×
//! timeline × seed) cells the equivalence suites in
//! `crates/sim/tests/determinism_equivalence.rs` drive — once with the
//! default FxHash seed and again under several perturbed seeds
//! ([`st_types::fasthash::set_hasher_seed`]). A perturbed seed scrambles
//! every `FastMap`/`FastSet` bucket order in the process; if any
//! iteration order leaks into protocol behaviour, some `SimReport`
//! serialises differently and the run exits non-zero. Byte-identical
//! reports across all seeds are the property every determinism suite in
//! the workspace silently assumes — this binary is where it is
//! falsified or certified.
//!
//! The verdict is written to `stsan.json` (uploaded by CI next to
//! `stlint.json`).
//!
//! Run with `cargo run --release -p st-bench --bin stsan [--smoke]`.
//! Full mode replays the whole grid under four perturbed seeds;
//! `--smoke` uses two perturbed seeds for the CI gate.

use serde::Serialize;
use st_sim::adversary::{
    Adversary, BlackoutAdversary, EquivocatingVoter, PartitionAttacker, ReorgAttacker,
    SilentAdversary,
};
use st_sim::{ChurnOptions, Schedule, SimBuilder, SimConfig, Timeline};
use st_types::fasthash::set_hasher_seed;
use st_types::{Params, ProcessId, Round};
use std::process::ExitCode;

/// Perturbed FxHash seeds for full mode: arbitrary well-mixed odd
/// constants, plus one adversarially low-entropy seed (a single bit) to
/// catch leaks that only surface under near-degenerate bucket layouts.
const PERTURBED_SEEDS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0x5851_f42d_4c95_7f2d,
    0xdead_beef_cafe_f00d,
    0x0000_0000_0000_0001,
];

fn params(n: usize, eta: u64) -> Params {
    Params::builder(n)
        .expiration(eta)
        .build()
        .expect("guard-grid params are valid")
}

fn adversary(name: &str) -> Box<dyn Adversary> {
    match name {
        "silent" => Box::new(SilentAdversary),
        "blackout" => Box::new(BlackoutAdversary),
        "partition" => Box::new(PartitionAttacker::new()),
        "reorg" => Box::new(ReorgAttacker::new()),
        "equivocator" => Box::new(EquivocatingVoter::new()),
        other => unreachable!("unknown adversary {other}"),
    }
}

fn schedule(name: &str, n: usize, horizon: u64) -> Schedule {
    match name {
        "full" => Schedule::full(n, horizon),
        "mass-sleep" => Schedule::mass_sleep(n, horizon, 0.5, 6, 12),
        "churn" => Schedule::random_churn(n, horizon, 0.05, 42, &ChurnOptions::default()),
        "static-byz" => Schedule::full(n, horizon).with_static_byzantine(3),
        "byz-window" => Schedule::full(n, horizon).with_corrupted_window(
            ProcessId::new(1),
            Round::new(6),
            Round::new(14),
        ),
        other => unreachable!("unknown schedule {other}"),
    }
}

/// The guard grid — kept in lockstep with `guard_grid()` in
/// `crates/sim/tests/determinism_equivalence.rs`.
fn guard_grid() -> Vec<(&'static str, &'static str, u64, Option<Timeline>, u64)> {
    let multi = Timeline::synchronous()
        .asynchronous(Round::new(10), 3)
        .asynchronous(Round::new(20), 3);
    let bounded = Timeline::synchronous().bounded_delay(Round::new(8), 8, 2);
    vec![
        ("silent", "full", 2, None, 51),
        ("silent", "churn", 2, None, 52),
        ("partition", "full", 0, Some(multi.clone()), 53),
        ("partition", "full", 6, Some(multi), 54),
        ("blackout", "mass-sleep", 4, Some(bounded.clone()), 55),
        ("reorg", "static-byz", 4, Some(bounded), 56),
        ("equivocator", "byz-window", 2, None, 57),
    ]
}

/// Workload cells riding the same sanitizer: the open-loop st-load
/// pipeline (generators → mempool → latency join) replayed under
/// perturbed hasher seeds. A tight mempool (capacity 16, batch 2) keeps
/// the admission/drop/hold-over paths hot so any map-order leak in the
/// workload observers or the tx-ledger join shows up in the serialised
/// `WorkloadSummary`/`TxRecord`s. Grid: (workload, adversary, schedule,
/// sim seed).
fn workload_grid() -> Vec<(&'static str, &'static str, &'static str, u64)> {
    vec![
        ("steady", "silent", "churn", 61),
        ("flash-crowd", "blackout", "mass-sleep", 62),
        ("diurnal", "silent", "full", 63),
        ("steady", "equivocator", "byz-window", 64),
    ]
}

fn workload_spec(kind: &str) -> st_sim::WorkloadSpec {
    let spec = match kind {
        "steady" => st_sim::WorkloadSpec::new(st_sim::ConstantRate::per_round(3).clients(3)),
        "flash-crowd" => st_sim::WorkloadSpec::new(
            st_sim::FlashCrowd::new(1)
                .clients(3)
                .burst(8, 6, 10)
                .jitter(7),
        ),
        "diurnal" => st_sim::WorkloadSpec::new(st_sim::Diurnal::new(4, 0.25, 10).clients(3)),
        other => unreachable!("unknown workload {other}"),
    };
    spec.capacity(16).batch(2)
}

/// Runs one grid cell from scratch and serialises its report. The
/// simulation (and every FastMap/FastSet inside it) is constructed
/// *after* the process-wide hasher seed is set, so the whole run sees
/// the perturbed bucket order. `workload` is `"legacy"` for the
/// historic `txs_every(4)` cells or a [`workload_spec`] kind.
fn run_cell(
    workload: &str,
    adv: &str,
    sched: &str,
    eta: u64,
    t: &Option<Timeline>,
    seed: u64,
) -> String {
    let mut config = SimConfig::new(params(10, eta), seed).horizon(28);
    if workload == "legacy" {
        config = config.txs_every(4);
    }
    if let Some(t) = t {
        config = config.timeline(t.clone());
    }
    let mut builder = SimBuilder::from_config(config);
    if workload != "legacy" {
        builder = builder.workload_spec(workload_spec(workload));
    }
    let report = builder
        .schedule(schedule(sched, 10, 28))
        .adversary_boxed(adversary(adv))
        .run();
    serde_json::to_string(&report).expect("SimReport serialises")
}

/// FNV-1a digest of a report's JSON — `stsan.json` records digests, not
/// multi-kilobyte report bodies.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, Debug, Serialize)]
struct CellVerdict {
    /// `"legacy"` (txs_every) or the st-load generator driving the cell.
    workload: String,
    adversary: String,
    schedule: String,
    eta: u64,
    timeline: bool,
    sim_seed: u64,
    /// FNV-1a of the baseline (seed 0) report JSON.
    baseline_digest: u64,
    /// Digest under each perturbed hasher seed, in [`SanReport`] order.
    perturbed_digests: Vec<u64>,
    identical: bool,
}

#[derive(Clone, Debug, Serialize)]
struct SanReport {
    tool: &'static str,
    version: u32,
    smoke: bool,
    hasher_seeds: Vec<u64>,
    cells: Vec<CellVerdict>,
    divergent_cells: usize,
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: Vec<u64> = if smoke {
        PERTURBED_SEEDS[..2].to_vec()
    } else {
        PERTURBED_SEEDS.to_vec()
    };
    // The legacy guard grid plus the workload cells, in one flat list of
    // (workload, adversary, schedule, eta, timeline, seed) cells.
    type FlatCell = (
        &'static str,
        &'static str,
        &'static str,
        u64,
        Option<Timeline>,
        u64,
    );
    let grid: Vec<FlatCell> = guard_grid()
        .into_iter()
        .map(|(adv, sched, eta, t, seed)| ("legacy", adv, sched, eta, t, seed))
        .chain(
            workload_grid()
                .into_iter()
                .map(|(w, adv, sched, seed)| (w, adv, sched, 2, None, seed)),
        )
        .collect();

    println!(
        "stsan: replaying {} guard-grid cells under {} perturbed FxHash seed{}{}",
        grid.len(),
        seeds.len(),
        if seeds.len() == 1 { "" } else { "s" },
        if smoke { " (smoke)" } else { "" },
    );

    // Baseline pass: the historic seed-0 hasher every committed number
    // was produced under.
    set_hasher_seed(0);
    let baselines: Vec<String> = grid
        .iter()
        .map(|(w, adv, sched, eta, t, seed)| run_cell(w, adv, sched, *eta, t, *seed))
        .collect();

    // Perturbed passes: scramble bucket order process-wide, re-run the
    // grid from scratch, compare byte-for-byte.
    let mut cells: Vec<CellVerdict> = grid
        .iter()
        .zip(&baselines)
        .map(|((w, adv, sched, eta, t, seed), base)| CellVerdict {
            workload: w.to_string(),
            adversary: adv.to_string(),
            schedule: sched.to_string(),
            eta: *eta,
            timeline: t.is_some(),
            sim_seed: *seed,
            baseline_digest: fnv1a(base),
            perturbed_digests: Vec::new(),
            identical: true,
        })
        .collect();
    for &hseed in &seeds {
        set_hasher_seed(hseed);
        for (i, (w, adv, sched, eta, t, seed)) in grid.iter().enumerate() {
            let json = run_cell(w, adv, sched, *eta, t, *seed);
            cells[i].perturbed_digests.push(fnv1a(&json));
            if json != baselines[i] {
                cells[i].identical = false;
                println!(
                    "stsan: DIVERGENCE workload={w} adversary={adv} schedule={sched} eta={eta} \
                     sim_seed={seed} hasher_seed={hseed:#x}: report is not byte-identical \
                     to the seed-0 baseline — an unordered-map iteration order is leaking \
                     into protocol behaviour",
                );
            }
        }
    }
    set_hasher_seed(0);

    let divergent = cells.iter().filter(|c| !c.identical).count();
    let report = SanReport {
        tool: "stsan",
        version: 2,
        smoke,
        hasher_seeds: seeds,
        cells,
        divergent_cells: divergent,
    };
    match serde_json::to_string_pretty(&report.to_value())
        .map_err(|e| std::io::Error::other(e.to_string()))
        .and_then(|json| std::fs::write("stsan.json", json + "\n"))
    {
        Ok(()) => println!("[written stsan.json]"),
        Err(e) => println!("[could not write stsan.json: {e}]"),
    }

    if divergent == 0 {
        println!(
            "stsan: OK — all {} cells byte-identical under every perturbed hasher seed",
            report.cells.len(),
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "stsan: FAIL — {divergent} of {} cells diverged under hasher perturbation",
            report.cells.len(),
        );
        ExitCode::FAILURE
    }
}
