//! **B1 — dynamic availability**: the introduction's motivating incident.
//!
//! "In May 2023, roughly 60% of Ethereum's consensus clients went offline
//! for about 25 minutes due to a software bug; Ethereum's dynamically
//! available chain nevertheless continued growing normally."
//!
//! Replays the incident against (a) the sleepy protocol (vanilla and
//! extended) and (b) the classic static-quorum BFT baseline, plus a
//! harsher 80% drop and the paper's "even 99%" claim (n = 100, one awake
//! process — progress requires > 2/3 of *perceived* participation, so a
//! lone awake process with expired peers still advances).
//!
//! Run with `cargo run --release -p st-bench --bin exp_dynamic_availability`.

use st_analysis::Table;
use st_bench::{emit, seeds};
use st_sim::adversary::SilentAdversary;
use st_sim::baseline::StaticQuorumBft;
use st_sim::{Schedule, SimBuilder, SimConfig};
use st_types::Params;

fn sleepy_decisions_during(
    schedule: &Schedule,
    eta: u64,
    from: u64,
    to: u64,
    seed: u64,
    n: usize,
) -> (usize, usize, bool) {
    let params = Params::builder(n).expiration(eta).build().expect("valid");
    let report = SimBuilder::from_config(SimConfig::new(params, seed).horizon(schedule.horizon()))
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    // Count decided views (height growth) inside vs outside the incident
    // via tx-free chain-height proxy: use deciding rounds inside window.
    // SimReport does not expose per-round decisions, so re-run is avoided
    // by using total counts; incident-window activity is approximated by
    // the healing/deciding counters. For the table we report: total
    // deciding rounds, final height, safety.
    let _ = (from, to);
    (
        report.deciding_rounds,
        report.final_decided_height as usize,
        report.is_safe(),
    )
}

fn main() {
    let seed = seeds(1)[0];
    let mut table = Table::new(vec![
        "scenario",
        "protocol",
        "deciding rounds",
        "final chain height",
        "safe/available",
    ]);

    // ---- May-2023 incident: 60% offline for a long stretch ----
    let n = 20;
    let horizon = 80u64;
    let schedule = Schedule::mass_sleep(n, horizon, 0.6, 20, 60);
    for &(eta, label) in &[(0u64, "sleepy vanilla (η=0)"), (4, "sleepy extended (η=4)")] {
        let (deciding, height, safe) = sleepy_decisions_during(&schedule, eta, 20, 60, seed, n);
        table.row(vec![
            "60% offline, rounds 20–60".into(),
            label.to_string(),
            deciding.to_string(),
            height.to_string(),
            safe.to_string(),
        ]);
    }
    let baseline = StaticQuorumBft::new(n).run(&schedule);
    table.row(vec![
        "60% offline, rounds 20–60".into(),
        "static-quorum BFT".into(),
        baseline.decisions().to_string(),
        baseline.decisions().to_string(), // one block per decided view
        format!("stalls {} consecutive views", baseline.longest_stall()),
    ]);

    // ---- harsher: 80% offline ----
    let schedule80 = Schedule::mass_sleep(n, horizon, 0.8, 20, 60);
    let (deciding, height, safe) = sleepy_decisions_during(&schedule80, 0, 20, 60, seed, n);
    table.row(vec![
        "80% offline, rounds 20–60".into(),
        "sleepy vanilla (η=0)".into(),
        deciding.to_string(),
        height.to_string(),
        safe.to_string(),
    ]);
    let baseline80 = StaticQuorumBft::new(n).run(&schedule80);
    table.row(vec![
        "80% offline, rounds 20–60".into(),
        "static-quorum BFT".into(),
        baseline80.decisions().to_string(),
        baseline80.decisions().to_string(),
        format!("stalls {} consecutive views", baseline80.longest_stall()),
    ]);

    // ---- the "even 99%" claim: n = 100, 99 asleep ----
    let n99 = 100;
    let schedule99 = Schedule::mass_sleep(n99, 60, 0.99, 16, 48);
    let (deciding, height, safe) = sleepy_decisions_during(&schedule99, 0, 16, 48, seed, n99);
    table.row(vec![
        "99% offline, rounds 16–48".into(),
        "sleepy vanilla (η=0)".into(),
        deciding.to_string(),
        height.to_string(),
        safe.to_string(),
    ]);
    let baseline99 = StaticQuorumBft::new(n99).run(&schedule99);
    table.row(vec![
        "99% offline, rounds 16–48".into(),
        "static-quorum BFT".into(),
        baseline99.decisions().to_string(),
        baseline99.decisions().to_string(),
        format!("stalls {} consecutive views", baseline99.longest_stall()),
    ]);

    emit(
        "exp_dynamic_availability",
        "the May-2023 incident and the 99% claim: sleepy TOB vs static-quorum BFT",
        &table,
    );
    println!(
        "\nExpected: the sleepy protocol keeps deciding through every incident\n\
         (vanilla η = 0 tolerates fully dynamic participation; η > 0 trades some\n\
         of that tolerance for asynchrony resilience — Section 2.3 discusses the\n\
         trade-off). The static-quorum baseline stalls for the whole incident."
    );
}
