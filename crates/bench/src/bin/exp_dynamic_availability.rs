//! **B1 — dynamic availability**: the introduction's motivating incident.
//!
//! "In May 2023, roughly 60% of Ethereum's consensus clients went offline
//! for about 25 minutes due to a software bug; Ethereum's dynamically
//! available chain nevertheless continued growing normally."
//!
//! Replays the incident against (a) the sleepy protocol (vanilla and
//! extended) and (b) the classic static-quorum BFT baseline, plus a
//! harsher 80% drop and the paper's "even 99%" claim (n = 100, one awake
//! process — progress requires > 2/3 of *perceived* participation, so a
//! lone awake process with expired peers still advances).
//!
//! Since the `Protocol` abstraction landed, the baseline is a **real
//! simulation**: `QuorumProcess` runs under the same network, schedule
//! and round loop as the sleepy protocol (it proposes, votes and counts
//! `> 2n/3`-of-all-`n` quorums message by message), so B1 compares two
//! executions rather than an execution against a formula. The closed-form
//! schedule walk (`baseline::StaticQuorumBft`) is kept as a cross-check:
//! every row asserts the simulated baseline decided exactly the views the
//! analytical walk predicts (the `crates/sim/tests/quorum_protocol.rs`
//! regression suite pins the same property).
//!
//! Run with `cargo run --release -p st-bench --bin exp_dynamic_availability`.

use st_analysis::Table;
use st_bench::{emit, seeds};
use st_sim::adversary::SilentAdversary;
use st_sim::baseline::StaticQuorumBft;
use st_sim::{DecisionTap, QuorumProcess, Schedule, SimBuilder, SimConfig};
use st_types::Params;
use std::collections::BTreeSet;

fn sleepy_run(schedule: &Schedule, eta: u64, seed: u64, n: usize) -> (usize, usize, bool) {
    let params = Params::builder(n).expiration(eta).build().expect("valid");
    let report = SimBuilder::from_config(SimConfig::new(params, seed).horizon(schedule.horizon()))
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    (
        report.deciding_rounds,
        report.final_decided_height as usize,
        report.is_safe(),
    )
}

/// Runs the message-passing quorum baseline over `schedule` and
/// cross-checks the decided/stalled views against the analytical walk.
/// Returns (decided views, final chain height, longest stall in views).
fn quorum_run(schedule: &Schedule, seed: u64, n: usize) -> (usize, usize, usize) {
    let params = Params::builder(n).build().expect("valid");
    let (tap, log) = DecisionTap::new(n);
    let mut sim = SimBuilder::<QuorumProcess>::for_protocol(params, seed)
        .horizon(schedule.horizon())
        .schedule(schedule.clone())
        .adversary(SilentAdversary)
        .observer(tap)
        .build()
        .expect("valid simulation");
    while sim.step().is_some() {}
    let decided: BTreeSet<u64> = log
        .borrow()
        .iter()
        .flat_map(|events| events.iter().map(|d| d.view.as_u64()))
        .collect();
    let report = sim.finish();
    assert!(report.is_safe(), "quorum baseline lost agreement");

    // Cross-check: the simulation must decide exactly the views the
    // closed-form walk predicts (up to the one-round decision lag at the
    // horizon: view v decides at round 2v + 1).
    let analytical = StaticQuorumBft::new(n).run(schedule);
    for v in &analytical.decided_views {
        assert!(
            decided.contains(&v.as_u64()) || 2 * v.as_u64() + 1 > schedule.horizon(),
            "simulated baseline missed analytically decided view {v}"
        );
    }
    for v in &analytical.stalled_views {
        assert!(
            !decided.contains(&v.as_u64()),
            "simulated baseline decided analytically stalled view {v}"
        );
    }
    (
        decided.len(),
        report.final_decided_height as usize,
        analytical.longest_stall(),
    )
}

fn main() {
    let seed = seeds(1)[0];
    let mut table = Table::new(vec![
        "scenario",
        "protocol",
        "deciding rounds/views",
        "final chain height",
        "safe/available",
    ]);

    let quorum_row = |table: &mut Table, label: &str, schedule: &Schedule, n: usize| {
        let (decided, height, stall) = quorum_run(schedule, seed, n);
        table.row(vec![
            label.into(),
            "static-quorum BFT (simulated)".into(),
            decided.to_string(),
            height.to_string(),
            format!("stalls {stall} consecutive views (matches analytical walk)"),
        ]);
    };

    // ---- May-2023 incident: 60% offline for a long stretch ----
    let n = 20;
    let horizon = 80u64;
    let schedule = Schedule::mass_sleep(n, horizon, 0.6, 20, 60);
    for &(eta, label) in &[(0u64, "sleepy vanilla (η=0)"), (4, "sleepy extended (η=4)")] {
        let (deciding, height, safe) = sleepy_run(&schedule, eta, seed, n);
        table.row(vec![
            "60% offline, rounds 20–60".into(),
            label.to_string(),
            deciding.to_string(),
            height.to_string(),
            safe.to_string(),
        ]);
    }
    quorum_row(&mut table, "60% offline, rounds 20–60", &schedule, n);

    // ---- harsher: 80% offline ----
    let schedule80 = Schedule::mass_sleep(n, horizon, 0.8, 20, 60);
    let (deciding, height, safe) = sleepy_run(&schedule80, 0, seed, n);
    table.row(vec![
        "80% offline, rounds 20–60".into(),
        "sleepy vanilla (η=0)".into(),
        deciding.to_string(),
        height.to_string(),
        safe.to_string(),
    ]);
    quorum_row(&mut table, "80% offline, rounds 20–60", &schedule80, n);

    // ---- the "even 99%" claim: n = 100, 99 asleep ----
    let n99 = 100;
    let schedule99 = Schedule::mass_sleep(n99, 60, 0.99, 16, 48);
    let (deciding, height, safe) = sleepy_run(&schedule99, 0, seed, n99);
    table.row(vec![
        "99% offline, rounds 16–48".into(),
        "sleepy vanilla (η=0)".into(),
        deciding.to_string(),
        height.to_string(),
        safe.to_string(),
    ]);
    quorum_row(&mut table, "99% offline, rounds 16–48", &schedule99, n99);

    emit(
        "exp_dynamic_availability",
        "the May-2023 incident and the 99% claim: sleepy TOB vs in-simulator static-quorum BFT",
        &table,
    );
    println!(
        "\nExpected: the sleepy protocol keeps deciding through every incident\n\
         (vanilla η = 0 tolerates fully dynamic participation; η > 0 trades some\n\
         of that tolerance for asynchrony resilience — Section 2.3 discusses the\n\
         trade-off). The static-quorum baseline — now an actual message-passing\n\
         participant under the same simulator, not a closed-form walk — stalls\n\
         for the whole incident; its decided/stalled views match the analytical\n\
         cross-check exactly."
    );
}
