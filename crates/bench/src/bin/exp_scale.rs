//! **P2 — scale & fast-path benchmark**: how fast does the simulator run
//! as the system grows, and what did the shared-envelope fast path buy?
//!
//! Sweeps `n ∈ {64, 256, 1024} × horizon ∈ {100, 400}` plus the
//! `n = 4096, horizon = 100` flagship cell under full participation
//! (the message-densest case: every process multicasts every round) and
//! reports rounds/sec, messages/sec and the shared-tally cache hit rate
//! per cell (under full synchrony the once-per-round tally serves
//! `(n − 1)/n` of honest tallies from the cohort cache — that sharing,
//! plus the incremental fallback, is what makes per-round work scale
//! with messages rather than `n ×` messages and lands n = 4096). One
//! cell — `n = 256, horizon = 400` — additionally re-runs in **naive
//! delivery** mode (`SimConfig::naive_delivery`: per-receiver envelope
//! deep clone + per-receiver signature re-verification, the seed's
//! full-view propose dedup scan and `split_off` vote pruning, no pool
//! compaction — the faithful pre-refactor cost model) so the end-to-end
//! fast-path gain is measured *in the same run* rather than against a
//! stale number.
//!
//! Before anything is timed, a **consistency spot-check** re-runs one
//! cell with the shared tally disabled (every process recomputes its
//! own) and byte-compares the serialised reports; a mismatch exits
//! non-zero without touching `BENCH_sim.json`. The same check gates the
//! `--smoke` CI pass.
//!
//! A second measurement isolates the **delivery subsystem** the
//! refactor replaced — pool storage, fan-out and signature checking for
//! the same message volume as the comparison cell, with no protocol
//! processing on top. That is where the `O(n²·horizon)` clone+re-verify
//! wall actually lived, and where the ≥ 5× speedup is demonstrated.
//! End-to-end, the gain at these sizes is smaller (reported honestly
//! per cell): the simulation's *model* signatures verify in ~60 ns, so
//! per-receiver re-verification was a far smaller share of wall-clock
//! than it would be with real (µs-scale) signatures — the per-message
//! verification count (`verifies/msg`: 1 vs n) is the structural
//! invariant that transfers to deployments.
//!
//! The signature-verification counter ([`st_crypto::verification_count`])
//! demonstrates the verify-once property directly: the fast path performs
//! ≈ 1 verification per unique envelope (the `verifies/msg` column),
//! while naive delivery performs ≈ `n` — one per receiver.
//!
//! Results are printed as a table, written as CSV next to the other
//! experiments, and merged into `BENCH_sim.json` under the `"exp_scale"`
//! key, preserving the other experiments' sections. Smoke runs write to
//! the separate `"exp_scale_smoke"` section, so a `--smoke` pass can
//! never overwrite the committed full-grid numbers.
//!
//! Run with `cargo run --release -p st-bench --bin exp_scale [--smoke]`.
//! `--smoke` restricts the sweep to `n = 64, horizon = 100` (plus its
//! naive comparison) for CI.

use serde::Serialize;
use st_analysis::Table;
use st_bench::{bench_section, emit, f3, write_bench_section};
use st_sim::adversary::SilentAdversary;
use st_sim::{Schedule, SimBuilder, SimConfig, Sweep};
use st_types::Params;
use std::time::Instant;

/// One measured run.
#[derive(Clone, Debug, Serialize)]
struct Measurement {
    n: usize,
    horizon: u64,
    /// `"fast"` (shared envelopes) or `"naive"` (pre-refactor model).
    mode: String,
    seconds: f64,
    rounds_per_sec: f64,
    messages_per_sec: f64,
    messages: usize,
    /// Signature verifications performed during the run.
    sig_verifications: u64,
    /// Verifications per unique message — ≈ 1 for the fast path, ≈ n for
    /// naive per-receiver re-verification.
    verifies_per_message: f64,
    /// Fraction of honest tallies served from the shared once-per-round
    /// cache — `(n − 1)/n` under full synchronous participation, 0 in
    /// naive mode (the cohort pass is disabled there).
    tally_cache_hit_rate: f64,
    decisions: usize,
    safe: bool,
}

/// The isolated delivery-subsystem measurement: same message volume as
/// the comparison cell, delivery + signature checking only.
#[derive(Clone, Debug, Serialize)]
struct DeliveryBench {
    n: usize,
    rounds: u64,
    deliveries: usize,
    fast_seconds: f64,
    naive_seconds: f64,
    /// Wall-clock ratio naive/fast — the fast path's speedup on the
    /// subsystem the refactor replaced.
    speedup: f64,
    fast_verifications: u64,
    naive_verifications: u64,
}

#[derive(Clone, Debug, Serialize)]
struct BenchReport {
    experiment: &'static str,
    smoke: bool,
    runs: Vec<Measurement>,
    /// End-to-end wall-clock ratio naive/fast for the comparison cell.
    speedup_fast_over_naive_e2e: f64,
    comparison_cell: (usize, u64),
    delivery: DeliveryBench,
}

fn measure(n: usize, horizon: u64, naive: bool) -> Measurement {
    let params = Params::builder(n)
        .expiration(2)
        .build()
        .expect("valid params");
    let mut config = SimConfig::new(params, 0xBE7C).horizon(horizon).txs_every(8);
    if naive {
        config = config.naive_delivery();
    } else {
        // Grid cells report the shared-tally hit rate; the counters are
        // instrument-gated so equivalence-guarded runs stay pure.
        config = config.instrument();
    }
    let sim = SimBuilder::from_config(config)
        .schedule(Schedule::full(n, horizon))
        .adversary(SilentAdversary)
        .build()
        .expect("valid scale cell");
    st_crypto::reset_verification_count();
    let start = Instant::now();
    let report = sim.run();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let sig_verifications = st_crypto::verification_count();
    Measurement {
        n,
        horizon,
        mode: if naive { "naive" } else { "fast" }.to_string(),
        seconds,
        rounds_per_sec: (horizon + 1) as f64 / seconds,
        messages_per_sec: report.messages_sent as f64 / seconds,
        messages: report.messages_sent,
        sig_verifications,
        verifies_per_message: sig_verifications as f64 / report.messages_sent.max(1) as f64,
        tally_cache_hit_rate: report.timeline.tally_cache_hit_rate(),
        decisions: report.decisions_total,
        safe: report.is_safe(),
    }
}

/// The consistency spot-check: one uninstrumented cell run with the
/// shared once-per-round tally against the same cell with every process
/// recomputing its own. The reports must serialise byte-identically;
/// anything else means the cohort certificate admitted a process whose
/// tally inputs differed, and the whole benchmark is untrustworthy.
/// Exits the process with a non-zero status on mismatch.
fn assert_shared_tally_consistent(n: usize, horizon: u64) {
    let params = Params::builder(n)
        .expiration(2)
        .build()
        .expect("valid params");
    let config = SimConfig::new(params, 0xBE7C).horizon(horizon).txs_every(8);
    let shared = SimBuilder::from_config(config.clone())
        .schedule(Schedule::full(n, horizon))
        .adversary(SilentAdversary)
        .run();
    let unshared = SimBuilder::from_config(config.unshared_tally())
        .schedule(Schedule::full(n, horizon))
        .adversary(SilentAdversary)
        .run();
    let a = serde_json::to_string(&shared).expect("serialise shared report");
    let b = serde_json::to_string(&unshared).expect("serialise unshared report");
    if a != b {
        eprintln!(
            "FATAL: shared tally diverged from per-process recomputation at \
             n={n} horizon={horizon}; refusing to record benchmark numbers"
        );
        std::process::exit(2);
    }
    println!("[shared-tally consistency spot-check passed at n={n} horizon={horizon}]");
}

/// Times the delivery subsystem alone: `rounds` rounds of `2n` signed
/// multicasts each, fanned out to `n` receivers who check every
/// signature — via the shared fast path or the pre-refactor model
/// (deep clone + fresh verification, no compaction).
fn delivery_bench(n: usize, rounds: u64) -> DeliveryBench {
    use st_blocktree::Block;
    use st_messages::{KeyDirectory, Payload, Propose, Vote};
    use st_sim::{Network, Recipients};
    use st_types::{BlockId, ProcessId, Round, TxId, View};

    let dir = KeyDirectory::derive(n, 7);
    let keypairs: Vec<st_crypto::Keypair> = (0..n as u32)
        .map(|i| st_crypto::Keypair::derive(ProcessId::new(i), 7))
        .collect();
    // Pre-sign all traffic so only delivery + verification are timed. The
    // mix mirrors a real round: every process multicasts one vote and one
    // proposal (proposals carry a block, so their per-receiver deep clone
    // and re-serialisation are what the naive path actually paid).
    let batches: Vec<Vec<st_messages::Envelope>> = (1..=rounds)
        .map(|r| {
            let view = View::new(r);
            (0..n as u32)
                .flat_map(|i| {
                    let p = ProcessId::new(i);
                    let kp = &keypairs[p.index()];
                    let vote = Vote::new(p, Round::new(r), BlockId::new(u64::from(i)));
                    // A modestly loaded block (16 txs): the production
                    // workload the ROADMAP targets ships full blocks, and
                    // payload bytes are exactly what the naive path's
                    // per-receiver deep clone and re-serialisation paid
                    // for.
                    let payload: Vec<TxId> = (0..16)
                        .map(|t| TxId::new(r * 1024 + u64::from(i) * 16 + t))
                        .collect();
                    let block = Block::build(BlockId::GENESIS, view, p, payload);
                    let (vrf_value, vrf_proof) = kp.vrf_eval(view.as_u64());
                    let prop = Propose::new(p, Round::new(r), view, block, vrf_value, vrf_proof);
                    [
                        st_messages::Envelope::sign(kp, Payload::Vote(vote)),
                        st_messages::Envelope::sign(kp, Payload::Propose(prop)),
                    ]
                })
                .collect()
        })
        .collect();
    let mut deliveries = 0usize;

    let run = |naive: bool, deliveries: &mut usize| -> (f64, u64) {
        let mut net = Network::new(n);
        st_crypto::reset_verification_count();
        let start = Instant::now();
        let mut accepted = 0usize;
        for (ri, batch) in batches.iter().enumerate() {
            let round = Round::new(ri as u64 + 1);
            for env in batch {
                net.send(round, env.payload().sender(), Recipients::All, env.clone());
            }
            for p in 0..n as u32 {
                net.deliver_sync_with(ProcessId::new(p), round, |env| {
                    *deliveries += 1;
                    if naive {
                        let owned = env.envelope().clone();
                        accepted += owned.verify(&dir) as usize;
                    } else {
                        accepted += env.verify_cached(&dir) as usize;
                    }
                });
            }
            if !naive {
                net.compact();
            }
        }
        assert_eq!(accepted, rounds as usize * 2 * n * n);
        (
            start.elapsed().as_secs_f64().max(1e-9),
            st_crypto::verification_count(),
        )
    };

    let (fast_seconds, fast_verifications) = run(false, &mut deliveries);
    let total_deliveries = deliveries;
    deliveries = 0;
    let (naive_seconds, naive_verifications) = run(true, &mut deliveries);
    DeliveryBench {
        n,
        rounds,
        deliveries: total_deliveries,
        fast_seconds,
        naive_seconds,
        speedup: naive_seconds / fast_seconds,
        fast_verifications,
        naive_verifications,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (grid, comparison): (Vec<(usize, u64)>, (usize, u64)) = if smoke {
        (vec![(64, 100)], (64, 100))
    } else {
        (
            vec![
                (64, 100),
                (64, 400),
                (256, 100),
                (256, 400),
                (1024, 100),
                (1024, 400),
                // The flagship cell the shared + incremental tally lands:
                // fast mode only (a naive run here would verify ~n× the
                // signatures and recompute every tally from scratch).
                (4096, 100),
            ],
            (256, 400),
        )
    };

    // Gate everything on the consistency spot-check (non-zero exit on
    // divergence, before any timing or JSON writing happens).
    assert_shared_tally_consistent(comparison.0, if smoke { comparison.1 } else { 100 });

    // The verification counter is process-global and every cell reports
    // wall-clock, so the sweep runs `sequential()`: each measurement's
    // counter window stays exclusive and timings don't contend. The grid
    // itself, per-cell execution and row order all come from the same
    // `Sweep` driver the library experiments use. Seeds are fixed inside
    // `measure` (the committed-grid semantics), so the derived per-cell
    // seed is ignored.
    let mut runs: Vec<Measurement> = Sweep::over(grid.clone())
        .sequential()
        .run(|&(n, horizon), _seed| measure(n, horizon, false));
    // Naive comparison, same process, same build, same seed.
    let naive = measure(comparison.0, comparison.1, true);
    let fast_cmp = runs
        .iter()
        .find(|m| (m.n, m.horizon) == comparison)
        .expect("comparison cell measured")
        .clone();
    let speedup = naive.seconds / fast_cmp.seconds;
    runs.push(naive.clone());
    let delivery = delivery_bench(comparison.0, if smoke { 100 } else { comparison.1 });

    let mut table = Table::new(vec![
        "n",
        "horizon",
        "mode",
        "seconds",
        "rounds/s",
        "msgs/s",
        "verifies/msg",
        "tally hit%",
        "decisions",
        "safe",
    ]);
    for m in &runs {
        table.row(vec![
            m.n.to_string(),
            m.horizon.to_string(),
            m.mode.clone(),
            f3(m.seconds),
            format!("{:.0}", m.rounds_per_sec),
            format!("{:.0}", m.messages_per_sec),
            f3(m.verifies_per_message),
            format!("{:.1}", m.tally_cache_hit_rate * 100.0),
            m.decisions.to_string(),
            m.safe.to_string(),
        ]);
    }
    emit(
        "exp_scale",
        "scale sweep + shared-envelope fast path",
        &table,
    );

    println!(
        "\nEnd-to-end, n={} horizon={}: {:.2}x faster than the naive\n\
         pre-refactor cost model ({}s fast vs {}s naive); {} verifies/msg\n\
         fast vs {} naive — each unique envelope is verified once instead\n\
         of once per receiver.",
        comparison.0,
        comparison.1,
        speedup,
        f3(fast_cmp.seconds),
        f3(naive.seconds),
        f3(fast_cmp.verifies_per_message),
        f3(naive.verifies_per_message),
    );
    println!(
        "\nDelivery subsystem (pool + fan-out + signature checks, {} deliveries\n\
         at n={}): {:.1}x faster ({}s vs {}s; {} vs {} signature\n\
         verifications). This is the O(n²·horizon) clone+re-verify wall the\n\
         shared-envelope fast path removed; end-to-end gains are smaller\n\
         because the simulation's model signatures are ~60ns (real\n\
         signatures are micro-seconds, where verify-once dominates).",
        delivery.deliveries,
        delivery.n,
        delivery.speedup,
        f3(delivery.fast_seconds),
        f3(delivery.naive_seconds),
        delivery.fast_verifications,
        delivery.naive_verifications,
    );

    let bench = BenchReport {
        experiment: "exp_scale",
        smoke,
        runs,
        speedup_fast_over_naive_e2e: speedup,
        comparison_cell: comparison,
        delivery,
    };
    match write_bench_section(&bench_section("exp_scale", smoke), &bench) {
        Ok(()) => println!("\n[merged exp_scale into BENCH_sim.json]"),
        Err(e) => println!("\n[could not write BENCH_sim.json: {e}]"),
    }
}
