//! **D1 — the dissemination assumption** (Section 2.1 + footnote 2).
//!
//! The round model assumes every multicast reaches everyone within one
//! network delay δ, and that messages keep disseminating after their
//! sender sleeps. This experiment runs the actual gossip substrate to
//! measure what those assumptions cost:
//!
//! * hops to full coverage vs `log_fanout(n)` (the factor a deployment
//!   must fold into its choice of δ: δ ≈ hops × per-hop delay);
//! * transmission duplication (gossip overhead vs a spanning tree);
//! * sender-sleep resilience: coverage when the origin sleeps right
//!   after its first push (footnote 2's retention property).
//!
//! Run with `cargo run --release -p st-bench --bin exp_gossip`.

use st_analysis::Table;
use st_bench::{emit, f3};
use st_gossip::{GossipEngine, Topology};
use st_types::ProcessId;

fn main() {
    let mut table = Table::new(vec![
        "n",
        "fanout",
        "diameter",
        "hops to 100%",
        "log_k(n)",
        "duplication x",
        "coverage w/ sleeping origin",
    ]);
    for &n in &[50usize, 200, 1000] {
        for &fanout in &[4usize, 8] {
            let topology = Topology::random_regular(n, fanout, 7).expect("valid topology");
            let diameter = topology.diameter().expect("connected");

            // Plain dissemination.
            let mut g = GossipEngine::new(topology.clone());
            let msg = g.inject(ProcessId::new(0), 1);
            let hops = g.run_to_quiescence();
            assert_eq!(g.coverage(msg), 1.0, "gossip failed to cover");
            // Duplication: transmissions per (n − 1) necessary deliveries.
            let duplication = g.transmissions() as f64 / (n as f64 - 1.0);

            // Sender-sleep resilience.
            let mut s = GossipEngine::new(topology);
            let msg2 = s.inject(ProcessId::new(0), 2);
            s.step();
            s.sleep(ProcessId::new(0));
            s.run_to_quiescence();
            let sleepy_coverage = s.coverage(msg2);

            table.row(vec![
                n.to_string(),
                fanout.to_string(),
                diameter.to_string(),
                hops.to_string(),
                f3((n as f64).ln() / (fanout as f64).ln()),
                f3(duplication),
                f3(sleepy_coverage),
            ]);
        }
    }
    emit(
        "exp_gossip",
        "the dissemination layer the round model abstracts (push gossip)",
        &table,
    );
    println!(
        "\nExpected: hops ≈ diameter ≈ log_fanout(n); duplication ≈ fanout (each\n\
         node hears each message from most of its peers); and coverage stays 100%\n\
         with a sleeping origin — footnote 2's retention property, the premise the\n\
         asynchrony-resilience machinery builds on. A deployment choosing δ must\n\
         budget hops × per-hop delay; with fanout 8 that's ≤ 4 hops at n = 1000."
    );
}
