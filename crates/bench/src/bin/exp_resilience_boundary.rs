//! **T2 — Theorem 2**: π-asynchrony resilience holds iff `π < η` (and the
//! bound is not an artifact).
//!
//! For each expiration period `η` and window length `π`, runs the
//! strongest attack in the arsenal for that regime:
//!
//! * `π ≤ η`: the immediate [`ReorgAttacker`] and [`PartitionAttacker`]
//!   (no blackout) — Theorem 2 predicts zero violations whenever `π < η`;
//! * `π > η`: blackout variants that first age the protective votes past
//!   expiry, then attack — violations should (re)appear once the window
//!   comfortably exceeds `η` plus the attack's play length.
//!
//! Run with `cargo run --release -p st-bench --bin exp_resilience_boundary`.

use st_analysis::Table;
use st_bench::{emit, seeds};
use st_sim::adversary::{Adversary, PartitionAttacker, ReorgAttacker};
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

const N: usize = 12;
const START: u64 = 12; // window start (even: aligns the partition play)

fn attack_for(pi: u64, eta: u64, reorg: bool) -> Box<dyn Adversary> {
    // When the window is long enough to wait out the expiration period,
    // spend the prefix as blackout; otherwise attack immediately.
    let blackout = if pi > eta { eta + 1 } else { 0 };
    if reorg {
        Box::new(ReorgAttacker::with_blackout(blackout))
    } else {
        Box::new(PartitionAttacker::with_blackout(blackout))
    }
}

fn violations(eta: u64, pi: u64, reorg: bool, seed: u64) -> (usize, usize) {
    let byz = if reorg { 3 } else { 0 };
    let schedule = Schedule::full(N, START + pi + 16).with_static_byzantine(byz);
    let params = Params::builder(N).expiration(eta).build().expect("valid");
    let report = SimBuilder::from_config(
        SimConfig::new(params, seed)
            .horizon(START + pi + 16)
            .async_window(AsyncWindow::new(Round::new(START), pi)),
    )
    .schedule(schedule)
    .adversary_boxed(attack_for(pi, eta, reorg))
    .run();
    (
        report.safety_violations.len(),
        report.resilience_violations.len(),
    )
}

fn main() {
    let seed_list = seeds(3);
    let mut table = Table::new(vec![
        "eta",
        "pi",
        "theorem 2 predicts",
        "reorg: agreement/D_ra",
        "partition: agreement/D_ra",
    ]);
    // The sweep is embarrassingly parallel: one cell per (η, π).
    let cells: Vec<(u64, u64)> = [2u64, 4, 6]
        .iter()
        .flat_map(|&eta| (1..=eta + 8).map(move |pi| (eta, pi)))
        .collect();
    let results = st_sim::Sweep::over(cells).run(|&(eta, pi), _seed| {
        let mut reorg_tot = (0usize, 0usize);
        let mut part_tot = (0usize, 0usize);
        for &seed in &seed_list {
            let r = violations(eta, pi, true, seed);
            reorg_tot.0 += r.0;
            reorg_tot.1 += r.1;
            let p = violations(eta, pi, false, seed);
            part_tot.0 += p.0;
            part_tot.1 += p.1;
        }
        (eta, pi, reorg_tot, part_tot)
    });
    for (eta, pi, reorg_tot, part_tot) in results {
        let prediction = if pi < eta { "safe" } else { "no guarantee" };
        table.row(vec![
            eta.to_string(),
            pi.to_string(),
            prediction.to_string(),
            format!("{}/{}", reorg_tot.0, reorg_tot.1),
            format!("{}/{}", part_tot.0, part_tot.1),
        ]);
    }
    emit(
        "exp_resilience_boundary",
        "Theorem 2 boundary: violations vs (η, π), 3 seeds each",
        &table,
    );
    println!(
        "\nExpected: all rows with π < η show 0/0 everywhere (Theorem 2).\n\
         Rows with π sufficiently beyond η (≈ η + attack play length) show violations —\n\
         the expiration bound is load-bearing, not an artifact of the proof."
    );
}
