//! **T3 — Theorem 3**: the extended protocol heals after any asynchronous
//! period within `k = 1` view of synchrony resuming.
//!
//! For `π ∈ {1, 2, 3}` (all `< η = 4`) and three in-window adversaries
//! (blackout, partition, reorg), measures the healing lag — rounds from
//! the end of the window to the first subsequent decision — and confirms
//! post-healing safety and liveness.
//!
//! Run with `cargo run --release -p st-bench --bin exp_healing`.

use st_analysis::{mean, Table};
use st_bench::{emit, f3, opt, seeds};
use st_sim::adversary::{Adversary, BlackoutAdversary, PartitionAttacker, ReorgAttacker};
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

const N: usize = 12;
const ETA: u64 = 4;
const START: u64 = 12;

fn adversary(kind: &str) -> (Box<dyn Adversary>, usize) {
    match kind {
        "blackout" => (Box::new(BlackoutAdversary), 0),
        "partition" => (Box::new(PartitionAttacker::new()), 0),
        "reorg" => (Box::new(ReorgAttacker::new()), 3),
        other => unreachable!("unknown adversary {other}"),
    }
}

fn main() {
    let seed_list = seeds(5);
    let mut table = Table::new(vec![
        "adversary",
        "pi",
        "mean healing lag (rounds)",
        "max lag",
        "violations",
        "post-window tx inclusion",
    ]);
    for &kind in &["blackout", "partition", "reorg"] {
        for &pi in &[1u64, 2, 3] {
            let mut lags = Vec::new();
            let mut violations = 0usize;
            let mut inclusion = Vec::new();
            for &seed in &seed_list {
                let (adv, byz) = adversary(kind);
                let horizon = START + pi + 20;
                let schedule = Schedule::full(N, horizon).with_static_byzantine(byz);
                let params = Params::builder(N)
                    .expiration(ETA)
                    .max_asynchrony(pi)
                    .build()
                    .expect("valid");
                let report = SimBuilder::from_config(
                    SimConfig::new(params, seed)
                        .horizon(horizon)
                        .async_window(AsyncWindow::new(Round::new(START), pi))
                        .txs_every(4),
                )
                .schedule(schedule)
                .adversary_boxed(adv)
                .run();
                violations += report.safety_violations.len() + report.resilience_violations.len();
                if let Some(lag) = report.max_recovery_rounds() {
                    lags.push(lag as f64);
                }
                // Liveness after healing: txs submitted after the window.
                let window_end = START + pi;
                let post: Vec<_> = report
                    .txs
                    .iter()
                    .filter(|t| t.submitted.as_u64() > window_end)
                    .collect();
                if !post.is_empty() {
                    inclusion.push(
                        post.iter()
                            .filter(|t| t.included_everywhere.is_some())
                            .count() as f64
                            / post.len() as f64,
                    );
                }
            }
            table.row(vec![
                kind.to_string(),
                pi.to_string(),
                opt(mean(&lags).map(|l| format!("{l:.1}"))),
                opt(lags
                    .iter()
                    .copied()
                    .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))),
                violations.to_string(),
                f3(mean(&inclusion).unwrap_or(0.0)),
            ]);
        }
    }
    emit(
        "exp_healing",
        "Theorem 3: healing after asynchrony (η = 4, 5 seeds)",
        &table,
    );
    println!(
        "\nExpected: zero violations (π < η), healing lag ≤ one view (≈ 2 rounds —\n\
         the first post-window decision needs one full GA exchange), and full\n\
         post-window transaction inclusion."
    );
}
