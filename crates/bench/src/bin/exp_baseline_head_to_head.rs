//! **B2 — head-to-head**: the sleepy protocol vs the fixed-quorum BFT
//! baseline, same seeds, same schedules, same environment.
//!
//! The paper's comparative pitch, executed as one [`Sweep::compare`]
//! grid: for every cell, both protocols run under **identical**
//! participation schedules, timelines, adversaries and per-cell seeds —
//! every difference between the two report columns is attributable to
//! the protocol alone. The cells are the three disruption families the
//! introduction argues about:
//!
//! * **participation dips** (40% / 60% / 80% mass sleep): the sleepy
//!   protocol keeps deciding *inside* the dip (after at most an η-round
//!   re-anchoring pause), while the static quorum `> 2n/3`-of-all-`n` is
//!   unreachable and the baseline decides **nothing** until the sleepers
//!   return;
//! * **an adversarial asynchronous window** (partition attacker, `η = 6 >
//!   π = 4`): the sleepy protocol sails through — zero agreement
//!   violations, decisions resume right after the window — while the
//!   baseline's windowed views stall permanently (each partition half is
//!   below quorum);
//! * **partial synchrony** (bounded delay `Δ = 2` until GST at mid-run,
//!   `η = 4 > Δ`): the sleepy protocol keeps deciding through the
//!   bounded period (late votes are covered by expiration); the baseline
//!   stalls until GST because a proposal delayed past its vote round
//!   kills the view.
//!
//! The binary is a CI acceptance gate: it exits non-zero if the quorum
//! baseline fails to stall through any disruption cell, or if the sleepy
//! protocol fails to stay safe, decide through the dips, and recover
//! after every window. Results merge into `BENCH_sim.json` under
//! `"exp_baseline_head_to_head"` (smoke runs write to the separate
//! `"exp_baseline_head_to_head_smoke"` section, so a `--smoke` pass can
//! never overwrite the committed full-grid numbers).
//!
//! Run with
//! `cargo run --release -p st-bench --bin exp_baseline_head_to_head [--smoke]`.
//! `--smoke` restricts the sweep to `n = 16` for CI.

use serde::Serialize;
use st_analysis::Table;
use st_bench::{bench_section, emit, opt, write_bench_section};
use st_sim::adversary::{Adversary, PartitionAttacker, SilentAdversary};
use st_sim::scenario::gst;
use st_sim::{QuorumProcess, Schedule, SimBuilder, SimConfig, SimReport, Sweep, Timeline};
use st_types::{Params, Round};

/// One protocol's outcome in one cell.
#[derive(Clone, Debug, Serialize)]
struct Side {
    protocol: String,
    /// Decision events observed in rounds `[span.0, span.1]` — the
    /// disruption (dip / async window / pre-GST period) itself.
    in_window_decisions: usize,
    decisions_total: usize,
    final_height: u64,
    safe: bool,
    recovered_every_window: bool,
    max_recovery_rounds: Option<u64>,
}

/// One cell of the duel grid.
#[derive(Clone, Debug, Serialize)]
struct DuelCell {
    scenario: String,
    n: usize,
    horizon: u64,
    /// First and last disrupted round.
    span: (u64, u64),
    sleepy_eta: u64,
    sleepy: Side,
    quorum: Side,
}

#[derive(Clone, Debug, Serialize)]
struct BenchReport {
    experiment: &'static str,
    smoke: bool,
    cells: Vec<DuelCell>,
}

/// The kind of disruption a cell runs — determines the gate applied to
/// its two sides.
#[derive(Clone, Copy)]
enum Kind {
    /// Mass-sleep participation dip: the sleepy protocol must keep
    /// deciding inside the span.
    Dip,
    /// Asynchronous / bounded-delay window: the sleepy protocol must
    /// recover after every window.
    Window,
}

struct Spec {
    name: &'static str,
    kind: Kind,
    /// Sleepy expiration (the quorum baseline has no η).
    eta: u64,
    /// First and last disrupted round.
    span: (u64, u64),
    schedule: fn(usize, u64) -> Schedule,
    timeline: fn(u64) -> Timeline,
    adversary_sleepy: fn() -> Box<dyn Adversary>,
    adversary_quorum: fn() -> Box<dyn Adversary<QuorumProcess>>,
}

fn specs() -> Vec<Spec> {
    fn dip(frac_permille: u64) -> fn(usize, u64) -> Schedule {
        match frac_permille {
            400 => |n, h| Schedule::mass_sleep(n, h, 0.4, 16, 40),
            600 => |n, h| Schedule::mass_sleep(n, h, 0.6, 16, 40),
            _ => |n, h| Schedule::mass_sleep(n, h, 0.8, 16, 40),
        }
    }
    vec![
        Spec {
            name: "dip-40",
            kind: Kind::Dip,
            eta: 4,
            span: (16, 40),
            schedule: dip(400),
            timeline: |_| Timeline::synchronous(),
            adversary_sleepy: || Box::new(SilentAdversary),
            adversary_quorum: || Box::new(SilentAdversary),
        },
        Spec {
            name: "dip-60",
            kind: Kind::Dip,
            eta: 4,
            span: (16, 40),
            schedule: dip(600),
            timeline: |_| Timeline::synchronous(),
            adversary_sleepy: || Box::new(SilentAdversary),
            adversary_quorum: || Box::new(SilentAdversary),
        },
        Spec {
            name: "dip-80",
            kind: Kind::Dip,
            eta: 4,
            span: (16, 40),
            schedule: dip(800),
            timeline: |_| Timeline::synchronous(),
            adversary_sleepy: || Box::new(SilentAdversary),
            adversary_quorum: || Box::new(SilentAdversary),
        },
        Spec {
            name: "async-partition",
            kind: Kind::Window,
            eta: 6,
            span: (20, 23),
            schedule: Schedule::full,
            timeline: |_| Timeline::synchronous().asynchronous(Round::new(20), 4),
            adversary_sleepy: || Box::new(PartitionAttacker::new()),
            adversary_quorum: || Box::new(PartitionAttacker::new()),
        },
        Spec {
            name: "gst-delta2",
            kind: Kind::Window,
            eta: 4,
            span: (1, 30),
            schedule: Schedule::full,
            timeline: |h| gst(2, Round::new(h / 2 + 1)),
            adversary_sleepy: || Box::new(SilentAdversary),
            adversary_quorum: || Box::new(SilentAdversary),
        },
    ]
}

/// Decision events whose observation round lies inside the span.
fn decisions_in_span(report: &SimReport, span: (u64, u64)) -> usize {
    report
        .timeline
        .samples()
        .iter()
        .filter(|s| (span.0..=span.1).contains(&s.round))
        .map(|s| s.decisions)
        .sum()
}

fn side(report: &SimReport, protocol: &str, span: (u64, u64)) -> Side {
    Side {
        protocol: protocol.to_string(),
        in_window_decisions: decisions_in_span(report, span),
        decisions_total: report.decisions_total,
        final_height: report.final_decided_height,
        safe: report.is_safe(),
        recovered_every_window: report.recovered_after_every_window(),
        max_recovery_rounds: report.max_recovery_rounds(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if smoke { vec![16] } else { vec![16, 64] };
    let horizon = 60u64;

    let all_specs = specs();
    let spec_idx: Vec<usize> = (0..all_specs.len()).collect();
    let grid = Sweep::grid(sizes, spec_idx).seed(0xB1B1);
    let duel = grid.compare(
        |&(n, si), seed| {
            let spec = &all_specs[si];
            let params = Params::builder(n)
                .expiration(spec.eta)
                .build()
                .expect("valid params");
            SimBuilder::from_config(
                SimConfig::new(params, seed)
                    .horizon(horizon)
                    .txs_every(8)
                    .timeline((spec.timeline)(horizon)),
            )
            .schedule((spec.schedule)(n, horizon))
            .adversary_boxed((spec.adversary_sleepy)())
            .build()
            .expect("valid sleepy cell")
        },
        |&(n, si), seed| {
            let spec = &all_specs[si];
            let params = Params::builder(n).build().expect("valid params");
            SimBuilder::<QuorumProcess>::for_protocol_config(
                SimConfig::new(params, seed)
                    .horizon(horizon)
                    .txs_every(8)
                    .timeline((spec.timeline)(horizon)),
            )
            .schedule((spec.schedule)(n, horizon))
            .adversary_boxed((spec.adversary_quorum)())
            .build()
            .expect("valid quorum cell")
        },
    );

    // Cell outcomes plus each cell's gate kind, index-aligned (Kind is
    // gate plumbing, not part of the serialized report).
    let mut cells = Vec::new();
    let mut kinds = Vec::new();
    for (i, (sleepy_report, quorum_report)) in duel.pairs().enumerate() {
        let &(n, si) = &grid.cells()[i];
        let spec = &all_specs[si];
        kinds.push(spec.kind);
        cells.push(DuelCell {
            scenario: spec.name.to_string(),
            n,
            horizon,
            span: spec.span,
            sleepy_eta: spec.eta,
            sleepy: side(sleepy_report, &duel.left_protocol, spec.span),
            quorum: side(quorum_report, &duel.right_protocol, spec.span),
        });
    }

    let mut table = Table::new(vec![
        "scenario",
        "n",
        "protocol",
        "in-window decisions",
        "total decisions",
        "final height",
        "safe",
        "recovered",
        "max heal",
    ]);
    for c in &cells {
        for s in [&c.sleepy, &c.quorum] {
            table.row(vec![
                c.scenario.clone(),
                c.n.to_string(),
                s.protocol.clone(),
                s.in_window_decisions.to_string(),
                s.decisions_total.to_string(),
                s.final_height.to_string(),
                s.safe.to_string(),
                s.recovered_every_window.to_string(),
                opt(s.max_recovery_rounds),
            ]);
        }
    }
    emit(
        "exp_baseline_head_to_head",
        "sleepy protocol vs static-quorum BFT under identical schedules/timelines/seeds",
        &table,
    );

    // ---- the acceptance gate ----
    let mut failures = Vec::new();
    for (c, &kind) in cells.iter().zip(&kinds) {
        if c.quorum.in_window_decisions != 0 {
            failures.push(format!(
                "{} n={}: quorum baseline decided {} times inside the disruption (expected stall)",
                c.scenario, c.n, c.quorum.in_window_decisions
            ));
        }
        if !c.sleepy.safe {
            failures.push(format!(
                "{} n={}: sleepy protocol lost safety",
                c.scenario, c.n
            ));
        }
        match kind {
            Kind::Dip => {
                if c.sleepy.in_window_decisions == 0 {
                    failures.push(format!(
                        "{} n={}: sleepy protocol decided nothing inside the dip",
                        c.scenario, c.n
                    ));
                }
            }
            Kind::Window => {
                if !c.sleepy.recovered_every_window {
                    failures.push(format!(
                        "{} n={}: sleepy protocol failed to recover after a window",
                        c.scenario, c.n
                    ));
                }
            }
        }
        if c.sleepy.decisions_total <= c.quorum.decisions_total {
            failures.push(format!(
                "{} n={}: sleepy protocol showed no decision advantage ({} vs {})",
                c.scenario, c.n, c.sleepy.decisions_total, c.quorum.decisions_total
            ));
        }
    }

    println!(
        "\n{} cells; in every one the quorum baseline {} through the\n\
         disruption while the sleepy protocol (η > 0) kept its guarantees.",
        cells.len(),
        if failures.is_empty() {
            "stalled"
        } else {
            "DID NOT stall"
        },
    );
    for f in &failures {
        println!("GATE FAILURE: {f}");
    }

    let bench = BenchReport {
        experiment: "exp_baseline_head_to_head",
        smoke,
        cells,
    };
    match write_bench_section(&bench_section("exp_baseline_head_to_head", smoke), &bench) {
        Ok(()) => println!("\n[merged exp_baseline_head_to_head into BENCH_sim.json]"),
        Err(e) => println!("\n[could not write BENCH_sim.json: {e}]"),
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
