//! **A1 — the Section-1 safety attack**: vanilla MMR loses safety under a
//! short asynchronous period; the extended protocol does not.
//!
//! Two attack realisations are run against both protocols:
//!
//! * [`ReorgAttacker`] — Byzantine votes for a genesis fork while honest
//!   traffic is suppressed (the paper's "send only votes for b" scenario):
//!   one asynchronous round reverts decided logs on vanilla MMR.
//! * [`PartitionAttacker`] — a 4-round network partition: the halves
//!   diverge and decide conflicting logs on vanilla MMR.
//!
//! Expected: vanilla (`η = 0`) shows violations under both; extended
//! (`η = 6 > π`) shows none and keeps deciding after the window.
//!
//! Run with `cargo run --release -p st-bench --bin exp_attack_vanilla`.

use st_analysis::Table;
use st_bench::{emit, seeds};
use st_sim::adversary::{Adversary, PartitionAttacker, ReorgAttacker};
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

const N: usize = 12;
const HORIZON: u64 = 32;

fn run_case(eta: u64, attack: &str, seed: u64) -> st_sim::SimReport {
    let (adversary, window, byz): (Box<dyn Adversary>, AsyncWindow, usize) = match attack {
        "reorg" => (
            Box::new(ReorgAttacker::new()),
            AsyncWindow::new(Round::new(12), 1),
            3,
        ),
        "partition" => (
            Box::new(PartitionAttacker::new()),
            AsyncWindow::new(Round::new(12), 4),
            0,
        ),
        other => unreachable!("unknown attack {other}"),
    };
    let schedule = Schedule::full(N, HORIZON).with_static_byzantine(byz);
    let params = Params::builder(N).expiration(eta).build().expect("valid");
    SimBuilder::from_config(
        SimConfig::new(params, seed)
            .horizon(HORIZON)
            .async_window(window),
    )
    .schedule(schedule)
    .adversary_boxed(adversary)
    .run()
}

fn main() {
    let mut table = Table::new(vec![
        "protocol",
        "attack",
        "pi",
        "agreement violations",
        "D_ra conflicts",
        "decides after window",
    ]);
    for &(eta, label) in &[(0u64, "vanilla MMR (η=0)"), (6, "extended (η=6)")] {
        for &attack in &["reorg", "partition"] {
            let mut agreement = 0usize;
            let mut dra = 0usize;
            let mut heals = 0usize;
            let seed_list = seeds(5);
            for &seed in &seed_list {
                let report = run_case(eta, attack, seed);
                agreement += report.safety_violations.len();
                dra += report.resilience_violations.len();
                if report.recovered_after_every_window() && !report.recoveries.is_empty() {
                    heals += 1;
                }
            }
            let pi = if attack == "reorg" { 1 } else { 4 };
            table.row(vec![
                label.to_string(),
                attack.to_string(),
                pi.to_string(),
                agreement.to_string(),
                dra.to_string(),
                format!("{heals}/{}", seed_list.len()),
            ]);
        }
    }
    emit(
        "exp_attack_vanilla",
        "safety of vanilla vs extended MMR under the Section-1 attacks (5 seeds)",
        &table,
    );
    println!(
        "\nExpected: vanilla rows show nonzero violations (reorg additionally reverts D_ra);\n\
         extended rows show zero violations and keep deciding after the window (Theorem 2)."
    );
}
