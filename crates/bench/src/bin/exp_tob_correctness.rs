//! **T1 — Theorem 1**: the extended protocol implements Byzantine
//! total-order broadcast under synchrony with dynamic participation.
//!
//! Sweeps participation schedules (full, bounded churn, a 60% mass-sleep
//! incident, 75% oscillating) × expiration periods `η ∈ {0, 2, 4, 8}`,
//! with a junk-voting Byzantine minority, and reports safety (agreement
//! violations must be zero) and liveness (transaction inclusion rate and
//! latency).
//!
//! Run with `cargo run --release -p st-bench --bin exp_tob_correctness`.

use st_analysis::{mean, Table};
use st_bench::{emit, f3, opt, seeds};
use st_sim::adversary::JunkVoter;
use st_sim::{ChurnOptions, Schedule, SimBuilder, SimConfig};
use st_types::Params;

const N: usize = 16;
const HORIZON: u64 = 60;
const BYZ: usize = 2; // comfortably below β̃·n for the γ we use

fn make_schedule(kind: &str, seed: u64) -> Schedule {
    match kind {
        "full" => Schedule::full(N, HORIZON),
        "churn-5%" => Schedule::random_churn(
            N,
            HORIZON,
            0.013, // ≈ 5% per η = 4 rounds
            seed,
            &ChurnOptions {
                min_awake_frac: 0.6,
                wake_prob: 0.35,
                // Keep this experiment's pre-envelope semantics: the labeled
                // churn level is the raw per-round sleep probability.
                max_dropped_frac: 1.0,
                ..Default::default()
            },
        ),
        "mass-sleep-60%" => Schedule::mass_sleep(N, HORIZON, 0.6, 20, 32),
        "oscillating" => Schedule::oscillating(N, HORIZON, 0.75, 12),
        other => unreachable!("unknown schedule {other}"),
    }
}

fn main() {
    let mut table = Table::new(vec![
        "schedule",
        "eta",
        "agreement violations",
        "decisions",
        "tx inclusion",
        "mean tx latency (rounds)",
    ]);
    let seed_list = seeds(3);
    for &kind in &["full", "churn-5%", "mass-sleep-60%", "oscillating"] {
        for &eta in &[0u64, 2, 4, 8] {
            let mut violations = 0usize;
            let mut decisions = 0usize;
            let mut inclusion = Vec::new();
            let mut latency = Vec::new();
            for &seed in &seed_list {
                let schedule = make_schedule(kind, seed).with_static_byzantine(BYZ);
                let params = Params::builder(N)
                    .expiration(eta)
                    .churn_rate(if eta > 0 { 0.2 } else { 0.0 })
                    .build()
                    .expect("valid");
                let report = SimBuilder::from_config(
                    SimConfig::new(params, seed).horizon(HORIZON).txs_every(4),
                )
                .schedule(schedule)
                .adversary(JunkVoter::new())
                .build()
                .expect("valid simulation")
                .run();
                violations += report.safety_violations.len();
                decisions += report.decisions_total;
                inclusion.push(report.tx_inclusion_rate());
                if let Some(l) = report.mean_tx_latency() {
                    latency.push(l);
                }
            }
            table.row(vec![
                kind.to_string(),
                eta.to_string(),
                violations.to_string(),
                decisions.to_string(),
                f3(mean(&inclusion).unwrap_or(0.0)),
                opt(mean(&latency).map(|l| format!("{l:.1}"))),
            ]);
        }
    }
    emit(
        "exp_tob_correctness",
        "Theorem 1: safety + liveness across schedules and η (3 seeds, n = 16, f = 2)",
        &table,
    );
    println!(
        "\nExpected: zero agreement violations everywhere; high tx inclusion with\n\
         single-digit round latency. Mass-sleep keeps deciding (dynamic availability)."
    );
}
