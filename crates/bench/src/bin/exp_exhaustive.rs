//! **V1 — bounded exhaustive verification of Theorem 2**.
//!
//! The theorem quantifies over every adversary; sampling attacks can only
//! refute, never confirm. For small instances we can do better: enumerate
//! **all** delivery strategies from a structured menu (per asynchronous
//! round, per receiver: deliver everything / nothing / only even senders /
//! only odd senders — a space containing blackout, the parity partition
//! and one-sided eclipses) and run the full protocol under each.
//!
//! * extended protocol, `π < η`: the checker must report **zero**
//!   violating strategies out of all `4^(n·π)`;
//! * vanilla MMR (`η = 0`): the checker finds concrete witnesses.
//!
//! Run with `cargo run --release -p st-bench --bin exp_exhaustive`.

use st_analysis::Table;
use st_bench::emit;
use st_sim::explore::{exhaustive_check, exhaustive_check_coupled, Strategy};
use st_sim::AsyncWindow;
use st_types::{Params, Round};

const N: usize = 4;

fn main() {
    let mut table = Table::new(vec![
        "mode",
        "protocol",
        "pi",
        "strategies",
        "post-window violating",
        "D_ra violating",
        "in-window orphaning",
    ]);

    // ---- per-receiver mode: every assignment of {All, Nothing,
    // EvenSenders, OddSenders} per receiver per round; 4^(n·π) runs ----
    for &pi in &[1u64, 2] {
        let window = AsyncWindow::new(Round::new(10), pi);
        for &(eta, label) in &[(0u64, "vanilla MMR (η=0)"), (4, "extended (η=4)")] {
            let params = Params::builder(N).expiration(eta).build().expect("valid");
            let report = exhaustive_check(params, window, 14 + pi + 8);
            table.row(vec![
                "per-receiver".to_string(),
                label.to_string(),
                pi.to_string(),
                report.strategies_run.to_string(),
                report.violating.len().to_string(),
                report.dra_violating.len().to_string(),
                report.orphaning_only.len().to_string(),
            ]);
            eprintln!(
                "per-receiver {label}, π = {pi}: {} strategies, {} violating",
                report.strategies_run,
                report.violating.len()
            );
        }
    }

    // ---- coupled mode: one network-wide pattern per round from {All,
    // Nothing, Partition, EclipseEvens, EclipseOdds}; 5^π runs — reaches
    // the π ≥ 3 windows where delivery-only attacks become possible ----
    for &pi in &[3u64, 4] {
        let window = AsyncWindow::new(Round::new(10), pi);
        for &(eta, label) in &[(0u64, "vanilla MMR (η=0)"), (6, "extended (η=6)")] {
            let params = Params::builder(N).expiration(eta).build().expect("valid");
            let report = exhaustive_check_coupled(params, window, 14 + pi + 10);
            table.row(vec![
                "coupled".to_string(),
                label.to_string(),
                pi.to_string(),
                report.strategies_run.to_string(),
                report.violating.len().to_string(),
                report.dra_violating.len().to_string(),
                report.orphaning_only.len().to_string(),
            ]);
            eprintln!(
                "coupled {label}, π = {pi}: {} strategies, {} violating",
                report.strategies_run,
                report.violating.len()
            );
        }
    }

    assert_eq!(Strategy::space_size(N, 2), 65_536);
    emit(
        "exp_exhaustive",
        "exhaustive delivery-strategy sweeps (n = 4)",
        &table,
    );
    println!(
        "\nExpected: the extended rows report 0 guaranteed-property violations\n\
         (post-window agreement + D_ra) in every mode — Theorem 2 verified\n\
         exhaustively within the menus. Vanilla survives all π ≤ 2 delivery-only\n\
         strategies (a finding: without Byzantine voters the divergence play needs\n\
         ≥ 3 rounds) and falls to concrete witnesses from π = 3. The separate\n\
         orphaning column counts strategies whose only conflicts involve a\n\
         decision made *during* the window — outside the paper's guarantees for\n\
         both protocols (see EXPERIMENTS.md, finding 5)."
    );
}
