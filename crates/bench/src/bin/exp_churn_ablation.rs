//! **C1 — ablation**: the model conditions (Equations 1–5) are
//! load-bearing.
//!
//! Two ablations:
//!
//! 1. **Churn (Equation 1)**: sweep the actual per-η drop-off rate from
//!    well below to well above the configured `γ`; the condition checker
//!    flags the violating rounds and progress degrades as stale votes of
//!    asleep processes swamp the tallies.
//! 2. **Eq. 4/5 (asynchrony conditions)**: during an asynchronous window,
//!    corrupt so many of `H_ra` that Equation 4 fails — the reorg attack
//!    then succeeds *despite* `π < η`, showing Theorem 2's premises are
//!    necessary, not decorative.
//!
//! Run with `cargo run --release -p st-bench --bin exp_churn_ablation`.

use st_analysis::{check_conditions, mean, Table};
use st_bench::{emit, f3, seeds};
use st_sim::adversary::{JunkVoter, ReorgAttacker};
use st_sim::{AsyncWindow, ChurnOptions, Schedule, SimBuilder, SimConfig};
use st_types::{Params, ProcessId, Round};

const N: usize = 20;
const HORIZON: u64 = 60;
const ETA: u64 = 4;
const GAMMA: f64 = 0.10;

fn main() {
    // ---- ablation 1: churn sweep ----
    let seed_list = seeds(3);
    let mut churn_table = Table::new(vec![
        "actual churn / eta",
        "Eq.1 violating rounds",
        "chain growth (blocks, of ~30 views)",
        "agreement violations",
    ]);
    for &per_eta in &[0.02f64, 0.08, 0.15, 0.30, 0.50, 0.70] {
        let sleep_prob = 1.0 - (1.0 - per_eta).powf(1.0 / ETA as f64);
        let mut eq1 = Vec::new();
        let mut growth = Vec::new();
        let mut violations = 0usize;
        for &seed in &seed_list {
            let schedule = Schedule::random_churn(
                N,
                HORIZON,
                sleep_prob,
                seed,
                &ChurnOptions {
                    min_awake_frac: 0.2,
                    wake_prob: 0.15,
                    // The ablation's whole point is driving churn past γ to
                    // observe Eq.1 violations, so disable the generator's
                    // bounded-churn envelope.
                    max_dropped_frac: 1.0,
                    ..Default::default()
                },
            )
            .with_static_byzantine(2);
            let conditions = check_conditions(&schedule, 1.0 / 3.0, GAMMA, ETA, None);
            eq1.push(conditions.churn_violations.len() as f64);
            let params = Params::builder(N)
                .expiration(ETA)
                .churn_rate(GAMMA)
                .build()
                .expect("valid");
            let report = SimBuilder::from_config(SimConfig::new(params, seed).horizon(HORIZON))
                .schedule(schedule)
                .adversary(JunkVoter::new())
                .build()
                .expect("valid simulation")
                .run();
            // New-block decisions are what churn starves: stale unexpired
            // votes inflate m while supporting only old prefixes.
            growth.push(report.final_decided_height as f64);
            violations += report.safety_violations.len();
        }
        churn_table.row(vec![
            f3(per_eta),
            format!("{:.1}", mean(&eq1).unwrap_or(0.0)),
            format!("{:.1}", mean(&growth).unwrap_or(0.0)),
            violations.to_string(),
        ]);
    }
    emit(
        "exp_churn_ablation_eq1",
        "Equation 1 ablation: progress vs actual churn (γ configured = 0.10, 3 seeds)",
        &churn_table,
    );

    // ---- ablation 2: Equation 4 violation during asynchrony ----
    let mut eq4_table = Table::new(vec![
        "corrupted during window",
        "Eq.4 holds",
        "D_ra conflicts",
        "agreement violations",
    ]);
    for &extra_corrupt in &[0usize, 4, 8, 12] {
        let mut dra = 0usize;
        let mut agreement = 0usize;
        let mut eq4_ok = true;
        for &seed in &seed_list {
            let pi = 2u64; // π < η: Theorem 2 applies *if* Eq. 4/5 hold
            let window = AsyncWindow::new(Round::new(12), pi);
            // Growing adversary: 3 static Byzantine + `extra_corrupt`
            // processes corrupted right at the window start.
            let mut schedule = Schedule::full(N, HORIZON).with_static_byzantine(3);
            for i in 0..extra_corrupt {
                schedule = schedule.with_corrupted(ProcessId::new(i as u32), Round::new(12));
            }
            let conditions = check_conditions(&schedule, 1.0 / 3.0, 0.0, ETA, Some(window));
            eq4_ok &= conditions.eq4_violations.is_empty();
            let params = Params::builder(N).expiration(ETA).build().expect("valid");
            let report = SimBuilder::from_config(
                SimConfig::new(params, seed)
                    .horizon(HORIZON)
                    .async_window(window),
            )
            .schedule(schedule)
            .adversary(ReorgAttacker::new())
            .build()
            .expect("valid simulation")
            .run();
            dra += report.resilience_violations.len();
            agreement += report.safety_violations.len();
        }
        eq4_table.row(vec![
            extra_corrupt.to_string(),
            eq4_ok.to_string(),
            dra.to_string(),
            agreement.to_string(),
        ]);
    }
    emit(
        "exp_churn_ablation_eq4",
        "Equation 4 ablation: reorg attack with π = 2 < η = 4 while corrupting H_ra (3 seeds)",
        &eq4_table,
    );
    println!(
        "\nExpected: (1) Eq.1 violations and progress loss grow once actual churn\n\
         exceeds γ; agreement stays safe (churn alone hurts liveness, not safety).\n\
         (2) With Eq.4 intact (0 extra corruptions) the attack fails; corrupting\n\
         enough of H_ra flips Eq.4 to false and D_ra conflicts appear — the\n\
         asynchrony conditions are necessary."
    );
}
