//! **Cluster cross-check** — the deployment-equivalence experiment.
//!
//! Runs a real multi-process TCP cluster (`st-node`, one OS process per
//! node, kill/sleep/partition faults injected at the socket layer) and
//! byte-compares every node's decided chain against the lockstep
//! simulator running the identical scenario. The simulator's claims are
//! only as good as its model; this experiment is the bridge: if the
//! socket runtime and the simulator ever disagree on a single decision
//! event, the run fails.
//!
//! Run with `cargo run --release -p st-bench --bin exp_cluster`
//! (`--smoke` for the reduced CI scenario). The harness re-execs this
//! binary with `serve …` as the per-node child process.

use st_bench::{bench_section, write_bench_section};
use st_node::{run_cluster, ClusterOptions, ClusterPlan, KillWindow, PartitionWindow};
use st_sim::{DecisionTap, Schedule, SimBuilder, SimConfig, Timeline};
use st_types::Params;
use std::process::ExitCode;

#[derive(serde::Serialize)]
struct NodeRow {
    node: u32,
    restarts: u64,
    decisions: usize,
    sim_decisions: usize,
    matches: bool,
}

#[derive(serde::Serialize)]
struct Report {
    n: usize,
    rounds: u64,
    seed: u64,
    kills: usize,
    partitions: usize,
    timed_out: bool,
    harness_polls: u64,
    divergences: usize,
    nodes: Vec<NodeRow>,
}

fn child_serve(argv: &[String]) -> ExitCode {
    let get = |key: &str| {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let (Some(plan), Some(id), Some(out)) = (get("--plan"), get("--id"), get("--out")) else {
        eprintln!("serve needs --plan, --id, and --out");
        return ExitCode::from(2);
    };
    let Ok(id) = id.parse::<u32>() else {
        eprintln!("--id must be a node index");
        return ExitCode::from(2);
    };
    match st_node::serve(&plan, id, &out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn scenario(smoke: bool) -> ClusterPlan {
    let (n, rounds) = if smoke { (3, 20) } else { (5, 40) };
    let mut plan = ClusterPlan::full(n, rounds);
    plan.txs_every = 3;
    plan.base_port = 39800; // distinct from `stob cluster` defaults
    let victim = n as u32 - 1;
    let (ks, ke) = if smoke { (5, 7) } else { (10, 14) };
    plan.sleep(victim, ks, ke);
    plan.kills.push(KillWindow {
        node: victim,
        start: ks,
        end: ke,
    });
    if !smoke {
        plan.sleep(1, 18, 20);
    }
    let (ps, pe) = if smoke { (10, 12) } else { (24, 27) };
    plan.partitions.push(PartitionWindow {
        start: ps,
        end: pe,
        groups: vec![(0..n as u32 / 2).collect()],
    });
    plan
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("serve") {
        return child_serve(&argv[2..]);
    }
    let smoke = argv.iter().any(|a| a == "--smoke");
    let plan = scenario(smoke);
    plan.validate().expect("scenario is internally consistent");

    // The oracle: the identical scenario under the lockstep simulator.
    let params = Params::builder(plan.n)
        .expiration(plan.eta)
        .build()
        .expect("valid params");
    let (tap, log) = DecisionTap::new(plan.n);
    let mut timeline = Timeline::synchronous();
    for (start, len, groups) in plan.timeline_partitions() {
        timeline = timeline.partition(start, len, groups);
    }
    let mut sim = SimBuilder::from_config(
        SimConfig::new(params, plan.seed)
            .horizon(plan.horizon)
            .txs_every(plan.txs_every),
    )
    .schedule(Schedule::custom(plan.schedule_matrix()))
    .timeline(timeline)
    .observer(tap)
    .build()
    .expect("valid simulation");
    while sim.step().is_some() {}
    let sim_tips: Vec<u64> = sim
        .processes()
        .iter()
        .map(|p| p.decided_tip().as_u64())
        .collect();
    let sim_decisions = log.borrow().clone();

    // The cluster: re-exec ourselves as the node child.
    let exe = std::env::current_exe()
        .expect("own path")
        .display()
        .to_string();
    let dir = std::env::temp_dir().join(format!("exp-cluster-{}", std::process::id()));
    let poll_ms = 5;
    let opts = ClusterOptions {
        plan: plan.clone(),
        exec: vec![exe, "serve".into()],
        dir,
        poll_ms,
        timeout_polls: ((plan.horizon + 1) * plan.tick_ms.max(1) * 20 + 60_000) / poll_ms,
    };
    let outcome = run_cluster(&opts).expect("harness runs");

    let mut divergences = 0usize;
    let mut rows = Vec::new();
    println!(
        "\n=== exp_cluster{}: socket cluster vs simulator ===\n",
        if smoke { " (smoke)" } else { "" }
    );
    for run in &outcome.nodes {
        let i = run.node as usize;
        let (matches, count) = match &run.outcome {
            None => (false, 0),
            Some(out) => {
                let ok = out.decided_tip == sim_tips[i]
                    && serde_json::to_string(&out.decisions).ok()
                        == serde_json::to_string(&sim_decisions[i]).ok();
                (ok, out.decisions.len())
            }
        };
        if !matches {
            divergences += 1;
        }
        println!(
            "node {i}: {} (restarts {run_restarts}, decisions {count}/{})",
            if matches { "MATCH" } else { "DIVERGED" },
            sim_decisions[i].len(),
            run_restarts = run.restarts,
        );
        rows.push(NodeRow {
            node: run.node,
            restarts: run.restarts,
            decisions: count,
            sim_decisions: sim_decisions[i].len(),
            matches,
        });
    }
    let report = Report {
        n: plan.n,
        rounds: plan.horizon,
        seed: plan.seed,
        kills: plan.kills.len(),
        partitions: plan.partitions.len(),
        timed_out: outcome.timed_out,
        harness_polls: outcome.polls,
        divergences,
        nodes: rows,
    };
    if let Err(e) = write_bench_section(&bench_section("exp_cluster", smoke), &report) {
        eprintln!("[could not write BENCH_sim.json: {e}]");
    }
    if divergences == 0 && !outcome.timed_out {
        println!(
            "\nverdict: all {} nodes byte-identical to the simulation",
            plan.n
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nverdict: {divergences} divergence(s), timed_out = {}",
            outcome.timed_out
        );
        ExitCode::FAILURE
    }
}
