//! **E1 — generality**: the expiration mechanism applies across the
//! failure-ratio family (conclusion of the paper: "the techniques … can
//! also be directly applied to other deterministically safe, dynamically
//! available protocols").
//!
//! MMR itself was explored at `β = 1/3` and `β = 1/4`; the grading tally
//! here is parameterised by `β`, so we run the full protocol at both
//! ratios and check:
//!
//! 1. correctness under synchrony at the corresponding Byzantine budget
//!    (`f < β̃·n`, junk-vote adversary);
//! 2. asynchrony resilience with `η > π` under the reorg attack;
//! 3. the grade thresholds actually bind: one Byzantine process beyond
//!    the budget costs liveness at the boundary.
//!
//! Run with `cargo run --release -p st-bench --bin exp_beta_family`.

use st_analysis::{beta_tilde, Table};
use st_bench::{emit, f3, seeds};
use st_sim::adversary::{JunkVoter, ReorgAttacker};
use st_sim::{AsyncWindow, Schedule, SimBuilder, SimConfig};
use st_types::{Params, Round};

const N: usize = 24;
const HORIZON: u64 = 50;
const ETA: u64 = 4;

fn run_sync(beta: f64, f: usize, seed: u64) -> st_sim::SimReport {
    let params = Params::builder(N)
        .failure_ratio(beta)
        .expiration(ETA)
        .build()
        .expect("valid");
    SimBuilder::from_config(SimConfig::new(params, seed).horizon(HORIZON).txs_every(4))
        .schedule(Schedule::full(N, HORIZON).with_static_byzantine(f))
        .adversary(JunkVoter::new())
        .build()
        .expect("valid simulation")
        .run()
}

fn run_async(beta: f64, f: usize, seed: u64) -> st_sim::SimReport {
    let params = Params::builder(N)
        .failure_ratio(beta)
        .expiration(ETA)
        .build()
        .expect("valid");
    SimBuilder::from_config(
        SimConfig::new(params, seed)
            .horizon(HORIZON)
            .async_window(AsyncWindow::new(Round::new(14), 2)),
    )
    .schedule(Schedule::full(N, HORIZON).with_static_byzantine(f))
    .adversary(ReorgAttacker::new())
    .build()
    .expect("valid simulation")
    .run()
}

fn main() {
    let seed_list = seeds(3);
    let mut table = Table::new(vec![
        "beta",
        "f (budget)",
        "sync: violations",
        "sync: chain growth",
        "sync: tx inclusion",
        "async π=2<η: D_ra conflicts",
    ]);
    for &beta in &[0.25f64, 1.0 / 3.0] {
        // Largest f with f < β̃·n = β·n (γ = 0 here).
        let budget = ((beta_tilde(beta, 0.0) * N as f64).ceil() as usize).saturating_sub(1);
        let mut violations = 0usize;
        let mut growth = Vec::new();
        let mut inclusion = Vec::new();
        let mut dra = 0usize;
        for &seed in &seed_list {
            let sync = run_sync(beta, budget, seed);
            violations += sync.safety_violations.len();
            growth.push(sync.final_decided_height as f64);
            inclusion.push(sync.tx_inclusion_rate());
            let asy = run_async(beta, budget, seed);
            dra += asy.resilience_violations.len();
            violations += asy.safety_violations.len();
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        table.row(vec![
            f3(beta),
            budget.to_string(),
            violations.to_string(),
            format!("{:.1}", mean(&growth)),
            f3(mean(&inclusion)),
            dra.to_string(),
        ]);
    }
    emit(
        "exp_beta_family",
        "the mechanism across the failure-ratio family (n = 24, η = 4, 3 seeds)",
        &table,
    );
    println!(
        "\nExpected: at both β = 1/4 (quorum > 3m/4) and β = 1/3 (quorum > 2m/3),\n\
         a full Byzantine budget produces zero violations, healthy chain growth and\n\
         full asynchrony resilience with η > π — the expiration mechanism is not\n\
         specific to the 1/3 instantiation."
    );
}
