//! **M1 — message complexity with vote aggregation** (footnote 2).
//!
//! "In Ethereum, process votes are aggregated by intermediate nodes which
//! then disseminate the votes independently." Without aggregation a round
//! costs `O(n²)` vote deliveries (every vote to every process); with `k`
//! relay aggregators it costs `n` uploads + `k·n` aggregate deliveries,
//! and the per-link byte volume collapses because an aggregate carries
//! one header per `(round, tip)` instead of one per vote.
//!
//! This experiment materialises one protocol round's vote traffic for
//! several system sizes, pushes it through [`VoteAggregator`] relays, and
//! compares delivered messages/bytes, verifying on the way that the
//! unpacked aggregates reproduce the exact vote set (aggregation is
//! transparent to the tally).
//!
//! Run with `cargo run --release -p st-bench --bin exp_aggregation`.

use st_analysis::Table;
use st_bench::{emit, f3};
use st_crypto::Keypair;
use st_messages::{Envelope, KeyDirectory, Payload, Vote, VoteAggregator};
use st_types::{BlockId, ProcessId, Round};

/// Builds one round's signed votes: `n` voters, split over `tips`
/// distinct tips (normal operation has 1–2). `shards` matches the relay
/// count so tip assignment is decorrelated from relay assignment.
fn round_votes(n: usize, tips: usize, shards: usize, seed: u64) -> (Vec<Envelope>, KeyDirectory) {
    let dir = KeyDirectory::derive(n, seed);
    let votes = (0..n)
        .map(|i| {
            let kp = Keypair::derive(ProcessId::new(i as u32), seed);
            // Voter i goes to relay i % shards; vary the tip along i/shards
            // so every relay sees every tip.
            let tip = BlockId::new(1 + ((i / shards) % tips) as u64);
            Envelope::sign(
                &kp,
                Payload::Vote(Vote::new(kp.owner(), Round::new(1), tip)),
            )
        })
        .collect();
    (votes, dir)
}

/// Wire size estimate of an individual signed vote (sender + round + tip
/// + signature).
const VOTE_BYTES: usize = 28;

fn main() {
    let mut table = Table::new(vec![
        "n",
        "tips",
        "relays k",
        "flood msgs",
        "aggregated msgs",
        "msg ratio",
        "flood bytes",
        "aggregated bytes",
        "byte ratio",
    ]);
    for &n in &[50usize, 200, 1000] {
        for &tips in &[1usize, 2] {
            for &k in &[4usize, 16] {
                let (votes, dir) = round_votes(n, tips, k, 7);
                // Each relay aggregates the subset of voters assigned to it
                // (sharded upload), then disseminates one aggregate per
                // distinct tip to all n processes.
                let mut relays: Vec<VoteAggregator> =
                    (0..k).map(|_| VoteAggregator::new()).collect();
                for (i, env) in votes.iter().enumerate() {
                    assert!(
                        relays[i % k].ingest(env, &dir),
                        "relay rejected a valid vote"
                    );
                }
                let aggregates: Vec<_> = relays
                    .iter()
                    .flat_map(|r| r.aggregates().iter().cloned())
                    .collect();
                // Transparency: unpacking reproduces every vote.
                let unpacked: usize = aggregates
                    .iter()
                    .map(|a| a.verified_votes(&dir).len())
                    .sum();
                assert_eq!(unpacked, n, "aggregation lost votes");

                // Flood: every vote delivered to every process.
                let flood_msgs = n * n;
                let flood_bytes = flood_msgs * VOTE_BYTES;
                // Aggregated: n uploads + each aggregate delivered to all.
                let agg_msgs = n + aggregates.len() * n;
                let agg_bytes =
                    n * VOTE_BYTES + aggregates.iter().map(|a| a.wire_bytes()).sum::<usize>() * n;
                table.row(vec![
                    n.to_string(),
                    tips.to_string(),
                    k.to_string(),
                    flood_msgs.to_string(),
                    agg_msgs.to_string(),
                    f3(flood_msgs as f64 / agg_msgs as f64),
                    flood_bytes.to_string(),
                    agg_bytes.to_string(),
                    f3(flood_bytes as f64 / agg_bytes as f64),
                ]);
            }
        }
    }
    emit(
        "exp_aggregation",
        "per-round vote traffic: flood vs relay aggregation (footnote 2)",
        &table,
    );
    println!(
        "\nExpected: message count shrinks by ≈ n/(k·tips + 1) and byte volume by a\n\
         similar factor minus the per-signer payload that aggregates still carry —\n\
         the reason Ethereum-scale deployments aggregate votes before gossip.\n\
         Aggregation is transparent: every constituent vote survives unpacking."
    );
}
