//! Full-simulator round throughput: how many protocol rounds per second
//! the lock-step engine sustains at various system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_sim::adversary::SilentAdversary;
use st_sim::{Schedule, SimBuilder, SimConfig};
use st_types::Params;

fn run(n: usize, eta: u64, horizon: u64) -> u64 {
    let params = Params::builder(n).expiration(eta).build().unwrap();
    let report = SimBuilder::from_config(SimConfig::new(params, 42).horizon(horizon))
        .schedule(Schedule::full(n, horizon))
        .adversary(SilentAdversary)
        .build()
        .expect("valid simulation")
        .run();
    report.final_decided_height
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/30_rounds");
    group.sample_size(10);
    for &n in &[10usize, 25, 50] {
        for &eta in &[0u64, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("eta{eta}")),
                &(n, eta),
                |b, &(n, eta)| b.iter(|| run(n, eta, 30)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
