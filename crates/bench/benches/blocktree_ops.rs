//! Block-tree primitive costs: insertion, binary-lifting ancestor
//! queries, LCA and longest-common-prefix over deep chains and wide
//! forks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_blocktree::{Block, BlockTree};
use st_types::{BlockId, ProcessId, View};

fn deep_chain(depth: usize) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    for i in 0..depth {
        let b = Block::build(
            *ids.last().unwrap(),
            View::new(i as u64 + 1),
            ProcessId::new(0),
            vec![],
        );
        ids.push(tree.insert(b).unwrap());
    }
    (tree, ids)
}

/// `width` branches of length `depth` off genesis.
fn wide_fork(width: usize, depth: usize) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut tips = Vec::new();
    for w in 0..width {
        let mut parent = BlockId::GENESIS;
        for d in 0..depth {
            let b = Block::build(
                parent,
                View::new(d as u64 + 1),
                ProcessId::new(w as u32),
                vec![],
            );
            parent = tree.insert(b).unwrap();
        }
        tips.push(parent);
    }
    (tree, tips)
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("blocktree/insert_1000_chain", |b| {
        b.iter(|| deep_chain(1000).0.len())
    });
}

fn bench_ancestor(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocktree/is_ancestor");
    for &depth in &[100usize, 1000, 10000] {
        let (tree, ids) = deep_chain(depth);
        let mid = ids[depth / 2];
        let tip = *ids.last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| tree.is_ancestor(mid, tip))
        });
    }
    group.finish();
}

fn bench_lca(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocktree/lca");
    for &depth in &[100usize, 1000] {
        let (tree, tips) = wide_fork(8, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| tree.lca(tips[0], tips[7]))
        });
    }
    group.finish();
}

fn bench_lcp(c: &mut Criterion) {
    let (tree, tips) = wide_fork(16, 200);
    c.bench_function("blocktree/longest_common_prefix_16_tips", |b| {
        b.iter(|| tree.longest_common_prefix(tips.iter().copied()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert, bench_ancestor, bench_lca, bench_lcp
}
criterion_main!(benches);
