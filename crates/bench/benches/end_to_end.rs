//! End-to-end protocol scenarios: the cost of a full run with churn, an
//! asynchronous window and an active adversary — the "production shape"
//! workload, and the per-process step cost in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use st_core::{TobConfig, TobProcess};
use st_sim::adversary::PartitionAttacker;
use st_sim::{AsyncWindow, ChurnOptions, Schedule, SimBuilder, SimConfig};
use st_types::{Params, ProcessId, Round};

fn bench_full_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("partition_attack_n16_40rounds", |b| {
        b.iter(|| {
            let n = 16;
            let params = Params::builder(n)
                .expiration(4)
                .churn_rate(0.1)
                .build()
                .unwrap();
            let schedule = Schedule::random_churn(
                n,
                40,
                0.01,
                7,
                &ChurnOptions {
                    min_awake_frac: 0.6,
                    wake_prob: 0.4,
                    // Keep this experiment's pre-envelope semantics: the labeled
                    // churn level is the raw per-round sleep probability.
                    max_dropped_frac: 1.0,
                    ..Default::default()
                },
            );
            let report = SimBuilder::from_config(
                SimConfig::new(params, 7)
                    .horizon(40)
                    .async_window(AsyncWindow::new(Round::new(14), 3))
                    .txs_every(4),
            )
            .schedule(schedule)
            .adversary(PartitionAttacker::new())
            .build()
            .expect("valid simulation")
            .run();
            assert!(report.is_safe());
            report.final_decided_height
        })
    });
    group.finish();
}

/// One process's send-step cost with a saturated vote store — the unit of
/// work a real deployment performs per round.
fn bench_process_step(c: &mut Criterion) {
    c.bench_function("end_to_end/single_process_step", |b| {
        // Drive 8 processes for 20 lock-step rounds to build realistic
        // state, then measure p0's step.
        let params = Params::builder(8).expiration(4).build().unwrap();
        let config = TobConfig::new(params, 3);
        let mut procs: Vec<TobProcess> = (0..8u32)
            .map(|i| TobProcess::new(ProcessId::new(i), config.clone()))
            .collect();
        for r in 0..=20u64 {
            let round = Round::new(r);
            let batches: Vec<_> = procs.iter_mut().map(|p| p.step_send(round)).collect();
            for batch in &batches {
                for env in batch {
                    for p in procs.iter_mut() {
                        p.on_receive(env.clone());
                    }
                }
            }
        }
        let template = procs[0].clone();
        b.iter_batched(
            || template.clone(),
            |mut p| p.step_send(Round::new(21)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_full_scenario, bench_process_step);
criterion_main!(benches);
