//! Graded-agreement tally throughput as a function of vote count and
//! expiration-window width — the hot path of every protocol round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_blocktree::{Block, BlockTree};
use st_ga::{tally, Thresholds};
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, ProcessId, Round, View};

/// A linear chain of `len` blocks; returns the tree and the block ids.
fn chain(len: usize) -> (BlockTree, Vec<BlockId>) {
    let mut tree = BlockTree::new();
    let mut ids = vec![BlockId::GENESIS];
    for i in 0..len {
        let b = Block::build(
            *ids.last().unwrap(),
            View::new(i as u64 + 1),
            ProcessId::new(0),
            vec![],
        );
        ids.push(tree.insert(b).unwrap());
    }
    (tree, ids)
}

/// A store with `n` voters spread over `rounds` rounds, each voting the
/// chain tip of its round.
fn filled_store(n: usize, rounds: u64, ids: &[BlockId]) -> VoteStore {
    let mut store = VoteStore::new();
    for r in 1..=rounds {
        for p in 0..n {
            let tip = ids[(r as usize * ids.len() / (rounds as usize + 1)).min(ids.len() - 1)];
            store.insert(Vote::new(ProcessId::new(p as u32), Round::new(r), tip));
        }
    }
    store
}

fn bench_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_tally");
    for &n in &[10usize, 50, 200] {
        for &eta in &[0u64, 4, 16] {
            let (tree, ids) = chain(40);
            let store = filled_store(n, 20, &ids);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("eta{eta}")),
                &eta,
                |b, &eta| {
                    b.iter(|| {
                        let votes = store
                            .latest_in_window(Round::new(20).saturating_sub(eta), Round::new(20));
                        tally(&tree, &votes, Thresholds::mmr())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Incremental support index vs recomputing the tally, for a stream of
/// moving votes over a deep chain — the deployment-path optimisation.
fn bench_incremental(c: &mut Criterion) {
    use st_ga::SupportIndex;
    let mut group = c.benchmark_group("ga_support_stream");
    let (tree, ids) = chain(200);
    let n = 50usize;
    // Stream: each of n voters advances its vote one block per event.
    group.bench_function("incremental_index", |b| {
        b.iter(|| {
            let mut index = SupportIndex::new();
            for step in 1..ids.len() {
                for p in 0..n {
                    index.set_vote(&tree, ProcessId::new(p as u32), ids[step]);
                }
            }
            index.support_of(ids[1])
        })
    });
    group.bench_function("stateless_retally", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for step in 1..ids.len() {
                let mut store = VoteStore::new();
                for p in 0..n {
                    store.insert(Vote::new(
                        ProcessId::new(p as u32),
                        Round::new(1),
                        ids[step],
                    ));
                }
                let votes = store.latest_in_window(Round::new(1), Round::new(1));
                acc += tally(&tree, &votes, Thresholds::mmr()).participation();
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tally, bench_incremental
}
criterion_main!(benches);
