//! Vote-store costs: insertion, latest-in-window queries (the expiration
//! mechanism's core read) and pruning, across window widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_messages::{Vote, VoteStore};
use st_types::{BlockId, ProcessId, Round};

fn filled(n: usize, rounds: u64) -> VoteStore {
    let mut store = VoteStore::new();
    for r in 1..=rounds {
        for p in 0..n {
            store.insert(Vote::new(
                ProcessId::new(p as u32),
                Round::new(r),
                BlockId::new(r),
            ));
        }
    }
    store
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("vote_store/insert_100x50", |b| {
        b.iter(|| filled(100, 50).len())
    });
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote_store/latest_in_window");
    let store = filled(200, 100);
    for &eta in &[0u64, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            b.iter(|| {
                store
                    .latest_in_window(Round::new(100).saturating_sub(eta), Round::new(100))
                    .participation()
            })
        });
    }
    group.finish();
}

fn bench_prune(c: &mut Criterion) {
    c.bench_function("vote_store/prune_below", |b| {
        b.iter_batched(
            || filled(100, 100),
            |mut store| {
                store.prune_below(Round::new(60));
                store.len()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert, bench_window, bench_prune
}
criterion_main!(benches);
