//! The round-loop execution engine.
//!
//! [`Simulation`] drives [`st_core::TobProcess`] instances through the
//! schedule, network, environment timeline and adversary. Execution is
//! **steppable** — [`Simulation::step`] runs one round,
//! [`Simulation::run_until`] runs to a round, [`Simulation::finish`]
//! assembles the [`SimReport`] from the registered
//! [`Observer`](crate::Observer)s, and [`Simulation::run`] is the
//! one-shot composition of the three. Between steps the driving code can
//! inspect processes and mutate the schedule (mid-run interventions),
//! which is what grid-scale experiments and scenario probes build on.
//!
//! Construct with [`crate::SimBuilder`]; the positional
//! [`Simulation::new`] constructor is a deprecated shim kept for old
//! callers.

use crate::adversary::{Adversary, AdversaryCtx};
use crate::builder::BuildError;
use crate::env::{bounded_delay_of, Disruption, EnvView, SegmentKind, Timeline};
use crate::metrics::RoundCost;
use crate::monitor::SimReport;
use crate::network::{Network, Recipients};
use crate::observer::{
    DecisionLedger, ObsCtx, Observer, ResilienceObserver, SafetyObserver, SimEvent, TraceObserver,
    TxLedger,
};
use crate::schedule::Schedule;
use crate::workload::{WorkloadInjector, WorkloadSpec};
use st_blocktree::BlockTree;
use st_core::{Protocol, TobConfig, TobProcess};
use st_crypto::Keypair;
use st_messages::{Payload, SharedEnvelope};
use st_types::fasthash::mix64_pair;
use st_types::FastSet;
use st_types::{Params, ProcessId, Round, TxId};
use std::collections::BTreeMap;
use std::sync::Arc;
// stlint::allow(wallclock, reason = "instrument-gated per-phase timing only: every Instant read is behind SimConfig::instrument, and instrumented fields serialise as zero when it is off, so reports stay pure functions of the seed")
use std::time::Instant;

/// An asynchronous window `[start, start + len − 1]` during which message
/// delivery is adversarial. In the paper's notation the window is
/// `[ra + 1, ra + π]`, so `start = ra + 1` and `len = π`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncWindow {
    start: Round,
    len: u64,
}

impl AsyncWindow {
    /// A window of `pi` rounds beginning at `start` (= `ra + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `pi == 0` (an empty window is no window) or if
    /// `start` is round 0 (there must exist a last synchronous round
    /// `ra ≥ 0` before the window).
    pub fn new(start: Round, pi: u64) -> AsyncWindow {
        assert!(pi > 0, "asynchronous window must have positive length");
        assert!(
            start > Round::ZERO,
            "the window must start after at least one synchronous round"
        );
        AsyncWindow { start, len: pi }
    }

    /// The last synchronous round before the window (`ra`).
    pub fn ra(&self) -> Round {
        self.start
            .prev()
            .expect("start > 0 enforced at construction") // stlint::allow(panic, reason = "AsyncWindow::new asserts start > 0, so prev() always exists")
    }

    /// The first asynchronous round (`ra + 1`).
    pub fn start(&self) -> Round {
        self.start
    }

    /// The window length `π`.
    pub fn pi(&self) -> u64 {
        self.len
    }

    /// The last asynchronous round (`ra + π`).
    pub fn end(&self) -> Round {
        Round::new(self.start.as_u64() + self.len - 1)
    }

    /// Whether `r` lies inside the window.
    pub fn contains(&self, r: Round) -> bool {
        self.start <= r && r <= self.end()
    }
}

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    params: Params,
    seed: u64,
    horizon: u64,
    timeline: Timeline,
    txs_every: Option<u64>,
    naive_delivery: bool,
    shared_tally: bool,
    instrument: bool,
}

impl SimConfig {
    /// A run of the protocol described by `params` under `seed`, with a
    /// default horizon of 40 rounds, a fully synchronous timeline and no
    /// transaction workload.
    pub fn new(params: Params, seed: u64) -> SimConfig {
        SimConfig {
            params,
            seed,
            horizon: 40,
            timeline: Timeline::synchronous(),
            txs_every: None,
            naive_delivery: false,
            shared_tally: true,
            instrument: false,
        }
    }

    /// Sets the number of rounds to execute (rounds `0..=horizon`).
    #[must_use]
    pub fn horizon(mut self, rounds: u64) -> SimConfig {
        self.horizon = rounds;
        self
    }

    /// Sets the environment [`Timeline`] (asynchronous / bounded-delay
    /// windows and partition events). Replaces any previously configured
    /// timeline.
    #[must_use]
    pub fn timeline(mut self, timeline: Timeline) -> SimConfig {
        self.timeline = timeline;
        self
    }

    /// Injects a single asynchronous window — a thin shim over
    /// [`SimConfig::timeline`] that builds the one-segment timeline
    /// `Timeline::synchronous().asynchronous(window.start(), window.pi())`.
    /// Replaces any previously configured timeline, matching the legacy
    /// last-call-wins behaviour.
    #[must_use]
    pub fn async_window(mut self, window: AsyncWindow) -> SimConfig {
        self.timeline = Timeline::synchronous().asynchronous(window.start(), window.pi());
        self
    }

    /// Submits one fresh transaction every `k` rounds (to the first honest
    /// awake process).
    #[must_use]
    pub fn txs_every(mut self, k: u64) -> SimConfig {
        self.txs_every = Some(k.max(1));
        self
    }

    /// Forces the pre-fast-path delivery behaviour: every receiver gets a
    /// **deep clone** of each envelope and re-verifies its signature from
    /// scratch, and the message pool is never compacted. Semantically
    /// identical to the shared-envelope fast path (the
    /// determinism-equivalence suite asserts byte-identical reports); it
    /// exists so benches can measure the fast path against a faithful
    /// naive baseline *in the same run*.
    #[must_use]
    pub fn naive_delivery(mut self) -> SimConfig {
        self.naive_delivery = true;
        self
    }

    /// Disables the shared once-per-round tally: every process computes
    /// its own round tally inside `step_send`, with no runner-side cohort
    /// pass. Behaviour must be identical either way — the shared path
    /// hands a cohort exactly the tally each member would have computed —
    /// and the determinism-equivalence suite asserts byte-identical
    /// reports. This switch exists for that guard and for benchmarking
    /// the sharing win.
    #[must_use]
    pub fn unshared_tally(mut self) -> SimConfig {
        self.shared_tally = false;
        self
    }

    /// Enables per-phase wall-clock timing and tally-cache hit/miss
    /// accounting, surfaced per round via [`crate::RoundCost`] /
    /// [`crate::RoundSample`]. Off by default: uninstrumented runs never
    /// read the clock and serialise the cost fields as zero, keeping
    /// reports byte-comparable across code paths.
    #[must_use]
    pub fn instrument(mut self) -> SimConfig {
        self.instrument = true;
        self
    }

    /// The protocol parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The configured environment timeline.
    pub fn env(&self) -> &Timeline {
        &self.timeline
    }

    /// The configured horizon (the run executes rounds `0..=horizon`).
    pub fn horizon_rounds(&self) -> u64 {
        self.horizon
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A single simulation: processes + schedule + network + adversary +
/// observers. Construct with [`crate::SimBuilder`]; execute with
/// [`Simulation::run`], or drive it round by round with
/// [`Simulation::step`] / [`Simulation::run_until`] and close with
/// [`Simulation::finish`].
///
/// Generic over the [`Protocol`] being driven, defaulted to the sleepy
/// protocol's [`TobProcess`] — `Simulation` without a parameter is the
/// exact type every pre-existing caller names. The round loop touches
/// processes only through the [`Protocol`] surface, so any implementor
/// (e.g. [`st_core::QuorumProcess`]) runs under the same schedules,
/// network pool, environment timeline and adversarial delivery.
pub struct Simulation<P: Protocol = TobProcess> {
    config: SimConfig,
    tob_config: TobConfig,
    schedule: Schedule,
    adversary: Box<dyn Adversary<P>>,
    procs: Vec<P>,
    keypairs: Vec<Keypair>,
    network: Network,
    global_tree: BlockTree,
    /// The observer pipeline: the built-in monitors (safety, per-window
    /// resilience, tx ledger, decision ledger, round trace) in fixed
    /// order, then user observers in registration order. The final
    /// [`SimReport`] is assembled from these at [`Simulation::finish`].
    observers: Vec<Box<dyn Observer<P>>>,
    /// Whether any registered observer opted into per-envelope
    /// [`SimEvent::EnvelopeDelivered`] events (checked once at build so
    /// the zero-copy delivery path stays event-free by default).
    wants_deliveries: bool,
    /// One disruption per timeline window/partition (start order) —
    /// drives the `WindowEnter`/`WindowExit` events.
    disruptions: Vec<Disruption>,
    /// Whether each process has *ever* been Byzantine. A corrupted
    /// machine's sends are discarded (the adversary speaks for it), so
    /// its local state is no longer a pure function of the delivered
    /// stream — it is excluded from tally cohorts for the rest of the
    /// run.
    ever_byz: Vec<bool>,
    /// Per-process awake-history fingerprint: a [`mix64_pair`] chain over
    /// the rounds the process was awake in. Equal fingerprints certify
    /// identical participation histories — one of the shared-tally cohort
    /// keys.
    awake_fp: Vec<u64>,
    /// Cached Byzantine keypair set: `(corrupted processes, their
    /// keypairs)`. Corruption sets change at most a handful of times per
    /// run (growing adversary / corruption windows), so the per-round
    /// keypair clones are hoisted into this cache and rebuilt only when
    /// the set itself changes — not twice per asynchronous round.
    byz_cache: (Vec<ProcessId>, Vec<Keypair>),
    /// The workload injector, when a workload (or the legacy `txs_every`
    /// shim) is configured: the one seam allowed to call `submit_tx`.
    workload: Option<WorkloadInjector>,
    tx_counter: u64,
    /// The next round to execute (`step` cursor); the run is complete
    /// once it passes the horizon.
    next: u64,
}

/// Dispatches one event to every observer, in order.
fn dispatch<P: Protocol>(
    observers: &mut [Box<dyn Observer<P>>],
    ctx: &ObsCtx<'_, P>,
    event: &SimEvent,
) {
    for o in observers.iter_mut() {
        o.on_event(ctx, event);
    }
}

/// Forwards observer-emitted events (violations, mostly) to every
/// observer until the pipeline is quiescent.
fn pump_emitted<P: Protocol>(observers: &mut [Box<dyn Observer<P>>], ctx: &ObsCtx<'_, P>) {
    loop {
        let mut pending = Vec::new();
        for o in observers.iter_mut() {
            pending.append(&mut o.drain_emitted());
        }
        if pending.is_empty() {
            return;
        }
        for event in &pending {
            dispatch(observers, ctx, event);
        }
    }
}

/// Builds the observer read-context for the current round. A macro rather
/// than a method so the borrow stays scoped to the named fields (the
/// observer pipeline is borrowed mutably at the same time).
macro_rules! obs_ctx {
    ($sim:expr, $round:expr, $env:expr) => {
        ObsCtx {
            round: $round,
            env: $env,
            processes: &$sim.procs,
            schedule: &$sim.schedule,
            global_tree: &$sim.global_tree,
            config: &$sim.config,
            messages_sent: $sim.network.messages_sent(),
        }
    };
}

impl Simulation {
    /// Builds a simulation (legacy positional constructor). Pinned to
    /// the default [`TobProcess`] protocol — exactly the surface it had
    /// before the runner went generic.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's process count differs from
    /// `config.params().n()` or a timeline partition group names a
    /// process outside the system. [`crate::SimBuilder::build`] reports
    /// both conditions as [`BuildError`]s instead.
    #[deprecated(
        since = "0.5.0",
        note = "use SimBuilder: SimBuilder::from_config(config).schedule(schedule).adversary(adversary).build()"
    )]
    pub fn new(config: SimConfig, schedule: Schedule, adversary: Box<dyn Adversary>) -> Simulation {
        match Simulation::assemble(config, schedule, adversary, Vec::new(), None) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"), // stlint::allow(panic, reason = "deprecated shim deliberately preserves the historic panic contract; SimBuilder::build is the fallible path")
        }
    }
}

impl<P: Protocol> Simulation<P> {
    /// Validates and assembles a simulation (the [`crate::SimBuilder`]
    /// back end).
    pub(crate) fn assemble(
        config: SimConfig,
        schedule: Schedule,
        adversary: Box<dyn Adversary<P>>,
        user_observers: Vec<Box<dyn Observer<P>>>,
        workload: Option<WorkloadSpec>,
    ) -> Result<Simulation<P>, BuildError> {
        let n = config.params.n();
        if schedule.n() != n {
            return Err(BuildError::ScheduleMismatch {
                expected: n,
                got: schedule.n(),
            });
        }
        for part in config.timeline.partitions() {
            if let Some(&p) = part.groups().iter().flatten().find(|p| p.index() >= n) {
                return Err(BuildError::PartitionMemberOutOfRange { member: p, n });
            }
        }
        let tob_config = TobConfig::new(config.params, config.seed);
        let procs: Vec<P> = ProcessId::all(n)
            .map(|p| {
                let mut proc = P::new(p, tob_config.clone());
                proc.set_naive_receive(config.naive_delivery);
                proc
            })
            .collect();
        let keypairs: Vec<Keypair> = ProcessId::all(n)
            .map(|p| Keypair::derive(p, config.seed))
            .collect();
        let disruptions = config.timeline.disruptions();
        let mut observers: Vec<Box<dyn Observer<P>>> = vec![
            Box::new(SafetyObserver::new()),
            Box::new(ResilienceObserver::new(&config.timeline)),
            Box::new(TxLedger::new(n)),
            Box::new(DecisionLedger::new(n)),
            Box::new(TraceObserver::new()),
        ];
        // An explicit workload wins over the legacy `txs_every` knob;
        // the knob itself is re-expressed as a ConstantRate shim through
        // the same injector. The workload observers (mempool accounting,
        // latency join) sit between the built-ins and user observers so
        // user probes still run last.
        let workload = workload.or_else(|| config.txs_every.map(WorkloadSpec::legacy_shim));
        let workload = workload.map(WorkloadInjector::new);
        if let Some(inj) = &workload {
            observers.extend(inj.observers());
        }
        observers.extend(user_observers);
        let wants_deliveries = observers.iter().any(|o| o.wants_delivery_events());
        Ok(Simulation {
            config,
            tob_config,
            schedule,
            adversary,
            procs,
            keypairs,
            network: Network::new(n),
            global_tree: BlockTree::new(),
            observers,
            wants_deliveries,
            disruptions,
            ever_byz: vec![false; n],
            awake_fp: vec![0; n],
            byz_cache: (Vec::new(), Vec::new()),
            workload,
            tx_counter: 0,
            next: 0,
        })
    }

    /// Executes rounds `0..=horizon` and produces the report — the
    /// one-shot composition of [`Simulation::step`] and
    /// [`Simulation::finish`].
    pub fn run(mut self) -> SimReport {
        while self.step().is_some() {}
        self.finish()
    }

    /// Executes the next round and returns it, or `None` once every round
    /// up to the horizon has run.
    pub fn step(&mut self) -> Option<Round> {
        if self.next > self.config.horizon {
            return None;
        }
        let round = Round::new(self.next);
        self.step_round(round);
        self.next += 1;
        Some(round)
    }

    /// Executes rounds up to **and including** `round` (clamped to the
    /// horizon). A no-op if execution has already passed it.
    pub fn run_until(&mut self, round: Round) {
        while self.next <= self.config.horizon && self.next <= round.as_u64() {
            self.step();
        }
    }

    /// The next round [`Simulation::step`] would execute, or `None` once
    /// the run is complete.
    pub fn next_round(&self) -> Option<Round> {
        (self.next <= self.config.horizon).then(|| Round::new(self.next))
    }

    /// Whether every round up to the horizon has executed.
    pub fn is_done(&self) -> bool {
        self.next > self.config.horizon
    }

    /// The run's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The participation/corruption schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Mutable access to the schedule **between steps** — mid-run
    /// interventions (flipping participation, corrupting a process from
    /// the next round on) are first-class: pause with
    /// [`Simulation::run_until`], mutate, continue stepping. The
    /// replacement schedule must cover the same `n` processes.
    ///
    /// # Panics
    ///
    /// Does not panic itself, but later steps panic if the schedule is
    /// swapped for one covering a different process count.
    pub fn schedule_mut(&mut self) -> &mut Schedule {
        &mut self.schedule
    }

    /// Read-only view of every process's state (mid-run inspection).
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// Read-only view of the network (mid-run inspection; the
    /// bounded-memory regression suite watches the pool backlog).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Rebuilds the Byzantine keypair cache iff the corrupted set changed.
    fn refresh_byz_cache(&mut self, corrupted: &[ProcessId]) {
        if self.byz_cache.0 != corrupted {
            self.byz_cache.0 = corrupted.to_vec();
            self.byz_cache.1 = corrupted
                .iter()
                .map(|p| self.keypairs[p.index()].clone())
                .collect();
        }
    }

    /// Delivers one shared envelope to process `p`. In naive mode the
    /// envelope is deep-cloned and re-wrapped so the receiver re-verifies
    /// it from scratch — the faithful pre-fast-path cost model.
    fn deliver_to(procs: &mut [P], naive: bool, p: ProcessId, env: &SharedEnvelope) {
        if naive {
            let fresh = SharedEnvelope::new(env.envelope().clone());
            procs[p.index()].on_receive_shared(&fresh);
        } else {
            procs[p.index()].on_receive_shared(env);
        }
    }

    fn step_round(&mut self, round: Round) {
        let env_view = self.config.timeline.view_at(round);

        // ------ narration: round start + windows opening this round ------
        {
            let ctx = obs_ctx!(self, round, env_view);
            dispatch(&mut self.observers, &ctx, &SimEvent::RoundStart { round });
            for (index, d) in self.disruptions.iter().enumerate() {
                if d.start == round {
                    dispatch(
                        &mut self.observers,
                        &ctx,
                        &SimEvent::WindowEnter {
                            index,
                            disruption: *d,
                        },
                    );
                }
            }
        }

        // ------ participation bookkeeping (the runner-side half of the
        // shared-tally cohort certificate): corruption is sticky — a
        // machine whose sends were ever discarded is no longer a pure
        // function of the delivered stream — and every process's awake
        // history is chained into a fingerprint ------
        let corrupted = self.schedule.byzantine(round);
        for &p in &corrupted {
            self.ever_byz[p.index()] = true;
        }
        for p in ProcessId::all(self.schedule.n()) {
            if self.schedule.is_awake(p, round) {
                let fp = &mut self.awake_fp[p.index()];
                *fp = mix64_pair(*fp, round.as_u64());
            }
        }

        // ------ transaction workload: the injector offers this round's
        // open-loop arrivals to the mempool and drains the submission
        // batch; each drained transaction reaches every honest awake
        // process's mempool (modelling transaction gossip, which floods
        // independently of the consensus rounds). The `TxSubmitted`
        // event carries the transaction's mempool *arrival* round, so
        // downstream latency includes the queueing delay; under the
        // legacy `txs_every` shim arrival and drain coincide, keeping
        // those reports byte-identical. ------
        if self.workload.is_some() {
            let targets = self.schedule.honest_awake(round);
            let drained = self
                .workload
                .as_mut()
                .map(|inj| inj.step(round.as_u64(), !targets.is_empty()))
                .unwrap_or_default();
            for pending in drained {
                self.tx_counter += 1;
                let tx = TxId::new(self.tx_counter);
                for &target in &targets {
                    self.procs[target.index()].submit_tx(tx);
                }
                let ctx = obs_ctx!(self, round, env_view);
                dispatch(
                    &mut self.observers,
                    &ctx,
                    &SimEvent::TxSubmitted {
                        tx,
                        round: Round::new(pending.arrived),
                    },
                );
            }
        }

        // ------ shared once-per-round tally: partition the honest awake
        // set into cohorts whose previous-round tallies are provably
        // identical, compute each cohort's tally once through the
        // representative, and hand the members a shared handle that
        // `step_send` consumes instead of recomputing.
        //
        // The certificate is structural, not fingerprint-trust: a member
        // must (a) never have been corrupted (a corrupted machine's sends
        // are discarded from the pool, so its self-inserted votes were
        // never part of any delivered stream), (b) have no extras pending
        // and an untainted cursor (so "delivered" ≡ "pool prefix up to
        // cursor"), and (c) share the delivery cursor with the rest of
        // the cohort. Equal awake-history and tally fingerprints are
        // layered on top as belt-and-braces. The pass only runs in fully
        // synchronous, unpartitioned rounds; everything else falls back
        // to the per-process incremental tally. ------
        let honest = self.schedule.honest_awake(round);
        let mut cost = RoundCost::default();
        let instrument = self.config.instrument;
        if self.config.shared_tally
            && !self.config.naive_delivery
            && round > Round::ZERO
            && matches!(env_view.kind, SegmentKind::Synchronous)
            && self.config.timeline.partition_at(round).is_none()
        {
            let t_tally = instrument.then(Instant::now);
            // BTreeMap keying keeps cohort ordering (and so the choice of
            // representative) independent of hasher state.
            let mut cohorts: BTreeMap<(usize, u64, u64), Vec<ProcessId>> = BTreeMap::new();
            for &p in &honest {
                if self.ever_byz[p.index()]
                    || self.network.has_extras(p)
                    || self.network.targeted_below_cursor(p)
                {
                    continue;
                }
                let Some(fp) = self.procs[p.index()].tally_fingerprint() else {
                    continue;
                };
                let key = (
                    self.network.delivery_cursor(p),
                    self.awake_fp[p.index()],
                    fp,
                );
                cohorts.entry(key).or_default().push(p);
            }
            for members in cohorts.into_values() {
                if members.len() < 2 {
                    continue;
                }
                let rep = members[0];
                let Some(out) = self.procs[rep.index()].shared_round_tally(round) else {
                    continue;
                };
                let shared = Arc::new(out);
                for &m in &members {
                    self.procs[m.index()].install_shared_tally(round, Arc::clone(&shared));
                }
                cost.tally_cache_hits += members.len() as u64 - 1;
            }
            if let Some(t) = t_tally {
                cost.tally_us = t.elapsed().as_micros() as u64;
            }
        }
        if instrument && round > Round::ZERO {
            cost.tally_cache_misses = honest.len() as u64 - cost.tally_cache_hits;
        } else {
            // Counters serialise as zero when uninstrumented so reports
            // stay byte-comparable across sharing modes.
            cost.tally_cache_hits = 0;
        }

        // ------ send phase: honest processes ------
        let t_send = instrument.then(Instant::now);
        for &p in &honest {
            let envs = self.procs[p.index()].step_send(round);
            for env in envs {
                if let Payload::Propose(prop) = env.payload() {
                    // Keep the global tree complete (monitor/adversary view).
                    let mut buf = st_core::BlockBuffer::new();
                    buf.insert(&mut self.global_tree, prop.block_arc().clone());
                }
                // Moves the envelope into one shared pool allocation; the
                // process already recorded its own multicast locally.
                self.network.send(round, p, Recipients::All, env);
            }
        }
        if let Some(t) = t_send {
            cost.step_send_us = t.elapsed().as_micros() as u64;
        }

        // ------ send phase: corrupted machines ------
        // A corrupted process's *machine* keeps executing the honest code
        // (Byzantine processes never sleep; the adversary controls the
        // wire, not the silicon): its output is discarded — the adversary
        // speaks for it via `Adversary::send` below — but its internal
        // state keeps advancing, so a process whose corruption ends
        // (windowed corruption, churn experiments) resumes from live
        // state. Discarded proposals still enter the global tree: the
        // full-knowledge adversary and the monitors know every block ever
        // built, including ones only a corrupted machine has seen.
        for &p in &corrupted {
            let envs = self.procs[p.index()].step_send(round);
            for env in envs {
                if let Payload::Propose(prop) = env.payload() {
                    let mut buf = st_core::BlockBuffer::new();
                    buf.insert(&mut self.global_tree, prop.block_arc().clone());
                }
            }
        }

        // ------ send phase: adversary ------
        if self.byz_cache.0 != corrupted {
            self.refresh_byz_cache(&corrupted);
            let ctx = obs_ctx!(self, round, env_view);
            dispatch(
                &mut self.observers,
                &ctx,
                &SimEvent::CorruptionChange {
                    round,
                    corrupted: corrupted.clone(),
                },
            );
        }
        let byz_msgs = {
            let ctx = AdversaryCtx {
                round,
                env: env_view,
                corrupted: &corrupted,
                keypairs: &self.byz_cache.1,
                processes: &self.procs,
                schedule: &self.schedule,
                global_tree: &self.global_tree,
                config: &self.tob_config,
            };
            self.adversary.send(&ctx)
        };
        for msg in byz_msgs {
            let sender = msg.envelope.payload().sender();
            // The adversary can only author messages from corrupted
            // processes; anything else would be a forgery.
            assert!(
                corrupted.contains(&sender),
                "adversary attempted to send as uncorrupted {sender}"
            );
            if let Payload::Propose(prop) = msg.envelope.payload() {
                let mut buf = st_core::BlockBuffer::new();
                buf.insert(&mut self.global_tree, prop.block_arc().clone());
            }
            self.network
                .send(round, sender, msg.recipients, msg.envelope);
        }

        // ------ decision monitoring (decisions happen in step_send) ------
        self.observe_decisions(round);

        // ------ receive phase: processes awake at the END of this round,
        // i.e. at the beginning of round + 1 ------
        let t_recv = instrument.then(Instant::now);
        let next = round.next();
        let naive = self.config.naive_delivery;
        let receivers: Vec<ProcessId> = ProcessId::all(self.schedule.n())
            .filter(|&p| self.schedule.is_awake(p, next) && !self.schedule.is_byzantine(p, next))
            .collect();
        // Partition reachability as a dense group map (two array reads
        // per (sender, receiver) pair). While a partition is active,
        // delivery goes through the marking path (`deliver_async` /
        // chosen indices) so cross-group messages stay queued — delayed,
        // never lost — and arrive once the partition heals.
        let part_map: Option<Vec<u32>> = self
            .config
            .timeline
            .partition_at(round)
            .map(|p| p.group_map(self.schedule.n()));
        let mut delivered = 0usize;
        let reachable =
            |map: &Vec<u32>, s: ProcessId, r: ProcessId| map[s.index()] == map[r.index()];
        match env_view.kind {
            SegmentKind::Asynchronous => {
                // First ask the adversary what everyone gets (immutable
                // phase), then apply (mutable phase). An active partition
                // constrains the adversary: it cannot deliver across the
                // cut.
                let mut plan: Vec<(ProcessId, Vec<usize>)> = Vec::new();
                {
                    let ctx = AdversaryCtx {
                        round,
                        env: env_view,
                        corrupted: &corrupted,
                        keypairs: &self.byz_cache.1,
                        processes: &self.procs,
                        schedule: &self.schedule,
                        global_tree: &self.global_tree,
                        config: &self.tob_config,
                    };
                    for &p in &receivers {
                        let available = self.network.available_for(p, round);
                        let mut chosen = self.adversary.deliver(&ctx, p, &available);
                        if let Some(map) = &part_map {
                            let reach: FastSet<usize> = available
                                .iter()
                                .filter(|m| reachable(map, m.sender, p))
                                .map(|m| m.index)
                                .collect();
                            chosen.retain(|i| reach.contains(i));
                        }
                        plan.push((p, chosen));
                    }
                }
                for (p, chosen) in plan {
                    for env in self.network.deliver_async(p, round, &chosen) {
                        delivered += 1;
                        Self::deliver_to(&mut self.procs, naive, p, &env);
                        self.note_delivery(round, env_view, p, &env);
                    }
                }
            }
            SegmentKind::BoundedDelay { delta } => {
                // Every message is delivered within `delta` rounds of
                // being sent: a message becomes *due* once its sampled
                // delay elapses (deterministic per (message, receiver)
                // from the run seed, or adversary-chosen within the
                // bound), and the network enforces the deadline
                // unconditionally.
                let seed = self.config.seed;
                let mut plan: Vec<(ProcessId, Vec<usize>)> = Vec::new();
                {
                    let ctx = AdversaryCtx {
                        round,
                        env: env_view,
                        corrupted: &corrupted,
                        keypairs: &self.byz_cache.1,
                        processes: &self.procs,
                        schedule: &self.schedule,
                        global_tree: &self.global_tree,
                        config: &self.tob_config,
                    };
                    for &p in &receivers {
                        let available = self.network.available_for(p, round);
                        let mut chosen = Vec::with_capacity(available.len());
                        for m in &available {
                            if let Some(map) = &part_map {
                                if !reachable(map, m.sender, p) {
                                    continue;
                                }
                            }
                            let d = self
                                .adversary
                                .delay(&ctx, p, m, delta)
                                .map(|d| d.min(delta))
                                .unwrap_or_else(|| bounded_delay_of(seed, m.index, p, delta));
                            if m.round.as_u64() + d <= round.as_u64() {
                                chosen.push(m.index);
                            }
                        }
                        plan.push((p, chosen));
                    }
                }
                for (p, chosen) in plan {
                    let envs = if part_map.is_some() {
                        // The deadline must not force messages across the
                        // cut: partition rounds use the marking path, and
                        // the backlog arrives when the partition heals.
                        self.network.deliver_async(p, round, &chosen)
                    } else {
                        self.network.deliver_bounded(p, round, delta, &chosen)
                    };
                    for env in envs {
                        delivered += 1;
                        Self::deliver_to(&mut self.procs, naive, p, &env);
                        self.note_delivery(round, env_view, p, &env);
                    }
                }
            }
            SegmentKind::Synchronous => {
                if let Some(map) = &part_map {
                    // Synchronous delivery restricted to same-group
                    // traffic; cross-group messages stay queued. No
                    // adversary context is borrowed here, so each
                    // receiver's choice can be applied immediately.
                    for &p in &receivers {
                        let chosen: Vec<usize> = self
                            .network
                            .available_for(p, round)
                            .iter()
                            .filter(|m| reachable(map, m.sender, p))
                            .map(|m| m.index)
                            .collect();
                        for env in self.network.deliver_async(p, round, &chosen) {
                            delivered += 1;
                            Self::deliver_to(&mut self.procs, naive, p, &env);
                            self.note_delivery(round, env_view, p, &env);
                        }
                    }
                } else if self.wants_deliveries {
                    // Event-generating sync path: materialise the batch so
                    // each delivery can be narrated between mutations.
                    for &p in &receivers {
                        for env in self.network.deliver_sync(p, round) {
                            delivered += 1;
                            Self::deliver_to(&mut self.procs, naive, p, &env);
                            self.note_delivery(round, env_view, p, &env);
                        }
                    }
                } else {
                    let procs = &mut self.procs;
                    for &p in &receivers {
                        delivered += self.network.deliver_sync_with(p, round, |env| {
                            Self::deliver_to(procs, naive, p, env)
                        });
                    }
                }
            }
        }
        // Corrupted machines receive everything regardless of the round's
        // synchrony — the full-knowledge adversary already sees the whole
        // pool, so feeding its machines the complete traffic models that
        // knowledge (and keeps their delivery cursors advancing, which is
        // what lets the pool compact under static corruption).
        {
            let procs = &mut self.procs;
            for &p in &self.schedule.byzantine(next) {
                self.network
                    .deliver_sync_with(p, round, |env| Self::deliver_to(procs, naive, p, env));
            }
        }

        // ------ pool compaction: drop messages every cursor has passed.
        // Skipped in naive mode (the pre-refactor pool never shrank). ------
        if !naive {
            self.network.compact();
        }
        if let Some(t) = t_recv {
            cost.delivery_us = t.elapsed().as_micros() as u64;
        }

        // ------ narration: windows closing this round + round end (the
        // tx ledger's inclusion bookkeeping and the round trace's sample
        // both hang off `RoundEnd`, in observer order) ------
        {
            let ctx = obs_ctx!(self, round, env_view);
            for (index, d) in self.disruptions.iter().enumerate() {
                if d.end == round {
                    dispatch(
                        &mut self.observers,
                        &ctx,
                        &SimEvent::WindowExit {
                            index,
                            disruption: *d,
                        },
                    );
                }
            }
            dispatch(
                &mut self.observers,
                &ctx,
                &SimEvent::RoundEnd {
                    round,
                    delivered,
                    cost,
                },
            );
        }
    }

    /// Narrates one honest delivery, when some observer asked for
    /// per-envelope events ([`Observer::wants_delivery_events`]).
    fn note_delivery(
        &mut self,
        round: Round,
        env: EnvView,
        receiver: ProcessId,
        envelope: &SharedEnvelope,
    ) {
        if !self.wants_deliveries {
            return;
        }
        let ctx = obs_ctx!(self, round, env);
        dispatch(
            &mut self.observers,
            &ctx,
            &SimEvent::EnvelopeDelivered {
                receiver,
                sender: envelope.payload().sender(),
            },
        );
    }

    /// Drains new decision events from every process into the observer
    /// pipeline, then forwards whatever the monitors emitted (violation
    /// events) to every observer.
    fn observe_decisions(&mut self, round: Round) {
        let env = self.config.timeline.view_at(round);
        for p in ProcessId::all(self.schedule.n()) {
            // Corrupted processes' "decisions" don't count for safety —
            // the definitions quantify over well-behaved processes. The
            // cursor still advances past them: a process corrupted at
            // round r and honest again at r′ must not have its
            // Byzantine-era events replayed into the monitors as honest
            // decisions the moment it recovers.
            if self.schedule.is_byzantine(p, round) {
                // Drain and discard: the events existed but never count.
                let _ = self.procs[p.index()].drain_decisions();
                continue;
            }
            let events = self.procs[p.index()].drain_decisions();
            for event in events {
                let ctx = obs_ctx!(self, round, env);
                dispatch(
                    &mut self.observers,
                    &ctx,
                    &SimEvent::DecisionObserved {
                        process: p,
                        decision: event,
                    },
                );
            }
        }
        let ctx = obs_ctx!(self, round, env);
        pump_emitted(&mut self.observers, &ctx);
    }

    /// Assembles the report from the observer pipeline. Callable after
    /// any number of steps: a full run reports exactly what
    /// [`Simulation::run`] would; an early finish reports the rounds
    /// executed so far. `rounds_run` is the last executed round, so it
    /// is 0 both when only round 0 ran and when nothing ran at all —
    /// the two are distinguished by `timeline.is_empty()` (no rounds
    /// executed ⇒ no samples, and every end-state field reads the
    /// initial state).
    pub fn finish(mut self) -> SimReport {
        // Only well-behaved processes vouch for the final height — a
        // process still Byzantine at the last executed round reports
        // whatever the adversary's tree says, and must not inflate the
        // result (the trace's `max_decided_height` applies the same
        // filter per round).
        let last = Round::new(self.next.saturating_sub(1));
        let final_decided_height = ProcessId::all(self.schedule.n())
            .filter(|&p| !self.schedule.is_byzantine(p, last))
            .map(|p| {
                let proc = &self.procs[p.index()];
                proc.tree().height(proc.decided_tip()).unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        let mut report = SimReport {
            adversary: self.adversary.name().to_string(),
            rounds_run: last.as_u64(),
            final_decided_height,
            messages_sent: self.network.messages_sent(),
            ..SimReport::default()
        };
        let env = self.config.timeline.view_at(last);
        let ctx = obs_ctx!(self, last, env);
        for o in self.observers.iter_mut() {
            o.finish(&ctx, &mut report);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BlackoutAdversary, PartitionAttacker, SilentAdversary};
    use crate::builder::SimBuilder;

    /// Test shorthand for the builder chain the whole suite uses.
    fn sim(
        config: SimConfig,
        schedule: Schedule,
        adversary: impl Adversary + 'static,
    ) -> Simulation {
        SimBuilder::from_config(config)
            .schedule(schedule)
            .adversary(adversary)
            .build()
            .expect("valid test simulation")
    }

    fn params(n: usize, eta: u64) -> Params {
        Params::builder(n).expiration(eta).build().unwrap()
    }

    #[test]
    fn synchronous_full_participation_is_safe_and_live() {
        let report = sim(
            SimConfig::new(params(8, 2), 1).horizon(30).txs_every(4),
            Schedule::full(8, 30),
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe());
        assert!(report.decisions_total > 0);
        assert!(report.final_decided_height > 0);
        assert!(
            report.tx_inclusion_rate() > 0.7,
            "rate {}",
            report.tx_inclusion_rate()
        );
    }

    #[test]
    fn shared_tally_actually_shares_under_full_participation() {
        // Non-vacuity check for the shared-vs-unshared equivalence
        // guards: on a fully synchronous full-participation run the
        // cohort pass must serve almost every honest tally from the
        // shared cache — one computed tally per round, (n − 1) hits.
        let n = 8;
        let report = sim(
            SimConfig::new(params(n, 2), 1)
                .horizon(30)
                .txs_every(4)
                .instrument(),
            Schedule::full(n, 30),
            SilentAdversary,
        )
        .run();
        let rate = report.timeline.tally_cache_hit_rate();
        assert!(
            rate > 0.8,
            "expected near-(n-1)/n cache hit rate under full participation, got {rate}"
        );
        // And the unshared arm records none.
        let unshared = sim(
            SimConfig::new(params(n, 2), 1)
                .horizon(30)
                .txs_every(4)
                .instrument()
                .unshared_tally(),
            Schedule::full(n, 30),
            SilentAdversary,
        )
        .run();
        assert_eq!(unshared.timeline.tally_cache_hit_rate(), 0.0);
    }

    #[test]
    fn mass_sleep_keeps_protocol_alive() {
        // 60% of processes sleep for rounds 10..=20 — the protocol keeps
        // deciding (dynamic availability).
        let report = sim(
            SimConfig::new(params(10, 0), 3).horizon(40),
            Schedule::mass_sleep(10, 40, 0.6, 10, 20),
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe());
        // Decisions continue during the incident: far more deciding rounds
        // than just before/after.
        assert!(
            report.deciding_rounds > 15,
            "{} deciding rounds",
            report.deciding_rounds
        );
    }

    #[test]
    fn partition_attack_breaks_vanilla_mmr() {
        // η = 0, a 4-round partition window starting at an even round:
        // the two halves diverge and decide conflicting logs (the
        // Section-1 attack).
        let n = 8;
        let report = sim(
            SimConfig::new(params(n, 0), 5)
                .horizon(22)
                .async_window(AsyncWindow::new(Round::new(10), 4)),
            Schedule::full(n, 22),
            PartitionAttacker::new(),
        )
        .run();
        assert!(
            !report.safety_violations.is_empty(),
            "vanilla MMR survived the partition attack"
        );
        // Note: the halves diverge *forward* (both extend D_ra), so this
        // breaks agreement (Definition 2) without necessarily conflicting
        // with D_ra itself; the strict Definition-5 violation is exercised
        // by the reorg attack below.
    }

    #[test]
    fn partition_attack_fails_against_expiration() {
        // Same attack, η = 6 > π = 4: Theorem 2 says safety holds.
        let n = 8;
        let report = sim(
            SimConfig::new(params(n, 6), 5)
                .horizon(28)
                .async_window(AsyncWindow::new(Round::new(10), 4)),
            Schedule::full(n, 28),
            PartitionAttacker::new(),
        )
        .run();
        assert!(
            report.is_safe(),
            "extended protocol lost safety: {:?}",
            report.safety_violations
        );
        assert!(report.is_asynchrony_resilient());
        // And it heals: decisions resume after the window.
        assert!(report.recovered_after_every_window());
    }

    #[test]
    fn blackout_partition_defeats_insufficient_expiration() {
        // π ≥ η + play length: a blackout of η rounds expires the
        // protective votes, then the partition play splits the halves —
        // the extended protocol with η ≤ π loses agreement.
        let n = 8;
        let eta = 3;
        let report = sim(
            SimConfig::new(params(n, eta), 5)
                .horizon(34)
                .async_window(AsyncWindow::new(Round::new(10), eta + 8)),
            Schedule::full(n, 34),
            PartitionAttacker::with_blackout(eta + 1),
        )
        .run();
        assert!(
            !report.safety_violations.is_empty(),
            "η ≤ π should be attackable (Theorem 2 bound)"
        );
    }

    #[test]
    fn reorg_attack_violates_definition_5_on_vanilla() {
        // One asynchronous round, f = 3 Byzantine of n = 10: honest
        // processes decide a genesis-fork conflicting with their earlier
        // decisions — the strict Definition 5 violation.
        let n = 10;
        let schedule = Schedule::full(n, 20).with_static_byzantine(3);
        let report = sim(
            SimConfig::new(params(n, 0), 5)
                .horizon(20)
                .async_window(AsyncWindow::new(Round::new(10), 1)),
            schedule,
            crate::adversary::ReorgAttacker::new(),
        )
        .run();
        assert!(
            !report.resilience_violations.is_empty(),
            "vanilla MMR survived the reorg attack"
        );
    }

    #[test]
    fn reorg_attack_fails_against_expiration() {
        let n = 10;
        let schedule = Schedule::full(n, 24).with_static_byzantine(3);
        let report = sim(
            SimConfig::new(params(n, 4), 5)
                .horizon(24)
                .async_window(AsyncWindow::new(Round::new(10), 1)),
            schedule,
            crate::adversary::ReorgAttacker::new(),
        )
        .run();
        assert!(report.is_safe());
        assert!(
            report.is_asynchrony_resilient(),
            "η = 4 > π = 1 should resist the reorg attack: {:?}",
            report.resilience_violations
        );
    }

    #[test]
    fn blackout_preserves_safety_and_heals() {
        let n = 6;
        let report = sim(
            SimConfig::new(params(n, 4), 9)
                .horizon(30)
                .async_window(AsyncWindow::new(Round::new(9), 3)),
            Schedule::full(n, 30),
            BlackoutAdversary,
        )
        .run();
        assert!(report.is_safe());
        assert!(report.is_asynchrony_resilient());
        let lag = report.max_recovery_rounds().expect("decisions resume");
        assert!(lag <= 4, "healing took {lag} rounds");
    }

    #[test]
    fn recovered_process_does_not_replay_byzantine_era_decisions() {
        // p3 is corrupted for rounds 8..=19 and honest again from 20. Its
        // machine keeps running while corrupted (it receives everything
        // and keeps deciding internally), but those Byzantine-era events
        // must be *skipped*, not replayed into the monitors as honest
        // decisions the moment it recovers: the decision cursor advances
        // during corruption.
        let n = 6;
        let horizon = 40;
        let p3 = ProcessId::new(3);
        let schedule =
            Schedule::full(n, horizon).with_corrupted_window(p3, Round::new(8), Round::new(20));
        let report = sim(
            SimConfig::new(params(n, 2), 13).horizon(horizon),
            schedule,
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe());
        // An always-honest peer observed decisions throughout; p3's
        // observed count must be smaller by roughly the corrupted views
        // (≈ 6 views in rounds 8..=19). With the pre-fix behaviour the
        // backlog flushes at recovery and the counts come out equal.
        let honest_peer = report.per_process_decisions[0];
        let recovered = report.per_process_decisions[3];
        assert!(
            recovered + 4 <= honest_peer,
            "Byzantine-era decisions were replayed as honest: p3 observed {recovered}, p0 {honest_peer}"
        );
        // After recovery it decides again (the machine stayed live).
        assert!(recovered > 0, "recovered process never decided");
    }

    #[test]
    fn final_height_only_counts_processes_honest_at_horizon() {
        // Everyone is corrupted exactly at the horizon round: no
        // well-behaved process vouches for a final height, so the report
        // must say 0 — the adversary's trees don't get to inflate it —
        // even though plenty of honest decisions happened earlier.
        let n = 6;
        let horizon = 30;
        let mut schedule = Schedule::full(n, horizon);
        for p in 0..n as u32 {
            schedule = schedule.with_corrupted_window(
                ProcessId::new(p),
                Round::new(horizon),
                Round::new(horizon + 1),
            );
        }
        let report = sim(
            SimConfig::new(params(n, 2), 7).horizon(horizon),
            schedule,
            SilentAdversary,
        )
        .run();
        assert!(
            report.decisions_total > 0,
            "no honest decisions before the horizon"
        );
        assert_eq!(
            report.final_decided_height, 0,
            "Byzantine-at-horizon trees inflated the final height"
        );
        // The per-round timeline (which applies the same filter) agrees:
        // honest heights were nonzero while honesty lasted.
        assert!(
            report
                .timeline
                .at(Round::new(horizon - 1))
                .unwrap()
                .max_decided_height
                > 0
        );
    }

    // The legacy positional constructor keeps its panic contract; the
    // builder reports the same conditions as `BuildError`s (see the
    // builder's own tests for the error path).

    #[test]
    #[should_panic(expected = "outside the system")]
    fn legacy_shim_panics_on_partition_member_outside_system() {
        let timeline =
            Timeline::synchronous().partition(Round::new(5), 2, vec![vec![ProcessId::new(12)]]);
        #[allow(deprecated)]
        let _ = Simulation::new(
            SimConfig::new(params(8, 2), 1).timeline(timeline),
            Schedule::full(8, 40),
            Box::new(SilentAdversary),
        );
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn legacy_shim_panics_on_mismatched_schedule() {
        #[allow(deprecated)]
        let _ = Simulation::new(
            SimConfig::new(params(4, 0), 1),
            Schedule::full(5, 10),
            Box::new(SilentAdversary),
        );
    }

    #[test]
    fn timeline_tracks_execution() {
        let report = sim(
            SimConfig::new(params(8, 2), 1)
                .horizon(20)
                .async_window(AsyncWindow::new(Round::new(10), 2)),
            Schedule::mass_sleep(8, 20, 0.5, 4, 8),
            SilentAdversary,
        )
        .run();
        let t = &report.timeline;
        assert_eq!(t.len(), 21); // rounds 0..=20
                                 // Participation drop is visible.
        assert_eq!(t.at(Round::new(3)).unwrap().honest_awake, 8);
        assert_eq!(t.at(Round::new(5)).unwrap().honest_awake, 4);
        // Async flags line up with the window.
        assert!(t.at(Round::new(10)).unwrap().is_async);
        assert!(t.at(Round::new(11)).unwrap().is_async);
        assert!(!t.at(Round::new(12)).unwrap().is_async);
        // Message counts add up to the report total.
        assert_eq!(t.total_messages(), report.messages_sent);
        // The chain grew overall and the series is monotone in max height.
        let mut prev = 0;
        for s in t.samples() {
            assert!(s.max_decided_height >= prev);
            prev = s.max_decided_height;
        }
        assert!(t.growth_in(Round::new(0), Round::new(20)) > 5);
    }

    /// The acceptance shape of the paper's central claim: a run with
    /// **two** asynchronous spells produces one recovery record per
    /// spell, each showing a post-window decision, with zero safety or
    /// Definition-5 violations under the paper's parameter regime
    /// (`η = 6 > π = 4`).
    #[test]
    fn multi_window_run_yields_one_recovery_record_per_window() {
        let n = 8;
        let timeline = Timeline::synchronous()
            .asynchronous(Round::new(10), 4)
            .asynchronous(Round::new(24), 4);
        let report = sim(
            SimConfig::new(params(n, 6), 5)
                .horizon(40)
                .timeline(timeline)
                .txs_every(4),
            Schedule::full(n, 40),
            PartitionAttacker::new(),
        )
        .run();
        assert!(report.is_safe(), "{:?}", report.safety_violations);
        assert!(report.is_asynchrony_resilient());
        assert_eq!(report.recoveries.len(), 2);
        for rec in &report.recoveries {
            assert_eq!(rec.kind, "async");
            assert_eq!(rec.violations, 0);
            assert!(
                rec.first_decision_after.is_some(),
                "no recovery after window starting {:?}",
                rec.start
            );
            assert!(rec.recovery_rounds.unwrap() <= 4, "slow heal: {rec:?}");
        }
        assert!(report.recovered_after_every_window());
        assert!(report.max_recovery_rounds().unwrap() <= 4);
        // The deprecated legacy singular fields keep describing the
        // *last* spell for old readers.
        #[allow(deprecated)]
        {
            assert_eq!(report.async_window_end, Some(Round::new(27)));
            assert!(report.first_decision_after_async.unwrap() > Round::new(27));
        }
    }

    #[test]
    fn bounded_delay_window_preserves_safety_and_recovers() {
        // A Δ = 2 bounded-delay spell under η = 4 > Δ: every message is
        // at most 2 rounds late, expiration covers the gap — safe, and
        // the spell gets its own recovery record.
        let n = 8;
        let timeline = Timeline::synchronous().bounded_delay(Round::new(10), 8, 2);
        let report = sim(
            SimConfig::new(params(n, 4), 7)
                .horizon(34)
                .timeline(timeline),
            Schedule::full(n, 34),
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe(), "{:?}", report.safety_violations);
        assert!(report.is_asynchrony_resilient());
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].kind, "bounded-delay");
        assert!(report.recoveries[0].first_decision_after.is_some());
        // The trace labels the bounded rounds.
        assert_eq!(report.timeline.at(Round::new(12)).unwrap().delta, Some(2));
        assert!(!report.timeline.at(Round::new(12)).unwrap().is_async);
        assert_eq!(report.timeline.at(Round::new(9)).unwrap().delta, None);
    }

    #[test]
    fn environment_partition_reproduces_the_section_1_attack() {
        // A parity partition as a pure *environment* event — no adversary
        // at all: vanilla MMR (η = 0) loses agreement, exactly like the
        // PartitionAttacker, because each half perceives unanimity on its
        // own chain.
        let n = 8;
        let evens: Vec<ProcessId> = ProcessId::all(n).filter(|p| p.index() % 2 == 0).collect();
        let timeline = Timeline::synchronous().partition(Round::new(10), 4, vec![evens.clone()]);
        let report = sim(
            SimConfig::new(params(n, 0), 5)
                .horizon(22)
                .timeline(timeline.clone()),
            Schedule::full(n, 22),
            SilentAdversary,
        )
        .run();
        assert!(
            !report.safety_violations.is_empty(),
            "vanilla MMR survived the environment partition"
        );
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].kind, "partition");
        assert!(report.timeline.at(Round::new(11)).unwrap().partitioned);

        // The same partition against η = 6 > 4: Theorem 2's mechanism
        // protects agreement, and the cross-cut backlog arrives after the
        // partition heals (messages delayed, never lost).
        let report = sim(
            SimConfig::new(params(n, 6), 5)
                .horizon(28)
                .timeline(timeline),
            Schedule::full(n, 28),
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe(), "{:?}", report.safety_violations);
        assert!(report.is_asynchrony_resilient());
        assert!(report.recovered_after_every_window());
    }

    #[test]
    fn mixed_timeline_orders_recovery_records_by_start() {
        let n = 8;
        let evens: Vec<ProcessId> = ProcessId::all(n).filter(|p| p.index() % 2 == 0).collect();
        let timeline = Timeline::synchronous()
            .bounded_delay(Round::new(24), 4, 2)
            .asynchronous(Round::new(10), 3)
            .partition(Round::new(17), 3, vec![evens]);
        let report = sim(
            SimConfig::new(params(n, 6), 11)
                .horizon(40)
                .timeline(timeline),
            Schedule::full(n, 40),
            SilentAdversary,
        )
        .run();
        assert!(report.is_safe());
        let kinds: Vec<&str> = report.recoveries.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(kinds, vec!["async", "partition", "bounded-delay"]);
        assert!(report.recovered_after_every_window());
    }

    #[test]
    fn async_window_accessors() {
        let w = AsyncWindow::new(Round::new(5), 3);
        assert_eq!(w.ra(), Round::new(4));
        assert_eq!(w.start(), Round::new(5));
        assert_eq!(w.end(), Round::new(7));
        assert_eq!(w.pi(), 3);
        assert!(w.contains(Round::new(5)));
        assert!(w.contains(Round::new(7)));
        assert!(!w.contains(Round::new(8)));
        assert!(!w.contains(Round::new(4)));
    }
}
