//! The fluent simulation builder.
//!
//! [`SimBuilder`] replaces the positional
//! `Simulation::new(config, schedule, Box<dyn Adversary>)` constructor:
//! parameters, horizon, environment timeline, schedule, a *typed*
//! adversary (no mandatory `Box`) and any number of user
//! [`Observer`](crate::Observer)s are assembled in one chain, and
//! [`SimBuilder::build`] validates the whole configuration with a proper
//! error path instead of panicking:
//!
//! ```
//! use st_sim::{adversary::PartitionAttacker, SimBuilder, Timeline};
//! use st_types::{Params, Round};
//!
//! let params = Params::builder(10).expiration(6).build()?;
//! let report = SimBuilder::new(params, 42)
//!     .horizon(30)
//!     .timeline(Timeline::synchronous().asynchronous(Round::new(12), 4))
//!     .txs_every(4)
//!     .adversary(PartitionAttacker::new())
//!     .build()?
//!     .run();
//! assert!(report.is_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The schedule defaults to full participation over the configured
//! horizon; the adversary defaults to
//! [`SilentAdversary`](crate::adversary::SilentAdversary).

use crate::adversary::Adversary;
use crate::adversary::SilentAdversary;
use crate::env::Timeline;
use crate::monitor::SimReport;
use crate::observer::Observer;
use crate::runner::{AsyncWindow, SimConfig, Simulation};
use crate::schedule::Schedule;
use crate::workload::WorkloadSpec;
use st_core::{Protocol, TobProcess};
use st_load::Workload;
use st_types::{Params, ProcessId};

/// Why a [`SimBuilder::build`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The schedule covers a different number of processes than the
    /// protocol parameters specify.
    ScheduleMismatch {
        /// `params.n()`.
        expected: usize,
        /// `schedule.n()`.
        got: usize,
    },
    /// A partition group of the configured timeline names a process
    /// outside the system.
    PartitionMemberOutOfRange {
        /// The out-of-range member.
        member: ProcessId,
        /// The system size.
        n: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ScheduleMismatch { expected, got } => write!(
                f,
                "schedule covers {got} processes but params specify {expected}"
            ),
            BuildError::PartitionMemberOutOfRange { member, n } => write!(
                f,
                "partition group member {member} is outside the system (n = {n})"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for a [`Simulation`]. See the [module docs](self) for
/// an end-to-end example.
///
/// Generic over the [`Protocol`] to drive, defaulted to [`TobProcess`]:
/// [`SimBuilder::new`] / [`SimBuilder::from_config`] build the sleepy
/// protocol exactly as before, while
/// `SimBuilder::<QuorumProcess>::for_protocol(params, seed)` (or any
/// other implementor) gets the same chain, validation and observer
/// pipeline for a different protocol.
pub struct SimBuilder<P: Protocol = TobProcess> {
    config: SimConfig,
    schedule: Option<Schedule>,
    adversary: Box<dyn Adversary<P>>,
    observers: Vec<Box<dyn Observer<P>>>,
    workload: Option<WorkloadSpec>,
}

impl SimBuilder {
    /// Starts a builder for a run of the (sleepy) protocol described by
    /// `params` under `seed` (defaults as in [`SimConfig::new`]: 40-round
    /// horizon, fully synchronous timeline, no transaction workload, full
    /// participation, silent adversary). For a different protocol, start
    /// from [`SimBuilder::for_protocol`].
    pub fn new(params: Params, seed: u64) -> SimBuilder {
        SimBuilder::from_config(SimConfig::new(params, seed))
    }

    /// Starts a builder from an already-assembled [`SimConfig`] (the
    /// migration path from the legacy constructor).
    pub fn from_config(config: SimConfig) -> SimBuilder {
        SimBuilder::for_protocol_config(config)
    }
}

impl<P: Protocol> SimBuilder<P> {
    /// Starts a builder for a run of protocol `P` — the generic form of
    /// [`SimBuilder::new`]. Name the protocol explicitly:
    ///
    /// ```
    /// use st_core::QuorumProcess;
    /// use st_sim::SimBuilder;
    /// use st_types::Params;
    ///
    /// let params = Params::builder(9).build()?;
    /// let report = SimBuilder::<QuorumProcess>::for_protocol(params, 7)
    ///     .horizon(20)
    ///     .build()?
    ///     .run();
    /// assert!(report.is_safe());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn for_protocol(params: Params, seed: u64) -> SimBuilder<P> {
        SimBuilder::for_protocol_config(SimConfig::new(params, seed))
    }

    /// Starts a builder for protocol `P` from an already-assembled
    /// [`SimConfig`] — the generic form of [`SimBuilder::from_config`].
    pub fn for_protocol_config(config: SimConfig) -> SimBuilder<P> {
        SimBuilder {
            config,
            schedule: None,
            adversary: Box::new(SilentAdversary),
            observers: Vec::new(),
            workload: None,
        }
    }

    /// Sets the number of rounds to execute (rounds `0..=horizon`).
    #[must_use]
    pub fn horizon(mut self, rounds: u64) -> SimBuilder<P> {
        self.config = self.config.horizon(rounds);
        self
    }

    /// Sets the environment [`Timeline`] (see [`SimConfig::timeline`]).
    #[must_use]
    pub fn timeline(mut self, timeline: Timeline) -> SimBuilder<P> {
        self.config = self.config.timeline(timeline);
        self
    }

    /// Injects a single asynchronous window (see
    /// [`SimConfig::async_window`]).
    #[must_use]
    pub fn async_window(mut self, window: AsyncWindow) -> SimBuilder<P> {
        self.config = self.config.async_window(window);
        self
    }

    /// Submits one fresh transaction every `k` rounds (see
    /// [`SimConfig::txs_every`]).
    #[must_use]
    pub fn txs_every(mut self, k: u64) -> SimBuilder<P> {
        self.config = self.config.txs_every(k);
        self
    }

    /// Forces the pre-fast-path delivery cost model (see
    /// [`SimConfig::naive_delivery`]).
    #[must_use]
    pub fn naive_delivery(mut self) -> SimBuilder<P> {
        self.config = self.config.naive_delivery();
        self
    }

    /// Disables the shared once-per-round tally so every process
    /// recomputes its own (see [`SimConfig::unshared_tally`]) — the
    /// shared-vs-unshared equivalence guard's other arm.
    #[must_use]
    pub fn unshared_tally(mut self) -> SimBuilder<P> {
        self.config = self.config.unshared_tally();
        self
    }

    /// Turns on per-phase wall-clock instrumentation (see
    /// [`SimConfig::instrument`]). Off by default: instrumented fields
    /// serialise as zero when disabled, keeping reports byte-comparable.
    #[must_use]
    pub fn instrument(mut self) -> SimBuilder<P> {
        self.config = self.config.instrument();
        self
    }

    /// Installs an open-loop [`Workload`] with the default mempool
    /// parameters ([`crate::workload::DEFAULT_MEMPOOL_CAPACITY`],
    /// [`crate::workload::DEFAULT_BATCH`]): per-round arrivals enter a
    /// bounded mempool and drained batches reach `submit_tx` on rounds
    /// with an awake honest proposer. Takes precedence over
    /// [`SimBuilder::txs_every`] (itself a `ConstantRate` shim through
    /// the same machinery). For custom admission/batch parameters use
    /// [`SimBuilder::workload_spec`].
    #[must_use]
    pub fn workload(self, workload: impl Workload + 'static) -> SimBuilder<P> {
        self.workload_spec(WorkloadSpec::new(workload))
    }

    /// Installs a fully configured [`WorkloadSpec`] (generator plus
    /// mempool capacity and submission batch).
    #[must_use]
    pub fn workload_spec(mut self, spec: WorkloadSpec) -> SimBuilder<P> {
        self.workload = Some(spec);
        self
    }

    /// Sets the participation/corruption [`Schedule`]. Defaults to
    /// [`Schedule::full`] over the configured horizon.
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> SimBuilder<P> {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the adversary — typed, no `Box` required.
    #[must_use]
    pub fn adversary(mut self, adversary: impl Adversary<P> + 'static) -> SimBuilder<P> {
        self.adversary = Box::new(adversary);
        self
    }

    /// Sets an adversary chosen at runtime (already boxed). Prefer
    /// [`SimBuilder::adversary`] when the strategy type is known
    /// statically.
    #[must_use]
    pub fn adversary_boxed(mut self, adversary: Box<dyn Adversary<P>>) -> SimBuilder<P> {
        self.adversary = adversary;
        self
    }

    /// Registers a user [`Observer`]. Observers run after the built-in
    /// monitors, in registration order, and see every [`crate::SimEvent`]
    /// of the run.
    #[must_use]
    pub fn observer(mut self, observer: impl Observer<P> + 'static) -> SimBuilder<P> {
        self.observers.push(Box::new(observer));
        self
    }

    /// Registers an observer chosen at runtime (already boxed).
    #[must_use]
    pub fn observer_boxed(mut self, observer: Box<dyn Observer<P>>) -> SimBuilder<P> {
        // stlint::allow(deadpub, reason = "the dyn registration path mirroring observer(); callers composing observer lists at runtime cannot use the impl-Trait form")
        self.observers.push(observer);
        self
    }

    /// Validates the configuration and builds the [`Simulation`].
    ///
    /// # Errors
    ///
    /// [`BuildError::ScheduleMismatch`] if the schedule's process count
    /// differs from `params.n()`;
    /// [`BuildError::PartitionMemberOutOfRange`] if a timeline partition
    /// group names a process outside the system.
    pub fn build(self) -> Result<Simulation<P>, BuildError> {
        let schedule = self.schedule.unwrap_or_else(|| {
            Schedule::full(self.config.params().n(), self.config.horizon_rounds())
        });
        Simulation::assemble(
            self.config,
            schedule,
            self.adversary,
            self.observers,
            self.workload,
        )
    }

    /// Builds and runs to completion in one call — a convenience for
    /// tests, examples and experiment binaries.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (the [`BuildError`] message);
    /// library code that wants to handle configuration errors should call
    /// [`SimBuilder::build`] instead.
    pub fn run(self) -> SimReport {
        self.build().unwrap_or_else(|e| panic!("{e}")).run() // stlint::allow(panic, reason = "documented panic contract of this convenience entry point; the fallible path is build()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_types::Round;

    fn params(n: usize, eta: u64) -> Params {
        Params::builder(n).expiration(eta).build().unwrap()
    }

    #[test]
    fn builder_defaults_run_green() {
        let report = SimBuilder::new(params(8, 2), 1).horizon(20).run();
        assert!(report.is_safe());
        assert!(report.decisions_total > 0);
    }

    #[test]
    fn schedule_mismatch_is_an_error_not_a_panic() {
        let err = SimBuilder::new(params(4, 0), 1)
            .horizon(10)
            .schedule(Schedule::full(5, 10))
            .build()
            .err()
            .expect("mismatched schedule accepted");
        assert_eq!(
            err,
            BuildError::ScheduleMismatch {
                expected: 4,
                got: 5
            }
        );
        assert!(err.to_string().contains("schedule covers 5"));
    }

    #[test]
    fn partition_member_out_of_range_is_an_error_not_a_panic() {
        let timeline =
            Timeline::synchronous().partition(Round::new(5), 2, vec![vec![ProcessId::new(12)]]);
        let err = SimBuilder::new(params(8, 2), 1)
            .timeline(timeline)
            .build()
            .err()
            .expect("out-of-range partition member accepted");
        assert_eq!(
            err,
            BuildError::PartitionMemberOutOfRange {
                member: ProcessId::new(12),
                n: 8
            }
        );
        assert!(err.to_string().contains("outside the system (n = 8)"));
    }

    #[test]
    fn legacy_shim_still_panics_with_the_historic_messages() {
        // The deprecated positional constructor keeps its panic-based
        // contract for old callers; new code gets the Result path above.
        #[allow(deprecated)]
        let attempt = std::panic::catch_unwind(|| {
            let _ = Simulation::new(
                SimConfig::new(params(4, 0), 1),
                Schedule::full(5, 10),
                Box::new(SilentAdversary),
            );
        });
        let payload = attempt.expect_err("legacy shim accepted a bad schedule");
        let msg = payload
            .downcast::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("schedule covers 5 processes but params specify 4"));
    }
}
